"""Hyper-parameter selection for the topic counts (and friends).

Section 3.2.3: "K1 and K2 are the desired numbers of user-oriented
topics and time-oriented topics respectively, which need to be tuned
empirically." This module packages that tuning: a grid search over
``(K1, K2)`` scored on a holdout split by either ranking NDCG@k or
held-out perplexity, returning every cell plus the winner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.ttcam import TTCAM
from ..data.cuboid import RatingCuboid
from ..data.splits import holdout_split
from .likelihood import heldout_perplexity
from .protocol import build_queries, evaluate_ranking


@dataclass(frozen=True)
class GridCell:
    """One evaluated configuration of the topic-count grid."""

    k1: int
    k2: int
    score: float
    metric: str

    def __str__(self) -> str:
        return f"K1={self.k1:3d} K2={self.k2:3d}  {self.metric}={self.score:.4f}"


@dataclass
class GridSearchResult:
    """All evaluated cells plus the selected configuration."""

    cells: list[GridCell]
    best: GridCell
    higher_is_better: bool

    def format_table(self) -> str:
        """Render the grid as text, best cell marked."""
        lines = [f"topic-count grid ({self.best.metric}):"]
        for cell in self.cells:
            marker = "  <-- best" if cell == self.best else ""
            lines.append(f"  {cell}{marker}")
        return "\n".join(lines)


def select_topic_counts(
    cuboid: RatingCuboid,
    k1_grid: Sequence[int],
    k2_grid: Sequence[int],
    metric: str = "ndcg",
    ndcg_k: int = 5,
    max_iter: int = 60,
    max_queries: int | None = 300,
    seed: int = 0,
    model_factory: Callable[[int, int], object] | None = None,
) -> GridSearchResult:
    """Grid-search ``(K1, K2)`` on a fresh holdout split.

    Parameters
    ----------
    cuboid:
        The full dataset; an 80/20 split is made internally.
    k1_grid, k2_grid:
        Candidate topic counts.
    metric:
        ``"ndcg"`` (higher is better, evaluated at ``ndcg_k``) or
        ``"perplexity"`` (lower is better).
    model_factory:
        Optional ``(k1, k2) -> model`` override; defaults to plain TTCAM
        with the given ``max_iter``/``seed``.
    """
    if metric not in ("ndcg", "perplexity"):
        raise ValueError(f"metric must be 'ndcg' or 'perplexity', got {metric!r}")
    if not k1_grid or not k2_grid:
        raise ValueError("k1_grid and k2_grid must be non-empty")

    split = holdout_split(cuboid, seed=seed)
    queries = (
        build_queries(split, max_queries=max_queries, seed=seed)
        if metric == "ndcg"
        else None
    )
    factory = model_factory or (
        lambda k1, k2: TTCAM(k1, k2, max_iter=max_iter, seed=seed)
    )

    higher_is_better = metric == "ndcg"
    cells: list[GridCell] = []
    for k1 in k1_grid:
        for k2 in k2_grid:
            model = factory(int(k1), int(k2))
            model.fit(split.train)
            if metric == "ndcg":
                report = evaluate_ranking(
                    model, queries, ks=(ndcg_k,), metrics=("ndcg",)
                )
                score = report.at("ndcg", ndcg_k)
            else:
                score = heldout_perplexity(model, split.test)
            cells.append(
                GridCell(k1=int(k1), k2=int(k2), score=float(score), metric=metric)
            )

    chooser = max if higher_is_better else min
    best = chooser(cells, key=lambda cell: cell.score)
    return GridSearchResult(cells=cells, best=best, higher_is_better=higher_is_better)
