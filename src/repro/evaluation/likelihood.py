"""Held-out likelihood and perplexity evaluation.

Ranking metrics measure the top of the list; held-out likelihood
measures the whole fitted distribution. For probabilistic models (the
TCAM family, UT, TT — anything whose ``score_items`` returns a proper
distribution over items), this module computes

``perplexity = exp( − Σ c·log P(v|u,t) / Σ c )``

over a held-out cuboid — lower is better, and a uniform model scores
exactly ``V``. Useful for model selection (K1/K2, smoothing) where
ranking metrics are too noisy.
"""

from __future__ import annotations

import numpy as np

from ..data.cuboid import RatingCuboid
from .protocol import RankingModel

_EPS = 1e-12


def heldout_log_likelihood(
    model: RankingModel, test: RatingCuboid, renormalize: bool = True
) -> float:
    """Σ c·log P(v|u,t) over a held-out cuboid.

    ``score_items`` is called once per distinct ``(u, t)`` pair.
    ``renormalize`` defensively rescales each score vector to sum to one
    (a no-op for proper probabilistic models); models with negative
    scores are rejected — held-out likelihood is undefined for them.
    """
    if test.nnz == 0:
        raise ValueError("held-out cuboid is empty")
    keys = test.users * test.num_intervals + test.intervals
    order = np.argsort(keys, kind="stable")
    total = 0.0
    start = 0
    sorted_keys = keys[order]
    boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
    for end in list(boundaries) + [test.nnz]:
        rows = order[start:end]
        start = end
        user = int(test.users[rows[0]])
        interval = int(test.intervals[rows[0]])
        scores = np.asarray(model.score_items(user, interval), dtype=np.float64)
        if np.any(scores < -1e-9):
            raise ValueError(
                "model scores are negative; held-out likelihood requires "
                "a probabilistic scorer"
            )
        if renormalize:
            mass = scores.sum()
            if mass <= 0:
                raise ValueError("model scores sum to zero")
            scores = scores / mass
        items = test.items[rows]
        weights = test.scores[rows]
        total += float(weights @ np.log(scores[items] + _EPS))
    return total


def heldout_perplexity(
    model: RankingModel, test: RatingCuboid, renormalize: bool = True
) -> float:
    """Per-rating perplexity on a held-out cuboid (lower is better)."""
    log_likelihood = heldout_log_likelihood(model, test, renormalize=renormalize)
    return float(np.exp(-log_likelihood / test.total_score))


def uniform_perplexity(test: RatingCuboid) -> float:
    """The trivial reference: a uniform model's perplexity is ``V``."""
    return float(test.num_items)
