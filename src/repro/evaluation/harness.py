"""Experiment harness: fit many models across CV folds and tabulate.

This drives the paper's accuracy experiments (Figures 6–7, Table 3,
Figure 9): a set of named model factories is fit on each cross-validation
fold's training cuboid, evaluated on that fold's temporal queries, and
the per-fold reports are averaged. Output helpers render the same
rows/series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..data.cuboid import RatingCuboid
from ..data.splits import Split, cross_validation_splits, holdout_split
from .protocol import EvaluationReport, RankingModel, build_queries, evaluate_ranking


@dataclass(frozen=True)
class ModelSpec:
    """A named model factory.

    The factory must return a *fresh, unfitted* model exposing
    ``fit(cuboid)`` and ``score_items(user, interval)`` — every fold gets
    its own instance.
    """

    name: str
    factory: Callable[[], RankingModel]


@dataclass
class ExperimentResult:
    """Aggregated cross-fold results for a set of models.

    ``mean[model][metric][k]`` / ``std[model][metric][k]`` hold the
    cross-fold mean and standard deviation.
    """

    mean: dict[str, dict[str, dict[int, float]]]
    std: dict[str, dict[str, dict[int, float]]]
    ks: tuple[int, ...]
    metrics: tuple[str, ...]
    num_folds: int
    num_queries: int

    def series(self, model: str, metric: str) -> list[float]:
        """Mean metric across cutoffs for one model (a plotted curve)."""
        return [self.mean[model][metric][k] for k in self.ks]

    def at(self, model: str, metric: str, k: int) -> float:
        """Mean metric at one cutoff."""
        return self.mean[model][metric][k]

    def winner(self, metric: str, k: int) -> str:
        """Name of the best model at ``metric@k``."""
        return max(self.mean, key=lambda name: self.mean[name][metric][k])

    def format_table(self, metric: str) -> str:
        """Render a ``model × k`` text table for one metric."""
        header = ["model".ljust(16)] + [f"@{k}".rjust(8) for k in self.ks]
        lines = ["".join(header)]
        for model in self.mean:
            cells = [model.ljust(16)]
            cells += [f"{self.mean[model][metric][k]:8.4f}" for k in self.ks]
            lines.append("".join(cells))
        return "\n".join(lines)


def run_accuracy_experiment(
    cuboid: RatingCuboid,
    specs: Sequence[ModelSpec],
    ks: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
    metrics: Sequence[str] = ("precision", "ndcg", "f1"),
    num_folds: int = 5,
    max_queries: int | None = 400,
    seed: int = 0,
) -> ExperimentResult:
    """Fit and evaluate every model spec across CV folds.

    ``num_folds=1`` falls back to a single 80/20 holdout split (faster,
    used by the narrower parameter sweeps).
    """
    if not specs:
        raise ValueError("at least one model spec is required")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate model names in specs: {names}")

    if num_folds <= 1:
        splits: list[Split] = [holdout_split(cuboid, seed=seed)]
    else:
        splits = list(cross_validation_splits(cuboid, num_folds=num_folds, seed=seed))

    per_fold: dict[str, list[EvaluationReport]] = {spec.name: [] for spec in specs}
    total_queries = 0
    for fold_index, split in enumerate(splits):
        queries = build_queries(split, max_queries=max_queries, seed=seed + fold_index)
        total_queries += len(queries)
        for spec in specs:
            model = spec.factory()
            model.fit(split.train)
            report = evaluate_ranking(model, queries, ks=ks, metrics=metrics)
            per_fold[spec.name].append(report)

    ks_tuple = per_fold[specs[0].name][0].ks
    mean: dict[str, dict[str, dict[int, float]]] = {}
    std: dict[str, dict[str, dict[int, float]]] = {}
    for spec in specs:
        reports = per_fold[spec.name]
        mean[spec.name] = {}
        std[spec.name] = {}
        for metric in metrics:
            mean[spec.name][metric] = {}
            std[spec.name][metric] = {}
            for k in ks_tuple:
                samples = np.array([r.values[metric][k] for r in reports])
                mean[spec.name][metric][k] = float(samples.mean())
                std[spec.name][metric][k] = float(samples.std())

    return ExperimentResult(
        mean=mean,
        std=std,
        ks=ks_tuple,
        metrics=tuple(metrics),
        num_folds=len(splits),
        num_queries=total_queries,
    )
