"""Evaluation: ranking metrics, the temporal query protocol, and the
multi-model cross-validation harness."""

from .beyond_accuracy import (
    BeyondAccuracyReport,
    catalogue_coverage,
    evaluate_beyond_accuracy,
    intra_list_diversity,
    novelty,
)
from .harness import ExperimentResult, ModelSpec, run_accuracy_experiment
from .likelihood import heldout_log_likelihood, heldout_perplexity, uniform_perplexity
from .model_selection import GridCell, GridSearchResult, select_topic_counts
from .metrics import (
    METRICS,
    average_precision_at_k,
    f1_at_k,
    hit_rate_at_k,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank_at_k,
)
from .protocol import EvaluationReport, TemporalQuery, build_queries, evaluate_ranking
from .significance import PairedComparison, compare_many, paired_bootstrap, per_query_metric

__all__ = [
    "BeyondAccuracyReport",
    "catalogue_coverage",
    "evaluate_beyond_accuracy",
    "intra_list_diversity",
    "novelty",
    "ExperimentResult",
    "ModelSpec",
    "run_accuracy_experiment",
    "heldout_log_likelihood",
    "heldout_perplexity",
    "uniform_perplexity",
    "GridCell",
    "GridSearchResult",
    "select_topic_counts",
    "METRICS",
    "average_precision_at_k",
    "f1_at_k",
    "hit_rate_at_k",
    "ndcg_at_k",
    "precision_at_k",
    "recall_at_k",
    "reciprocal_rank_at_k",
    "EvaluationReport",
    "TemporalQuery",
    "build_queries",
    "evaluate_ranking",
    "PairedComparison",
    "compare_many",
    "paired_bootstrap",
    "per_query_metric",
]
