"""The temporal top-k evaluation protocol (Section 5.3.1).

Given a train/test :class:`~repro.data.splits.Split`, every ``(u, t)``
pair with held-out items becomes one temporal query. A model answers the
query with its top-k ranking over the catalogue (minus the user's known
training items), and a recommendation is a "hit" iff it appears in
``S_t^test(u)``. Metrics are averaged over queries.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from ..data.splits import Split
from ..recommend.ranking import rank_order
from .metrics import METRICS


class RankingModel(Protocol):
    """Anything that scores the whole catalogue for a temporal query."""

    def score_items(self, user: int, interval: int) -> np.ndarray:
        """Dense ranking scores, one per item."""
        ...


@dataclass(frozen=True)
class TemporalQuery:
    """One evaluation query: a user at a time interval.

    ``relevant`` holds the held-out items of ``(user, interval)``;
    ``exclude`` holds the user's training items that must not be
    recommended (minus any that are also relevant here).
    """

    user: int
    interval: int
    relevant: frozenset[int]
    exclude: tuple[int, ...]


@dataclass
class EvaluationReport:
    """Metric averages over all issued queries.

    ``values[metric][k]`` is the mean of that metric at cutoff ``k``.
    """

    values: dict[str, dict[int, float]]
    num_queries: int
    ks: tuple[int, ...]

    def at(self, metric: str, k: int) -> float:
        """Convenience accessor, e.g. ``report.at("ndcg", 5)``."""
        return self.values[metric][k]

    def series(self, metric: str) -> list[float]:
        """Metric values across all cutoffs, in ``ks`` order."""
        return [self.values[metric][k] for k in self.ks]


def build_queries(
    split: Split,
    max_queries: int | None = None,
    seed: int = 0,
    min_relevant: int = 1,
) -> list[TemporalQuery]:
    """Materialise the temporal queries implied by a split.

    Parameters
    ----------
    split:
        Train/test partition produced by the splitters.
    max_queries:
        Optional cap; queries are sub-sampled uniformly when exceeded.
    seed:
        RNG seed for the sub-sampling.
    min_relevant:
        Skip queries with fewer held-out items than this.
    """
    test = split.test
    # Group test items by (u, t).
    grouped: dict[tuple[int, int], set[int]] = defaultdict(set)
    for u, t, v in zip(test.users, test.intervals, test.items):
        grouped[(int(u), int(t))].add(int(v))

    # A user's training items are never recommended back (unless the same
    # item is genuinely relevant for this query's interval).
    train_items: dict[int, set[int]] = defaultdict(set)
    for u, v in zip(split.train.users, split.train.items):
        train_items[int(u)].add(int(v))

    queries = []
    for (user, interval), relevant in sorted(grouped.items()):
        if len(relevant) < min_relevant:
            continue
        exclude = tuple(sorted(train_items.get(user, set()) - relevant))
        queries.append(
            TemporalQuery(
                user=user,
                interval=interval,
                relevant=frozenset(relevant),
                exclude=exclude,
            )
        )
    if max_queries is not None and len(queries) > max_queries:
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(queries), size=max_queries, replace=False)
        queries = [queries[i] for i in sorted(chosen)]
    return queries


def evaluate_ranking(
    model: RankingModel,
    queries: Sequence[TemporalQuery],
    ks: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
    metrics: Sequence[str] = ("precision", "ndcg", "f1"),
) -> EvaluationReport:
    """Score a fitted model on the given temporal queries.

    The model's full score vector is ranked deterministically (ties to
    the smaller item id) with the user's training items excluded, then
    every requested metric is computed at every cutoff and averaged over
    queries.
    """
    unknown = [m for m in metrics if m not in METRICS]
    if unknown:
        raise ValueError(f"unknown metrics {unknown}; available: {sorted(METRICS)}")
    if not queries:
        raise ValueError("no queries to evaluate")
    ks = tuple(sorted(set(int(k) for k in ks)))
    max_k = max(ks)

    totals: dict[str, dict[int, float]] = {
        metric: {k: 0.0 for k in ks} for metric in metrics
    }
    for query in queries:
        scores = model.score_items(query.user, query.interval)
        exclude = np.asarray(query.exclude, dtype=np.int64)
        top = rank_order(scores, max_k, exclude=exclude).tolist()
        for metric in metrics:
            fn = METRICS[metric]
            for k in ks:
                totals[metric][k] += fn(top, query.relevant, k)

    n = len(queries)
    values = {
        metric: {k: total / n for k, total in per_k.items()}
        for metric, per_k in totals.items()
    }
    return EvaluationReport(values=values, num_queries=n, ks=ks)
