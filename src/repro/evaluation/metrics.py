"""Ranking metrics (Section 5.3.1 of the paper).

All metrics take the recommended item ids in rank order plus the set of
relevant (held-out) items, and are reported "@k". The paper uses
Precision@k, NDCG@k (binary gains, ``(2^r − 1)/log2(i + 1)`` with ideal
normalisation) and F1@k; Recall, hit-rate, MAP and MRR are included for
completeness.
"""

from __future__ import annotations

from typing import Collection, Sequence

import numpy as np


def _validate(recommended: Sequence[int], k: int) -> list[int]:
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return list(recommended[:k])


def precision_at_k(
    recommended: Sequence[int], relevant: Collection[int], k: int
) -> float:
    """``#hits / k`` over the top-k recommendations."""
    top = _validate(recommended, k)
    if not top:
        return 0.0
    hits = sum(1 for item in top if item in relevant)
    return hits / k


def recall_at_k(
    recommended: Sequence[int], relevant: Collection[int], k: int
) -> float:
    """``#hits / |relevant|`` over the top-k recommendations."""
    top = _validate(recommended, k)
    if not relevant:
        return 0.0
    hits = sum(1 for item in top if item in relevant)
    return hits / len(relevant)


def f1_at_k(recommended: Sequence[int], relevant: Collection[int], k: int) -> float:
    """Harmonic mean of Precision@k and Recall@k."""
    precision = precision_at_k(recommended, relevant, k)
    recall = recall_at_k(recommended, relevant, k)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def ndcg_at_k(recommended: Sequence[int], relevant: Collection[int], k: int) -> float:
    """Binary-gain NDCG@k exactly as defined in the paper.

    ``DCG@k = Σ_{i=1..k} (2^{r_i} − 1) / log2(i + 1)`` with ``r_i = 1`` for
    a hit, normalised by the DCG of the perfect ranking (all available
    relevant items first).
    """
    top = _validate(recommended, k)
    if not relevant:
        return 0.0
    gains = np.array([1.0 if item in relevant else 0.0 for item in top])
    discounts = 1.0 / np.log2(np.arange(2, len(top) + 2))
    dcg = float((gains * discounts).sum())
    ideal_hits = min(len(relevant), k)
    ideal = float((1.0 / np.log2(np.arange(2, ideal_hits + 2))).sum())
    return dcg / ideal if ideal > 0 else 0.0


def hit_rate_at_k(
    recommended: Sequence[int], relevant: Collection[int], k: int
) -> float:
    """1.0 if any top-k recommendation is relevant, else 0.0."""
    top = _validate(recommended, k)
    return 1.0 if any(item in relevant for item in top) else 0.0


def average_precision_at_k(
    recommended: Sequence[int], relevant: Collection[int], k: int
) -> float:
    """AP@k: mean of precision values at each hit position."""
    top = _validate(recommended, k)
    if not relevant:
        return 0.0
    hits = 0
    precision_sum = 0.0
    for i, item in enumerate(top, start=1):
        if item in relevant:
            hits += 1
            precision_sum += hits / i
    denominator = min(len(relevant), k)
    return precision_sum / denominator if denominator else 0.0


def reciprocal_rank_at_k(
    recommended: Sequence[int], relevant: Collection[int], k: int
) -> float:
    """1/rank of the first hit within the top-k; 0 when there is none."""
    top = _validate(recommended, k)
    for i, item in enumerate(top, start=1):
        if item in relevant:
            return 1.0 / i
    return 0.0


METRICS = {
    "precision": precision_at_k,
    "recall": recall_at_k,
    "f1": f1_at_k,
    "ndcg": ndcg_at_k,
    "hit_rate": hit_rate_at_k,
    "map": average_precision_at_k,
    "mrr": reciprocal_rank_at_k,
}
"""Registry mapping metric names to their ``(recommended, relevant, k)`` fn."""
