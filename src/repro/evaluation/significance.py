"""Statistical significance of model comparisons.

Accuracy differences between recommenders are noisy at realistic query
counts, so "A beats B" claims deserve error bars. This module provides a
**paired bootstrap test** over per-query metric values — the standard
IR-evaluation device: both models answer the *same* temporal queries,
per-query metric deltas are resampled with replacement, and the fraction
of resamples where the mean delta flips sign estimates the p-value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .metrics import METRICS
from .protocol import RankingModel, TemporalQuery
from ..recommend.ranking import rank_order


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired bootstrap comparison of two models.

    ``delta`` is mean(metric(A) − metric(B)) over the shared queries; the
    confidence interval and p-value come from ``num_resamples`` bootstrap
    replicates.
    """

    metric: str
    k: int
    delta: float
    ci_low: float
    ci_high: float
    p_value: float
    num_queries: int

    @property
    def significant(self) -> bool:
        """True when the two-sided p-value is below 0.05."""
        return self.p_value < 0.05

    def __str__(self) -> str:
        stars = " *" if self.significant else ""
        return (
            f"Δ{self.metric}@{self.k} = {self.delta:+.4f} "
            f"[{self.ci_low:+.4f}, {self.ci_high:+.4f}], "
            f"p = {self.p_value:.3f}{stars}"
        )


def per_query_metric(
    model: RankingModel,
    queries: Sequence[TemporalQuery],
    metric: str,
    k: int,
) -> np.ndarray:
    """One metric value per query for one model."""
    if metric not in METRICS:
        raise ValueError(f"unknown metric {metric!r}; available: {sorted(METRICS)}")
    fn = METRICS[metric]
    values = np.empty(len(queries))
    for i, query in enumerate(queries):
        scores = model.score_items(query.user, query.interval)
        top = rank_order(
            scores, k, exclude=np.asarray(query.exclude, dtype=np.int64)
        ).tolist()
        values[i] = fn(top, query.relevant, k)
    return values


def paired_bootstrap(
    model_a: RankingModel,
    model_b: RankingModel,
    queries: Sequence[TemporalQuery],
    metric: str = "ndcg",
    k: int = 5,
    num_resamples: int = 2000,
    seed: int = 0,
) -> PairedComparison:
    """Paired bootstrap test of ``model_a`` vs ``model_b``.

    Both models answer the same queries; per-query deltas are resampled
    ``num_resamples`` times. Returns the observed mean delta, its 95%
    bootstrap interval, and the two-sided sign-flip p-value.
    """
    if not queries:
        raise ValueError("no queries to compare on")
    if num_resamples <= 0:
        raise ValueError(f"num_resamples must be positive, got {num_resamples}")
    a = per_query_metric(model_a, queries, metric, k)
    b = per_query_metric(model_b, queries, metric, k)
    deltas = a - b
    observed = float(deltas.mean())

    rng = np.random.default_rng(seed)
    indices = rng.integers(0, len(deltas), size=(num_resamples, len(deltas)))
    resampled = deltas[indices].mean(axis=1)
    ci_low, ci_high = np.percentile(resampled, [2.5, 97.5])
    # Two-sided sign test: how often does the resampled mean cross zero?
    if observed >= 0:
        p = 2 * float((resampled <= 0).mean())
    else:
        p = 2 * float((resampled >= 0).mean())
    return PairedComparison(
        metric=metric,
        k=k,
        delta=observed,
        ci_low=float(ci_low),
        ci_high=float(ci_high),
        p_value=min(p, 1.0),
        num_queries=len(queries),
    )


def compare_many(
    models: dict[str, RankingModel],
    baseline: str,
    queries: Sequence[TemporalQuery],
    metric: str = "ndcg",
    k: int = 5,
    num_resamples: int = 2000,
    seed: int = 0,
) -> dict[str, PairedComparison]:
    """Compare every model against one named baseline.

    Returns ``{model name: PairedComparison vs baseline}`` for all models
    other than the baseline itself.
    """
    if baseline not in models:
        raise KeyError(f"baseline {baseline!r} not among models {sorted(models)}")
    reference = models[baseline]
    return {
        name: paired_bootstrap(
            model, reference, queries, metric=metric, k=k,
            num_resamples=num_resamples, seed=seed,
        )
        for name, model in models.items()
        if name != baseline
    }
