"""Beyond-accuracy recommendation quality: coverage, novelty, diversity.

Hit metrics alone reward recommending the popular head. A production
evaluation also tracks:

* **catalogue coverage** — the fraction of the catalogue that appears in
  at least one recommendation list (aggregate diversity);
* **novelty** — the mean self-information ``−log₂ p(v)`` of recommended
  items under the training popularity distribution (higher = less
  mainstream);
* **intra-list diversity** — one minus the mean pairwise similarity of
  each list's items in topic space (how varied a single list is).

These are the quantities the paper's item-weighting scheme implicitly
targets — the W-variants trade a little accuracy for a lot of novelty,
which :mod:`benchmarks.test_ablation_weighting` quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..data.cuboid import RatingCuboid
from ..recommend.ranking import rank_order
from .protocol import RankingModel, TemporalQuery


@dataclass(frozen=True)
class BeyondAccuracyReport:
    """Aggregate beyond-accuracy statistics of one model's top-k lists."""

    coverage: float  # fraction of catalogue recommended at least once
    novelty: float  # mean −log₂ popularity of recommended items
    diversity: float  # 1 − mean pairwise topic similarity within lists
    k: int
    num_queries: int

    def __str__(self) -> str:
        return (
            f"coverage {self.coverage:.3f}, novelty {self.novelty:.2f} bits, "
            f"intra-list diversity {self.diversity:.3f} (k={self.k}, "
            f"{self.num_queries} queries)"
        )


def collect_recommendations(
    model: RankingModel,
    queries: Sequence[TemporalQuery],
    k: int,
) -> list[list[int]]:
    """The model's top-k list for every query (training items excluded)."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    lists = []
    for query in queries:
        scores = model.score_items(query.user, query.interval)
        top = rank_order(
            scores, k, exclude=np.asarray(query.exclude, dtype=np.int64)
        )
        lists.append([int(v) for v in top])
    return lists


def catalogue_coverage(recommendations: Sequence[Sequence[int]], num_items: int) -> float:
    """Fraction of the catalogue recommended at least once."""
    if num_items <= 0:
        raise ValueError(f"num_items must be positive, got {num_items}")
    seen: set[int] = set()
    for items in recommendations:
        seen.update(items)
    return len(seen) / num_items


def novelty(
    recommendations: Sequence[Sequence[int]], train_popularity: np.ndarray
) -> float:
    """Mean self-information of recommended items (bits).

    ``train_popularity`` is any non-negative per-item mass vector (e.g.
    :meth:`RatingCuboid.item_popularity`); it is normalised internally
    with add-one smoothing so unseen items have finite information.
    """
    popularity = np.asarray(train_popularity, dtype=np.float64)
    if np.any(popularity < 0):
        raise ValueError("popularity mass must be non-negative")
    probs = (popularity + 1.0) / (popularity.sum() + popularity.size)
    info = -np.log2(probs)
    values = [info[v] for items in recommendations for v in items]
    if not values:
        raise ValueError("no recommendations to score")
    return float(np.mean(values))


def intra_list_diversity(
    recommendations: Sequence[Sequence[int]], item_topics: np.ndarray
) -> float:
    """One minus the mean pairwise cosine similarity within each list.

    ``item_topics`` is a ``(V, K)`` item representation — for TCAM the
    natural choice is the transposed topic–item matrix, i.e. each item's
    loading across topics.
    """
    vectors = np.asarray(item_topics, dtype=np.float64)
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    unit = vectors / np.maximum(norms, 1e-12)
    per_list = []
    for items in recommendations:
        if len(items) < 2:
            continue
        sub = unit[list(items)]
        sims = sub @ sub.T
        upper = sims[np.triu_indices(len(items), k=1)]
        per_list.append(1.0 - float(upper.mean()))
    if not per_list:
        raise ValueError("need at least one list with two items")
    return float(np.mean(per_list))


def evaluate_beyond_accuracy(
    model: RankingModel,
    queries: Sequence[TemporalQuery],
    train: RatingCuboid,
    item_topics: np.ndarray,
    k: int = 10,
) -> BeyondAccuracyReport:
    """Compute all three beyond-accuracy statistics for one model."""
    recommendations = collect_recommendations(model, queries, k)
    return BeyondAccuracyReport(
        coverage=catalogue_coverage(recommendations, train.num_items),
        novelty=novelty(recommendations, train.item_popularity()),
        diversity=intra_list_diversity(recommendations, item_topics),
        k=k,
        num_queries=len(queries),
    )
