"""Burst analysis — the Figure 5 contrast between bursty and popular items.

Popular items ("news", "health") stay frequent throughout; bursty items
("swineflu", "mexico") spike around a real-world event. The item-weighting
scheme's job is to rank the latter above the former in time-oriented
topics; these helpers measure both behaviors empirically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.cuboid import RatingCuboid


@dataclass(frozen=True)
class ItemTemporalProfile:
    """One item's normalised per-interval frequency curve."""

    item: int
    label: str
    frequency: np.ndarray  # (T,), normalised to max 1
    burstiness: float
    total_popularity: float


def item_frequency_curve(cuboid: RatingCuboid, item: int) -> np.ndarray:
    """Raw per-interval score mass of one item."""
    if not 0 <= item < cuboid.num_items:
        raise IndexError(f"item {item} out of range")
    mask = cuboid.items == item
    curve = np.zeros(cuboid.num_intervals)
    np.add.at(curve, cuboid.intervals[mask], cuboid.scores[mask])
    return curve


def burstiness(curve: np.ndarray) -> float:
    """Peak-to-mean ratio of an item's temporal frequency curve.

    1.0 means perfectly flat; large values mean a sharp spike. An item
    appearing in a single interval of ``T`` scores ``T``.
    """
    curve = np.asarray(curve, dtype=np.float64)
    mean = curve.mean()
    if mean <= 0:
        return 0.0
    return float(curve.max() / mean)


def item_profile(cuboid: RatingCuboid, item: int) -> ItemTemporalProfile:
    """Full temporal profile of one item (a Figure 5 curve)."""
    curve = item_frequency_curve(cuboid, item)
    peak = curve.max()
    label = (
        str(cuboid.item_index.label_of(item))
        if cuboid.item_index is not None
        else str(item)
    )
    return ItemTemporalProfile(
        item=item,
        label=label,
        frequency=curve / peak if peak > 0 else curve,
        burstiness=burstiness(curve),
        total_popularity=float(curve.sum()),
    )


def top_bursty_items(
    cuboid: RatingCuboid, k: int = 10, min_popularity: float = 3.0
) -> list[ItemTemporalProfile]:
    """The ``k`` items with the sharpest temporal spikes.

    ``min_popularity`` filters out one-off noise items whose "burst" is a
    single rating.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    matrix = cuboid.interval_item_matrix()  # (T, V)
    totals = matrix.sum(axis=0)
    means = totals / cuboid.num_intervals
    with np.errstate(invalid="ignore", divide="ignore"):
        ratios = np.where(means > 0, matrix.max(axis=0) / np.where(means > 0, means, 1), 0.0)
    ratios[totals < min_popularity] = 0.0
    order = np.lexsort((np.arange(cuboid.num_items), -ratios))[:k]
    return [item_profile(cuboid, int(v)) for v in order if ratios[v] > 0]


def top_popular_items(cuboid: RatingCuboid, k: int = 10) -> list[ItemTemporalProfile]:
    """The ``k`` items with the largest overall score mass."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    totals = cuboid.item_popularity()
    order = np.lexsort((np.arange(cuboid.num_items), -totals))[:k]
    return [item_profile(cuboid, int(v)) for v in order if totals[v] > 0]
