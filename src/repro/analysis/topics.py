"""Topic inspection: top items, temporal profiles, topic↔event matching.

Backs the paper's qualitative analyses — Figure 2 (user-oriented vs
time-oriented topic temporal profiles) and Tables 5–7 (top items of
detected topics on Delicious and Douban Movie).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.cuboid import RatingCuboid
from ..typing import bit_deterministic


@dataclass(frozen=True)
class TopicSummary:
    """Top items of one topic with their generation probabilities."""

    topic: int
    kind: str  # "user" or "time"
    items: list[int]
    labels: list[str]
    probabilities: list[float]

    def __str__(self) -> str:
        rows = ", ".join(
            f"{label} ({p:.3f})" for label, p in zip(self.labels, self.probabilities)
        )
        return f"[{self.kind}-topic {self.topic}] {rows}"


def top_items(
    distribution: np.ndarray, k: int = 8, labels: list[str] | None = None
) -> list[tuple[int, str, float]]:
    """The ``k`` most probable items of one topic distribution.

    Returns ``(item id, label, probability)`` triples, ties broken toward
    smaller item ids.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    distribution = np.asarray(distribution, dtype=np.float64)
    order = np.lexsort((np.arange(distribution.size), -distribution))[:k]
    return [
        (
            int(v),
            labels[int(v)] if labels is not None else str(int(v)),
            float(distribution[v]),
        )
        for v in order
    ]


def summarize_topic(
    distribution: np.ndarray,
    topic: int,
    kind: str,
    k: int = 8,
    labels: list[str] | None = None,
) -> TopicSummary:
    """Build a :class:`TopicSummary` for one topic distribution."""
    triples = top_items(distribution, k=k, labels=labels)
    return TopicSummary(
        topic=topic,
        kind=kind,
        items=[t[0] for t in triples],
        labels=[t[1] for t in triples],
        probabilities=[t[2] for t in triples],
    )


def topic_temporal_profile(
    cuboid: RatingCuboid, distribution: np.ndarray, top_n: int = 20
) -> np.ndarray:
    """Empirical popularity of a topic's top items over time (Figure 2).

    Sums the per-interval score mass of the topic's ``top_n`` most
    probable items and normalises to a unit-sum curve over intervals.
    """
    ids = [v for v, _label, _p in top_items(distribution, k=top_n)]
    matrix = cuboid.interval_item_matrix()  # (T, V)
    profile = matrix[:, ids].sum(axis=1)
    total = profile.sum()
    return profile / total if total > 0 else profile


def time_topic_attention(theta_time: np.ndarray, topic: int) -> np.ndarray:
    """Share of public attention a time-oriented topic holds per interval.

    ``theta_time`` is the fitted ``(T, K2)`` temporal-context matrix; the
    returned curve is ``P(x | θ′_t)`` across ``t``.
    """
    if not 0 <= topic < theta_time.shape[1]:
        raise IndexError(f"topic {topic} out of range")
    return theta_time[:, topic].copy()


def spikiness(profile: np.ndarray) -> float:
    """Peak-to-mean ratio of a temporal curve.

    Time-oriented topics (event bursts) score high; stable user-oriented
    topics hover near 1 — the quantitative version of Figure 2's visual
    contrast.
    """
    profile = np.asarray(profile, dtype=np.float64)
    mean = profile.mean()
    if mean <= 0:
        return 0.0
    return float(profile.max() / mean)


@bit_deterministic
def match_topics(
    estimated: np.ndarray, reference: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Greedy one-to-one matching of estimated topics to reference topics.

    Similarity is the cosine between item distributions. Returns
    ``(assignment, similarity)`` where ``assignment[i]`` is the reference
    topic matched to estimated topic ``i`` (−1 when references ran out).
    Used to verify that fitted topics recover the generator's ground
    truth.
    """
    est = np.asarray(estimated, dtype=np.float64)
    ref = np.asarray(reference, dtype=np.float64)
    if est.shape[1] != ref.shape[1]:
        raise ValueError("topic matrices must share the item dimension")
    est_norm = est / (np.linalg.norm(est, axis=1, keepdims=True) + 1e-12)
    ref_norm = ref / (np.linalg.norm(ref, axis=1, keepdims=True) + 1e-12)
    similarity = est_norm @ ref_norm.T  # (Ke, Kr)

    assignment = np.full(est.shape[0], -1, dtype=np.int64)
    best = np.zeros(est.shape[0])
    available = set(range(ref.shape[0]))
    # Repeatedly take the globally best remaining (estimated, reference) pair.
    flat_order = np.argsort(similarity, axis=None, kind="stable")[::-1]
    for flat in flat_order:
        i, j = divmod(int(flat), ref.shape[0])
        if assignment[i] == -1 and j in available:
            assignment[i] = j
            best[i] = similarity[i, j]
            available.remove(j)
            if not available:
                break
    return assignment, best


def topic_purity(distribution: np.ndarray, member_items: np.ndarray) -> float:
    """Probability mass a topic places on a designated item set.

    With the synthetic generator's ground-truth event items this measures
    how cleanly a detected time-oriented topic isolates the event —
    the quantity Table 5 illustrates qualitatively.
    """
    member_items = np.asarray(member_items, dtype=np.int64)
    return float(np.asarray(distribution, dtype=np.float64)[member_items].sum())
