"""Mixing-weight (influence) analysis — Section 5.4, Figures 10–11.

TCAM learns a personal-interest influence probability ``λ_u`` per user;
``1 − λ_u`` is the temporal-context influence. The paper characterises a
platform's time-sensitivity by the cumulative distribution of these
probabilities across users: movie watchers are interest-driven (λ high),
news readers are context-driven (λ low).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class InfluenceSummary:
    """Headline statistics of a platform's influence distribution."""

    mean_interest: float
    median_interest: float
    fraction_interest_dominant: float  # users with λ_u > 0.5
    fraction_context_dominant: float  # users with 1 − λ_u > 0.5

    def __str__(self) -> str:
        return (
            f"mean λ = {self.mean_interest:.3f}, median λ = "
            f"{self.median_interest:.3f}, interest-dominant users = "
            f"{self.fraction_interest_dominant:.1%}"
        )


def influence_cdf(
    lambda_u: np.ndarray, grid: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of the personal-interest influence probabilities.

    Returns ``(x, F(x))`` where ``F(x)`` is the fraction of users with
    ``λ_u ≤ x`` — the curve Figures 10(a)/11(a) plot.
    """
    lam = np.asarray(lambda_u, dtype=np.float64)
    if lam.size == 0:
        raise ValueError("lambda_u is empty")
    if grid is None:
        grid = np.linspace(0.0, 1.0, 101)
    sorted_lam = np.sort(lam)
    cdf = np.searchsorted(sorted_lam, grid, side="right") / lam.size
    return grid, cdf


def context_influence_cdf(
    lambda_u: np.ndarray, grid: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """CDF of temporal-context influence ``1 − λ_u`` (Figures 10(b)/11(b))."""
    return influence_cdf(1.0 - np.asarray(lambda_u, dtype=np.float64), grid)


def fraction_above(lambda_u: np.ndarray, threshold: float) -> float:
    """Fraction of users whose ``λ_u`` exceeds ``threshold``.

    The paper's headline statistics have this form — e.g. ">76% of
    MovieLens users have personal-interest influence above 0.82".
    """
    lam = np.asarray(lambda_u, dtype=np.float64)
    if lam.size == 0:
        raise ValueError("lambda_u is empty")
    return float((lam > threshold).mean())


def summarize_influence(lambda_u: np.ndarray) -> InfluenceSummary:
    """Compute the headline influence statistics for one platform."""
    lam = np.asarray(lambda_u, dtype=np.float64)
    if lam.size == 0:
        raise ValueError("lambda_u is empty")
    return InfluenceSummary(
        mean_interest=float(lam.mean()),
        median_interest=float(np.median(lam)),
        fraction_interest_dominant=float((lam > 0.5).mean()),
        fraction_context_dominant=float((lam < 0.5).mean()),
    )
