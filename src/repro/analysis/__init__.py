"""Analyses of fitted models and raw data: topic inspection, influence
(λ) distributions, and burst detection."""

from .benchjson import BenchEntry, append_entries, default_context, latest, load_entries
from .bursts import (
    ItemTemporalProfile,
    burstiness,
    item_frequency_curve,
    item_profile,
    top_bursty_items,
    top_popular_items,
)
from .report import model_report, sparkline
from .influence import (
    InfluenceSummary,
    context_influence_cdf,
    fraction_above,
    influence_cdf,
    summarize_influence,
)
from .topics import (
    TopicSummary,
    match_topics,
    spikiness,
    summarize_topic,
    time_topic_attention,
    top_items,
    topic_purity,
    topic_temporal_profile,
)

__all__ = [
    "BenchEntry",
    "append_entries",
    "default_context",
    "latest",
    "load_entries",
    "model_report",
    "sparkline",
    "ItemTemporalProfile",
    "burstiness",
    "item_frequency_curve",
    "item_profile",
    "top_bursty_items",
    "top_popular_items",
    "InfluenceSummary",
    "context_influence_cdf",
    "fraction_above",
    "influence_cdf",
    "summarize_influence",
    "TopicSummary",
    "match_topics",
    "spikiness",
    "summarize_topic",
    "time_topic_attention",
    "top_items",
    "topic_purity",
    "topic_temporal_profile",
]
