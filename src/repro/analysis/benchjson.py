"""Machine-readable performance-trajectory files (``BENCH_*.json``).

The perf-regression harness under ``benchmarks/perf/`` appends one entry
per measured configuration to a JSON file at the repository root
(``BENCH_em.json`` for EM throughput, ``BENCH_topk.json`` for top-k
retrieval). Each file is a *trajectory*: a flat JSON array, ordered by
append time, that accumulates entries across runs and commits — so any
future perf PR can be compared against every baseline ever recorded, and
a regression shows up as a drop against the latest entry with the same
``name``.

Entry schema (one JSON object per measurement)::

    {
      "name":  "em/ttcam/r200000-k32x16/blocked-t1",   # stable series key
      "value": 1234567.0,                              # the measurement
      "unit":  "ratings/sec",
      "params": {"ratings": 200000, "k1": 32, ...},    # scale knobs
      "context": {"timestamp": "...", "cpu_count": 8,  # environment
                  "numpy": "2.4.6", "git": "cc3e22d"}
    }

``name`` is the longitudinal key: compare like against like, and read
``context`` before trusting a delta (a 1-CPU container cannot reproduce a
multi-core threaded number).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from pathlib import Path


@dataclass
class BenchEntry:
    """One measured point of a performance trajectory."""

    name: str
    value: float
    unit: str
    params: dict = field(default_factory=dict)
    context: dict = field(default_factory=dict)

    @classmethod
    def from_dict(cls, raw: dict) -> "BenchEntry":
        """Validate and rebuild an entry loaded from JSON."""
        missing = [key for key in ("name", "value", "unit") if key not in raw]
        if missing:
            raise ValueError(f"bench entry is missing required keys {missing}")
        return cls(
            name=str(raw["name"]),
            value=float(raw["value"]),
            unit=str(raw["unit"]),
            params=dict(raw.get("params", {})),
            context=dict(raw.get("context", {})),
        )


def peak_rss_bytes() -> int | None:
    """This process's peak resident set size, in bytes.

    On Linux this reads ``VmHWM`` from ``/proc/self/status``: unlike
    ``resource.ru_maxrss`` — which the kernel does *not* reset across
    ``execve``, so a freshly spawned worker inherits its parent's
    high-water mark — ``VmHWM`` belongs to the process's own memory map
    and starts clean. Elsewhere it falls back to ``ru_maxrss``,
    platform-normalized (macOS reports bytes, other Unixes kibibytes).
    The value is a high-water mark since this process's memory map
    existed, so a meaningful *per-variant* measurement needs one process
    per variant; ``bench_serve``'s V=1M tier spawns children for exactly
    this reason. Returns ``None`` where neither source is available.
    """
    if sys.platform == "linux":
        try:
            with open("/proc/self/status") as handle:
                for line in handle:
                    if line.startswith("VmHWM:"):
                        return int(line.split()[1]) * 1024
        except (OSError, ValueError, IndexError):  # pragma: no cover
            pass
    try:
        import resource
    except ImportError:  # pragma: no cover - POSIX-only module
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(peak)
    return int(peak) * 1024  # pragma: no cover - non-Linux Unix


def rss_bytes() -> int | None:
    """This process's *current* resident set size, in bytes (Linux).

    Reads ``VmRSS`` from ``/proc/self/status``. Unlike the high-water
    mark this goes down when pages are reclaimed, so it is the right
    number for "what is this worker holding right now". Returns ``None``
    off Linux.
    """
    if sys.platform == "linux":
        try:
            with open("/proc/self/status") as handle:
                for line in handle:
                    if line.startswith("VmRSS:"):
                        return int(line.split()[1]) * 1024
        except (OSError, ValueError, IndexError):  # pragma: no cover
            pass
    return None


def pss_bytes() -> int | None:
    """This process's proportional set size, in bytes (Linux).

    RSS counts every resident shared page fully in *every* process that
    maps it, so N workers serving one mmap snapshot look N× as expensive
    as they are. PSS (``/proc/self/smaps_rollup``) divides each shared
    page's cost among its mappers — the honest per-worker memory number
    for the multi-process serving service, and the one its bench uses to
    demonstrate sub-linear memory growth. Returns ``None`` where the
    kernel does not expose a rollup.
    """
    if sys.platform == "linux":
        try:
            with open("/proc/self/smaps_rollup") as handle:
                for line in handle:
                    if line.startswith("Pss:"):
                        return int(line.split()[1]) * 1024
        except (OSError, ValueError, IndexError):  # pragma: no cover
            pass
    return None


def default_context() -> dict:
    """Environment fingerprint stamped into every entry.

    Records everything needed to judge whether two entries are
    comparable: wall-clock timestamp, CPU budget, peak resident memory
    at capture time, library versions and the git revision (best-effort;
    absent outside a checkout).
    """
    import numpy

    context = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "cpu_count": os.cpu_count(),
        "numpy": numpy.__version__,
        "python": platform.python_version(),
    }
    peak = peak_rss_bytes()
    if peak is not None:
        context["peak_rss_bytes"] = peak
    try:
        revision = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=True,
        ).stdout.strip()
        if revision:
            context["git"] = revision
    except (OSError, subprocess.SubprocessError):
        pass
    return context


def load_entries(path: str | Path) -> list[BenchEntry]:
    """Read a trajectory file; a missing file is an empty trajectory."""
    path = Path(path)
    if not path.exists():
        return []
    raw = json.loads(path.read_text())
    if not isinstance(raw, list):
        raise ValueError(f"{path} is not a bench trajectory (expected a JSON array)")
    return [BenchEntry.from_dict(item) for item in raw]


def append_entries(
    path: str | Path, entries: list[BenchEntry] | BenchEntry
) -> list[BenchEntry]:
    """Append entries to a trajectory file atomically; return the full file.

    The file is rewritten through a same-directory temporary file and
    ``os.replace``, so a crash mid-write can never truncate the recorded
    history.
    """
    path = Path(path)
    if isinstance(entries, BenchEntry):
        entries = [entries]
    trajectory = load_entries(path)
    trajectory.extend(entries)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(json.dumps([asdict(entry) for entry in trajectory], indent=2) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return trajectory


def latest(entries: list[BenchEntry], name: str) -> BenchEntry | None:
    """The most recently appended entry of one series, or ``None``."""
    for entry in reversed(entries):
        if entry.name == name:
            return entry
    return None
