"""Human-readable model report cards.

Fitted topic-mixture models are only trustworthy if someone reads the
topics. :func:`model_report` renders a plain-text report of a fitted
TCAM model against its training data: influence statistics, user- and
time-oriented topic summaries with temporal sparklines, and the most
bursty topics — the at-a-glance inspection the paper performs manually
in Section 5.4–5.5.
"""

from __future__ import annotations

import numpy as np

from ..core.params import TTCAMParameters
from ..data.cuboid import RatingCuboid
from .influence import summarize_influence
from .topics import spikiness, top_items, topic_temporal_profile


def sparkline(values: np.ndarray, width: int = 32) -> str:
    """Render a non-negative curve as a fixed-width text sparkline."""
    blocks = " .:-=+*#%@"
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return ""
    resampled = np.interp(
        np.linspace(0, values.size - 1, width), np.arange(values.size), values
    )
    peak = resampled.max()
    if peak <= 0:
        return " " * width
    return "".join(blocks[int(v / peak * (len(blocks) - 1))] for v in resampled)


def _labels(cuboid: RatingCuboid) -> list[str] | None:
    if cuboid.item_index is None:
        return None
    known = len(cuboid.item_index)
    return [
        str(cuboid.item_index.label_of(v)) if v < known else str(v)
        for v in range(cuboid.num_items)
    ]


def model_report(
    params: TTCAMParameters,
    cuboid: RatingCuboid,
    top_k: int = 6,
    max_topics: int | None = None,
) -> str:
    """Render a full report card for a fitted TTCAM model.

    Parameters
    ----------
    params:
        Fitted parameters (``model.params_``).
    cuboid:
        The training cuboid (for temporal profiles and labels).
    top_k:
        Items shown per topic.
    max_topics:
        Cap on topics listed per section (None = all).
    """
    if params.num_items != cuboid.num_items:
        raise ValueError("parameters and cuboid disagree on the catalogue size")
    labels = _labels(cuboid)
    lines: list[str] = []

    lines.append("=" * 72)
    lines.append("TCAM model report")
    lines.append("=" * 72)
    lines.append(
        f"users {params.num_users}, items {params.num_items}, "
        f"intervals {params.num_intervals}, "
        f"topics {params.num_user_topics}+{params.num_time_topics}"
    )

    summary = summarize_influence(params.lambda_u)
    lines.append("")
    lines.append(f"influence: {summary}")
    platform = (
        "interest-driven (movie/book-like)"
        if summary.fraction_interest_dominant > 0.5
        else "context-driven (news-like)"
    )
    lines.append(f"platform character: {platform}")

    def topic_block(title, matrix, count):
        lines.append("")
        lines.append(f"--- {title} ---")
        shown = count if max_topics is None else min(count, max_topics)
        rows = []
        for z in range(count):
            profile = topic_temporal_profile(cuboid, matrix[z])
            rows.append((z, spikiness(profile), profile))
        # Most-used first is unknowable without θ mass; sort by spikiness
        # descending for time topics (they are the peaked ones).
        for z, spike, profile in rows[:shown]:
            names = ", ".join(
                label for _v, label, _p in top_items(matrix[z], k=top_k, labels=labels)
            )
            lines.append(f"[{z:2d}] spike {spike:5.1f}  {sparkline(profile)}")
            lines.append(f"     {names}")

    topic_block(
        "user-oriented topics (interests)", params.phi, params.num_user_topics
    )
    topic_block(
        "time-oriented topics (public attention)",
        params.phi_time,
        params.num_time_topics,
    )

    time_spikes = [
        spikiness(topic_temporal_profile(cuboid, params.phi_time[x]))
        for x in range(params.num_time_topics)
    ]
    user_spikes = [
        spikiness(topic_temporal_profile(cuboid, params.phi[z]))
        for z in range(params.num_user_topics)
    ]
    lines.append("")
    lines.append(
        f"separation: mean spikiness user-oriented {np.mean(user_spikes):.2f} "
        f"vs time-oriented {np.mean(time_spikes):.2f}"
    )
    lines.append("=" * 72)
    return "\n".join(lines)
