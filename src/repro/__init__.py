"""TCAM: Temporal Context-Aware Mixture models for user behavior in
social media systems.

A full reproduction of Yin, Cui, Chen, Hu & Huang, *"A Temporal
Context-Aware Model for User Behavior Modeling in Social Media Systems"*,
SIGMOD 2014 — the ITCAM/TTCAM mixture models with EM inference, the
item-weighting scheme (W-ITCAM/W-TTCAM), Threshold-Algorithm-based
temporal top-k recommendation, the UT/TT/BPRMF/BPTF comparison models,
synthetic substitutes for the four evaluation datasets, and the complete
evaluation harness.

Quickstart::

    from repro import TTCAM, TemporalRecommender
    from repro.data import profile, generate, holdout_split

    cuboid, truth = generate(profile("digg", scale=0.5))
    split = holdout_split(cuboid)
    model = TTCAM(num_user_topics=10, num_time_topics=8, weighted=True)
    model.fit(split.train)
    recommender = TemporalRecommender(model)
    result = recommender.recommend(user=0, interval=5, k=10)
"""

from .baselines import (
    BPRMF,
    BPTF,
    GlobalPopularity,
    RecentPopularity,
    TimeTopicModel,
    UserTopicModel,
)
from .core import ITCAM, TTCAM, PartitionedTTCAM, apply_item_weighting, compute_item_weights
from .data import Rating, RatingCuboid, generate, holdout_split, profile
from .evaluation import ModelSpec, evaluate_ranking, run_accuracy_experiment
from .extensions import BackgroundTTCAM, OnlineTTCAM
from .recommend import TemporalRecommender
from .streaming import EventLog, SnapshotPublisher, StreamEvent, StreamIngestor

__version__ = "1.0.0"

__all__ = [
    "BPRMF",
    "BPTF",
    "GlobalPopularity",
    "RecentPopularity",
    "TimeTopicModel",
    "UserTopicModel",
    "ITCAM",
    "TTCAM",
    "PartitionedTTCAM",
    "apply_item_weighting",
    "compute_item_weights",
    "RatingCuboid",
    "Rating",
    "generate",
    "holdout_split",
    "profile",
    "ModelSpec",
    "evaluate_ranking",
    "run_accuracy_experiment",
    "BackgroundTTCAM",
    "OnlineTTCAM",
    "TemporalRecommender",
    "EventLog",
    "StreamEvent",
    "StreamIngestor",
    "SnapshotPublisher",
    "__version__",
]
