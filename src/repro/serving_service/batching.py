"""Adaptive micro-batching for the serving front-end.

The GEMM batch engine (:mod:`repro.recommend.serving`) amortises
per-query cost across rows, but online traffic arrives one small request
at a time. This module coalesces concurrent requests into micro-batches
with the standard two-trigger policy:

* **size** — the pending batch reaches ``max_batch`` queries, or one
  oversized request alone exceeds it (it then flushes immediately as its
  own batch);
* **deadline** — ``deadline_s`` elapsed since the first pending query
  arrived, so a lone query is never parked waiting for company longer
  than the configured latency budget.

The core policy lives in :class:`BatchAccumulator`, a pure object driven
by explicit timestamps — the Hypothesis property tests partition
arbitrary query streams through it and assert the served results are
**bitwise identical** to one big :meth:`recommend_batch` call, which
holds because the batch engine's per-row results are split-invariant
(candidate selection is per-row and the exact rescore is per-item).
:class:`MicroBatchQueue` is the thin asyncio wrapper that owns the
deadline timer and the pending futures.

**Batch integrity.** A request's queries are never split across two
flushes: whatever batch a request lands in, all of its rows are served
by the same downstream call and therefore by the same serving
generation. A hot swap can land between micro-batches, never inside
one.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

__all__ = ["BatchAccumulator", "BatchRequest", "MicroBatchQueue"]


@dataclass
class BatchRequest:
    """One admitted request: a list of queries plus its completion token.

    ``token`` is opaque to the accumulator — the asyncio layer stores the
    request's future there, tests store indexes.
    """

    queries: list[tuple[int, int]]
    k: int
    token: Any = None


@dataclass
class BatchAccumulator:
    """Pure size/deadline micro-batch policy (no clocks, no I/O).

    Driven with explicit ``now`` timestamps so tests can partition a
    query stream deterministically. Single-writer contract: an
    accumulator belongs to one event loop (or one test) and is never
    shared across threads.
    """

    max_batch: int = 64
    deadline_s: float = 0.002
    _pending: list[BatchRequest] = field(default_factory=list)
    _pending_queries: int = 0
    _deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {self.max_batch}")
        if self.deadline_s < 0:
            raise ValueError(f"deadline_s must be >= 0, got {self.deadline_s}")

    @property
    def pending_queries(self) -> int:
        """Queries currently waiting for a flush trigger."""
        return self._pending_queries

    def deadline(self) -> float | None:
        """Absolute time of the pending deadline (``None`` when empty)."""
        return self._deadline

    def add(self, request: BatchRequest, now: float) -> list[BatchRequest] | None:
        """Admit one request; return a flushed batch when size-triggered.

        The request that crosses the size boundary flushes *with* the
        batch it completed — its caller is the one whose arrival made
        the batch worth scoring.
        """
        if not request.queries:
            raise ValueError("a batch request needs at least one query")
        if self._deadline is None:
            self._deadline = now + self.deadline_s
        self._pending.append(request)
        self._pending_queries += len(request.queries)
        if self._pending_queries >= self.max_batch:
            return self.flush()
        return None

    def due(self, now: float) -> bool:
        """True when the pending batch's deadline has passed."""
        return self._deadline is not None and now >= self._deadline

    def flush(self) -> list[BatchRequest]:
        """Take every pending request (possibly empty) and reset."""
        batch, self._pending = self._pending, []
        self._pending_queries = 0
        self._deadline = None
        return batch


class MicroBatchQueue:
    """Asyncio front of one worker's :class:`BatchAccumulator`.

    ``flush_cb`` receives each flushed batch (a non-empty list of
    :class:`BatchRequest` whose tokens are :class:`asyncio.Future`
    objects) and is responsible for resolving every future. The queue
    itself never touches request results.

    Single-writer contract: all methods run on the owning event loop
    thread; the deadline timer is a ``call_later`` handle on the same
    loop, so no cross-thread state exists.
    """

    def __init__(
        self,
        flush_cb: Callable[[list[BatchRequest]], None],
        max_batch: int = 64,
        deadline_s: float = 0.002,
    ) -> None:
        self._accumulator = BatchAccumulator(max_batch=max_batch, deadline_s=deadline_s)
        self._flush_cb = flush_cb
        self._timer: asyncio.TimerHandle | None = None
        self._closed = False

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; closed queues refuse admission."""
        return self._closed

    def submit(
        self, queries: Sequence[tuple[int, int]], k: int
    ) -> "asyncio.Future[dict[str, Any]]":
        """Admit one request; the returned future resolves with its rows.

        Raises :class:`RuntimeError` when the queue is closed (the
        service maps this to the draining refusal before it ever gets
        here, so the error is a programming-bug backstop, not a client
        surface).
        """
        if self._closed:
            raise RuntimeError("micro-batch queue is closed")
        loop = asyncio.get_running_loop()
        future: asyncio.Future[dict[str, Any]] = loop.create_future()
        request = BatchRequest(
            queries=[(int(u), int(t)) for u, t in queries], k=int(k), token=future
        )
        flushed = self._accumulator.add(request, loop.time())
        if flushed is not None:
            self._cancel_timer()
            self._flush_cb(flushed)
        elif self._timer is None:
            deadline = self._accumulator.deadline()
            assert deadline is not None  # add() always arms a deadline
            self._timer = loop.call_at(deadline, self._on_deadline)
        return future

    def _on_deadline(self) -> None:
        self._timer = None
        batch = self._accumulator.flush()
        if batch:
            self._flush_cb(batch)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def flush_now(self) -> None:
        """Flush whatever is pending immediately (drain path)."""
        self._cancel_timer()
        batch = self._accumulator.flush()
        if batch:
            self._flush_cb(batch)

    def close(self) -> None:
        """Flush pending work and refuse all further admission."""
        self._closed = True
        self.flush_now()
