"""Wire protocol of the process-parallel serving service.

Client ↔ front-end traffic is **newline-delimited JSON** over TCP: one
request object per line, one response object per line, matched by a
client-chosen ``id``. JSON floats round-trip exactly in Python (``json``
emits ``repr``-style shortest representations and parses them back to
the identical IEEE-754 double), so scores cross the wire **bitwise
intact** — the service bench and tests rely on this to cross-check
service responses against direct :meth:`recommend_batch` output.

Request objects::

    {"id": 7, "queries": [[user, interval], ...], "k": 10}
    {"id": 8, "op": "status"}
    {"id": 9, "op": "publish", "path": "/path/to/snapshot.npz",
     "mmap": true, "drift": false}

Responses always echo ``id``. A query response carries parallel per-row
lists so a client can check batch integrity::

    {"id": 7, "results": [{"items": [...], "scores": [...]}, ...],
     "generation": [g0, g1, ...], "worker": [w0, w1, ...],
     "degraded": [false, ...]}

A service that is draining answers every new request with
``{"id": ..., "error": "draining"}`` and closes the connection once the
line is flushed; queries already admitted still complete.

Front-end ↔ worker traffic never leaves the machine: each worker owns a
duplex :func:`multiprocessing.Pipe` carrying small picklable dicts with
a ``type`` field (``"batch"``, ``"publish"``, ``"revert"``, ``"status"``,
``"shutdown"``; workers answer ``"ready"``, ``"result"``, ``"published"``,
``"status"``, ``"bye"``, ``"error"``). The pipe is strictly
request/response per worker, so a hot-swap command enqueued between two
micro-batches is a serialization point: every batch is served entirely
before or entirely after the swap — a torn batch is impossible by
construction on top of the recommender's own RCU generations.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "MAX_LINE_BYTES",
    "decode_line",
    "encode_line",
    "error_response",
]

#: Upper bound on one protocol line; a line longer than this is refused
#: rather than buffered (an accidental binary client must not balloon
#: front-end memory).
MAX_LINE_BYTES = 8 << 20


def encode_line(message: dict[str, Any]) -> bytes:
    """Serialize one protocol message to its wire line (with newline)."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one wire line into a message dict.

    Raises :class:`ValueError` for anything that is not a JSON object —
    the caller turns that into a structured ``error`` response instead
    of dropping the connection silently.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ValueError(f"protocol line exceeds {MAX_LINE_BYTES} bytes")
    decoded = json.loads(line.decode("utf-8"))
    if not isinstance(decoded, dict):
        raise ValueError("protocol messages must be JSON objects")
    return decoded


def error_response(request_id: object, error: str) -> dict[str, Any]:
    """A structured refusal echoing the request id (``None`` when unknown)."""
    return {"id": request_id, "error": error}
