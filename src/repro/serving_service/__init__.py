"""Process-parallel serving service with zero-copy shared snapshots.

The single-process serving stack (:mod:`repro.recommend`) answers a
batch of queries quickly; this package turns it into a *service*:

* :mod:`.batching` — adaptive micro-batching (size/deadline flush) that
  coalesces concurrent requests into :meth:`recommend_batch` calls
  without ever splitting one request across flushes;
* :mod:`.shared` — zero-copy snapshot sharing across worker processes
  (mmap sidecar page cache, or one ``multiprocessing.shared_memory``
  segment of derived serving arrays);
* :mod:`.worker` — the spawned worker process: its own recommender +
  publish gate, driven over a strict request/response pipe;
* :mod:`.service` — the asyncio TCP front-end: user-sharded routing,
  fleet-wide RCU hot swaps with rollback, graceful SIGTERM drain;
* :mod:`.client` / :mod:`.protocol` — the newline-JSON wire protocol
  and a minimal blocking client.

``tcam serve`` (see :mod:`repro.cli`) is the operational entry point;
``benchmarks/perf/bench_service.py`` measures p50/p99 latency, qps and
per-worker PSS across worker counts.
"""

from .batching import BatchAccumulator, BatchRequest, MicroBatchQueue
from .client import ServiceClient, ServiceError
from .protocol import MAX_LINE_BYTES, decode_line, encode_line, error_response
from .service import ServiceConfig, ServingService, run_service
from .shared import SharedDerivedStore, SharedSnapshot
from .worker import WorkerConfig, serve_requests, worker_main

__all__ = [
    "BatchAccumulator",
    "BatchRequest",
    "MicroBatchQueue",
    "ServiceClient",
    "ServiceError",
    "MAX_LINE_BYTES",
    "decode_line",
    "encode_line",
    "error_response",
    "ServiceConfig",
    "ServingService",
    "run_service",
    "SharedDerivedStore",
    "SharedSnapshot",
    "WorkerConfig",
    "serve_requests",
    "worker_main",
]
