"""Zero-copy sharing of derived serving arrays across worker processes.

Worker processes opened on a snapshot *with* an mmap sidecar
(:mod:`repro.recommend.paramstore`) already share physical memory for
free: every worker maps the same files and the kernel keeps one page
cache. This module covers the other half of the tentpole — snapshots
*without* a sidecar, whose derived serving arrays (the ``(V, K)``
rescore transpose, the Threshold-Algorithm sorted lists, the
per-interval context vectors and their float32 images with error
bounds) would otherwise be recomputed and held **per worker**.

The parent computes those arrays once (:func:`derived_arrays`), packs
them into a single :class:`multiprocessing.shared_memory.SharedMemory`
segment (:class:`SharedSnapshot`) and ships workers a small picklable
manifest of ``(name, dtype, shape, offset)`` entries. Each worker
attaches the segment read-only-by-convention and wraps it in a
:class:`SharedDerivedStore`, which duck-types the
:class:`~repro.recommend.paramstore.ParamStore` accessor surface the
serving layer consults (``item_topic`` / ``sorted_lists`` /
``quantized_selection`` / ``context_row`` / ``context_vector``), so
``model.param_store = store`` is all the wiring a worker needs.

Single-writer contract: the parent writes the segment once, before any
worker attaches; after that every view is read-only by convention and
never mutated, so cross-process access needs no lock.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Any, Hashable, Mapping

import numpy as np

from ..core.params import ITCAMParameters, TTCAMParameters
from ..recommend.quantize import ContextVector
from ..recommend.threshold import SortedTopicLists
from ..typing import AnyArray, FloatArray

__all__ = [
    "SharedDerivedStore",
    "SharedSnapshot",
    "attach_arrays",
    "derived_arrays",
    "pack_arrays",
]

#: Per-array alignment inside the segment; keeps every view on a cache
#: line boundary so vectorised kernels see the layout they expect.
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def derived_arrays(params: ITCAMParameters | TTCAMParameters) -> dict[str, AnyArray]:
    """Compute the derived serving arrays worth sharing for ``params``.

    Mirrors what :func:`repro.recommend.paramstore.write_store` persists
    (minus the quantized selection forms, which are cheap enough to
    build lazily per worker): for TTCAM the static rescore transpose,
    sorted topic lists and exact per-interval context block; for both
    variants the float32 context image plus its per-interval error
    statistics. Context rows are built with the same row-by-row GEMV as
    the online path so shared rows are bit-identical to freshly
    computed ones.
    """
    arrays: dict[str, AnyArray] = {}
    if isinstance(params, TTCAMParameters):
        lists = SortedTopicLists.build(params.topic_item_matrix())
        arrays["item_topic"] = lists.item_topic
        arrays["sorted_order"] = lists.order
        arrays["sorted_values"] = lists.values
        intervals = int(params.theta_time.shape[0])
        context = np.empty((intervals, params.num_items), dtype=np.float64)
        for t in range(intervals):
            context[t] = params.theta_time[t] @ params.phi_time
        arrays["context"] = context
    elif isinstance(params, ITCAMParameters):
        context = np.asarray(params.theta_time, dtype=np.float64)
    else:
        raise TypeError(f"unsupported parameter type: {type(params).__name__}")

    intervals = int(context.shape[0])
    context32 = context.astype(np.float32)
    delta = np.empty(intervals, dtype=np.float64)
    abs_max = np.empty(intervals, dtype=np.float64)
    for t in range(intervals):
        vector = ContextVector.from_exact(context[t])
        delta[t] = vector.delta
        abs_max[t] = vector.abs_max
    arrays["context32"] = context32
    arrays["context_delta"] = delta
    arrays["context_absmax"] = abs_max
    return arrays


def pack_arrays(
    arrays: Mapping[str, AnyArray], variant: str
) -> tuple[shared_memory.SharedMemory, dict[str, Any]]:
    """Pack named arrays into one fresh shared-memory segment.

    Returns the owning segment and a picklable manifest: segment name,
    variant tag and per-array ``(dtype, shape, offset)``. The caller
    owns the segment's lifetime (close + unlink).
    """
    specs: dict[str, dict[str, Any]] = {}
    offset = 0
    contiguous = {
        name: np.ascontiguousarray(array) for name, array in arrays.items()
    }
    for name, array in contiguous.items():
        offset = _aligned(offset)
        specs[name] = {
            "dtype": str(array.dtype),
            "shape": list(array.shape),
            "offset": offset,
        }
        offset += int(array.nbytes)
    segment = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for name, array in contiguous.items():
        spec = specs[name]
        view: AnyArray = np.ndarray(
            array.shape, dtype=array.dtype, buffer=segment.buf, offset=spec["offset"]
        )
        view[...] = array
    manifest = {"segment": segment.name, "variant": variant, "arrays": specs}
    return segment, manifest


def attach_arrays(
    manifest: Mapping[str, Any],
) -> tuple[shared_memory.SharedMemory, dict[str, AnyArray]]:
    """Attach a packed segment and rebuild its array views (zero-copy).

    The returned arrays alias the segment buffer directly; the caller
    must keep the segment object alive as long as the views are used,
    and close (never unlink) it afterwards — the packing parent owns
    the segment's lifetime.
    """
    # Attaching would register the segment with the resource tracker,
    # which (a) unlinks the parent-owned segment when the *worker*
    # exits, destroying it under every sibling, and (b) unbalances the
    # tracker's name set when several workers attach the same segment.
    # Python 3.13 grows ``track=False``; until then, suppress the
    # registration for the duration of the attach.
    try:  # pragma: no cover - platform-specific resource tracking
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register

        def _register_except_shm(name: str, rtype: str) -> None:
            if rtype != "shared_memory":
                original_register(name, rtype)

        resource_tracker.register = _register_except_shm  # type: ignore[assignment]
    except ImportError:
        original_register = None  # type: ignore[assignment]
        resource_tracker = None  # type: ignore[assignment]
    try:
        segment = shared_memory.SharedMemory(name=str(manifest["segment"]))
    finally:
        if resource_tracker is not None and original_register is not None:
            resource_tracker.register = original_register  # type: ignore[assignment]
    arrays: dict[str, AnyArray] = {}
    for name, spec in dict(manifest["arrays"]).items():
        arrays[str(name)] = np.ndarray(
            tuple(spec["shape"]),
            dtype=np.dtype(str(spec["dtype"])),
            buffer=segment.buf,
            offset=int(spec["offset"]),
        )
    return segment, arrays


class SharedSnapshot:
    """Parent-side owner of one packed derived-array segment.

    Create it from fitted parameters, hand :attr:`manifest` to each
    worker (it is small and picklable), and :meth:`close` when the
    service shuts down — closing unlinks the segment, so it must outlive
    every worker.
    """

    def __init__(self, params: ITCAMParameters | TTCAMParameters) -> None:
        variant = "ttcam" if isinstance(params, TTCAMParameters) else "itcam"
        self._segment, self.manifest = pack_arrays(derived_arrays(params), variant)

    @property
    def nbytes(self) -> int:
        """Size of the shared segment in bytes."""
        return int(self._segment.size)

    def close(self) -> None:
        """Release and unlink the segment (idempotent)."""
        try:
            self._segment.close()
            self._segment.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - double close
            pass


class SharedDerivedStore:
    """Worker-side :class:`ParamStore`-shaped view of a packed segment.

    Exposes exactly the accessor surface the serving layer consults on
    ``model.param_store``. Arrays are read-only views into shared
    memory; ``sorted_lists`` is memoised so one worker's queries share a
    single :class:`SortedTopicLists` (and its per-query scratch
    buffers), mirroring the mmap store.
    """

    def __init__(
        self, segment: shared_memory.SharedMemory, arrays: dict[str, AnyArray], variant: str
    ) -> None:
        self._segment = segment
        self._arrays = arrays
        self.variant = variant
        self._lists: SortedTopicLists | None = None

    @classmethod
    def attach(cls, manifest: Mapping[str, Any]) -> "SharedDerivedStore":
        """Attach the segment named by a parent's manifest."""
        segment, arrays = attach_arrays(manifest)
        return cls(segment, arrays, str(manifest.get("variant", "ttcam")))

    def close(self) -> None:
        """Drop the views and close this process's mapping."""
        self._arrays = {}
        self._lists = None
        try:
            self._segment.close()
        except OSError:  # pragma: no cover - double close
            pass

    # -- ParamStore accessor surface --------------------------------------

    def item_topic(self, key: Hashable) -> FloatArray | None:
        """Shared ``(V, K)`` rescore transpose (TTCAM static key only)."""
        if self.variant != "ttcam" or key != "static":
            return None
        result: FloatArray | None = self._arrays.get("item_topic")
        return result

    def sorted_lists(self, key: Hashable) -> SortedTopicLists | None:
        """Shared Threshold-Algorithm index (TTCAM static key only)."""
        if self.variant != "ttcam" or key != "static":
            return None
        if self._lists is None:
            order = self._arrays.get("sorted_order")
            values = self._arrays.get("sorted_values")
            item_topic = self._arrays.get("item_topic")
            if order is None or values is None or item_topic is None:
                return None
            self._lists = SortedTopicLists(
                order=order, values=values, item_topic=item_topic
            )
        return self._lists

    def quantized_selection(self, dtype: str) -> None:
        """Quantized Φ is not shared — workers build it lazily."""
        return None

    def context_row(self, interval: int, dtype: str) -> AnyArray | None:
        """One interval's shared context score vector."""
        if dtype == "float32":
            source = self._arrays.get("context32")
        elif self.variant == "ttcam":
            source = self._arrays.get("context")
        else:
            # ITCAM's float64 context is theta_time itself, which the
            # worker's own parameter container already holds.
            return None
        if source is None or not 0 <= interval < source.shape[0]:
            return None
        return source[interval]

    def context_vector(self, interval: int) -> ContextVector | None:
        """One interval's shared float32 context vector with bounds."""
        values = self.context_row(interval, "float32")
        delta = self._arrays.get("context_delta")
        abs_max = self._arrays.get("context_absmax")
        if values is None or delta is None or abs_max is None:
            return None
        if not 0 <= interval < delta.shape[0]:
            return None
        return ContextVector(
            values=values,
            delta=float(delta[interval]),
            abs_max=float(abs_max[interval]),
        )
