"""Minimal blocking client for the serving service's wire protocol.

One TCP connection, one request in flight at a time — deliberately the
simplest correct client, because its consumers (the ``bench_service``
load generator, the hot-swap stress test's client *processes*, CLI
smoke checks) each want many independent connections rather than one
clever multiplexed one.
"""

from __future__ import annotations

import socket
from typing import Any, Sequence

from .protocol import MAX_LINE_BYTES, decode_line, encode_line

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The service answered a request with a structured error."""


class ServiceClient:
    """Blocking newline-JSON client (single-writer: not thread-safe)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        try:
            self._file = self._sock.makefile("rb")
        except Exception:
            # A failed __init__ never returns the object, so close() could
            # never run — release the connected socket here or it leaks.
            self._sock.close()
            raise
        self._next_id = 0

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _roundtrip(self, message: dict[str, Any]) -> dict[str, Any]:
        self._next_id += 1
        message = {"id": self._next_id, **message}
        self._sock.sendall(encode_line(message))
        line = self._file.readline(MAX_LINE_BYTES + 1)
        if not line:
            raise ServiceError("service closed the connection")
        reply = decode_line(line)
        if reply.get("id") != message["id"]:
            raise ServiceError(
                f"response id {reply.get('id')!r} does not match request {message['id']}"
            )
        return reply

    def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """One raw exchange; raises :class:`ServiceError` on ``error``."""
        reply = self._roundtrip(message)
        if "error" in reply:
            raise ServiceError(str(reply["error"]))
        return reply

    def recommend(
        self, queries: Sequence[tuple[int, int]], k: int = 10
    ) -> dict[str, Any]:
        """Top-k for ``(user, interval)`` queries, in query order."""
        return self.request(
            {"queries": [[int(u), int(t)] for u, t in queries], "k": int(k)}
        )

    def status(self) -> dict[str, Any]:
        """Front-end counters plus per-worker serving state."""
        return self.request({"op": "status"})

    def publish(
        self, path: str, mmap: bool | None = None, drift: bool = False
    ) -> dict[str, Any]:
        """Fleet-wide hot swap; the reply reports accept/reject/revert.

        A fleet-rejected publish is a *successful* exchange (the reply
        carries ``published: false`` and the per-worker reasons), so it
        returns normally rather than raising.
        """
        message: dict[str, Any] = {
            "op": "publish",
            "path": str(path),
            "drift": bool(drift),
        }
        if mmap is not None:
            message["mmap"] = bool(mmap)
        return self.request(message)
