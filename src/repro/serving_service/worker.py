"""Worker-process side of the serving service.

Each worker is a spawned child running :func:`worker_main`: it opens the
*same* snapshot as every sibling (zero-copy — the mmap sidecar shares
the page cache; without a sidecar the parent's
:class:`~repro.serving_service.shared.SharedSnapshot` segment shares the
derived arrays), builds its own
:class:`~repro.recommend.recommender.TemporalRecommender`, and then
serves a strict request/response loop over its end of a
``multiprocessing.Pipe``.

The loop is single-threaded on purpose: a ``publish`` control message
enqueued between two ``batch`` messages is a serialization point, so a
hot swap can never land inside a micro-batch — every batch is served
entirely by one generation, on top of the recommender's own RCU
guarantee. Swaps that fail the publisher's health gate roll back (the
worker keeps serving its current generation and reports the reason); on
start-up a worker consults the service's
:class:`~repro.streaming.publisher.GenerationFile` so a late or
restarted worker comes up on the *currently published* snapshot, not
the one the service was launched with.

Single-writer contract: all state in this module belongs to the worker
process's main thread; nothing here is shared between threads.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from typing import Any, Mapping, Sequence

from ..analysis.benchjson import pss_bytes, rss_bytes
from ..recommend.recommender import TemporalRecommender
from ..typing import bit_deterministic
from ..streaming.publisher import GenerationFile, SnapshotPublisher
from .shared import SharedDerivedStore

__all__ = ["WorkerConfig", "serve_requests", "worker_main"]


@dataclass(frozen=True)
class WorkerConfig:
    """Everything one worker needs, shipped picklable through ``spawn``.

    Attributes
    ----------
    index:
        This worker's shard index in ``range(num_workers)``.
    num_workers:
        Total workers; with user-sharded routing this worker serves the
        users with ``user % num_workers == index``.
    snapshot:
        Path of the snapshot to open at start-up (superseded by a newer
        :class:`GenerationFile` record, if one exists).
    mmap:
        Open the snapshot through its mmap sidecar store.
    serve_dtype:
        Selection dtype for every batch this worker scores.
    generation_file:
        Path of the service's generation file (``None`` disables the
        start-up catch-up read).
    shared_manifest:
        Manifest of the parent's :class:`SharedSnapshot` segment to
        attach (``None`` when the snapshot has its own sidecar).
    probes:
        ``(user, interval)`` probe queries for the publish health gate.
    """

    index: int
    num_workers: int
    snapshot: str
    mmap: bool = False
    serve_dtype: str = "float64"
    generation_file: str | None = None
    shared_manifest: Mapping[str, Any] | None = None
    probes: tuple[tuple[int, int], ...] = ((0, 0),)


@dataclass
class _WorkerState:
    """Mutable serving state of one worker-process loop."""

    config: WorkerConfig
    recommender: TemporalRecommender
    publisher: SnapshotPublisher
    snapshot: str
    store: SharedDerivedStore | None = None
    batches: int = 0
    queries: int = 0
    extra: dict[str, Any] = field(default_factory=dict)


@bit_deterministic
def serve_requests(
    recommender: TemporalRecommender,
    requests: Sequence[Mapping[str, Any]],
    dtype: str,
) -> list[dict[str, Any]]:
    """Serve one micro-batch of coalesced requests, preserving order.

    Requests sharing ``k`` are concatenated into a single
    :meth:`recommend_batch_with_status` call and split back afterwards —
    the per-row results are split-invariant, so coalescing cannot change
    any request's items, scores or tie order. Scores stay float64 end to
    end (JSON round-trips them bitwise). A group that fails to serve
    marks only its own requests with an ``error`` entry.
    """
    groups: dict[int, list[int]] = {}
    for position, request in enumerate(requests):
        groups.setdefault(int(request["k"]), []).append(position)
    out: list[dict[str, Any]] = [{} for _ in requests]
    for k, positions in groups.items():
        flat: list[tuple[int, int]] = []
        for position in positions:
            flat.extend((int(u), int(t)) for u, t in requests[position]["queries"])
        try:
            results, statuses = recommender.recommend_batch_with_status(
                flat, k=k, dtype=dtype
            )
        except Exception as exc:  # noqa: BLE001 - per-group error surface
            for position in positions:
                out[position] = {"error": f"{type(exc).__name__}: {exc}"}
            continue
        cursor = 0
        for position in positions:
            width = len(requests[position]["queries"])
            rows = results[cursor : cursor + width]
            stats = statuses[cursor : cursor + width]
            cursor += width
            out[position] = {
                "results": [
                    {
                        "items": [int(item) for item in row.items],
                        "scores": [float(score) for score in row.scores],
                    }
                    for row in rows
                ],
                "generation": [int(status.generation) for status in stats],
                "degraded": [bool(status.degraded) for status in stats],
            }
    return out


def _open_recommender(config: WorkerConfig) -> tuple[TemporalRecommender, str]:
    """Open the serving recommender, catching up via the generation file."""
    snapshot = config.snapshot
    if config.generation_file is not None:
        record = GenerationFile(config.generation_file).read()
        if record is not None and record["snapshot"]:
            snapshot = record["snapshot"]
    recommender = TemporalRecommender.from_snapshot(snapshot, mmap=config.mmap)
    return recommender, snapshot


def _attach_shared(state: _WorkerState) -> None:
    """Attach the parent's derived-array segment when the model needs it."""
    manifest = state.config.shared_manifest
    model = state.recommender.model
    if manifest is None or model is None:
        return
    if getattr(model, "param_store", None) is not None:
        return  # the mmap sidecar already provides the derived arrays
    state.store = SharedDerivedStore.attach(manifest)
    model.param_store = state.store


def _status_payload(state: _WorkerState) -> dict[str, Any]:
    """The worker's observable serving state for ``status`` replies."""
    recommender = state.recommender
    return {
        "type": "status",
        "worker": state.config.index,
        "pid": os.getpid(),
        "snapshot": state.snapshot,
        "generation": int(recommender.generation),
        "swaps": int(recommender.swap_count),
        "rollbacks": int(recommender.rollback_count),
        "drift_events": int(recommender.drift_count),
        "batches": state.batches,
        "queries": state.queries,
        "rss_bytes": rss_bytes(),
        "pss_bytes": pss_bytes(),
        "shared": state.store is not None,
        "mmap": bool(state.config.mmap),
    }


def _handle(state: _WorkerState, message: Mapping[str, Any]) -> dict[str, Any] | None:
    """Dispatch one pipe message; ``None`` means exit the loop after reply."""
    kind = message.get("type")
    if kind == "batch":
        requests = list(message.get("requests", ()))
        state.batches += 1
        state.queries += sum(len(request["queries"]) for request in requests)
        return {
            "type": "result",
            "worker": state.config.index,
            "responses": serve_requests(
                state.recommender, requests, state.config.serve_dtype
            ),
        }
    if kind == "publish":
        result = state.publisher.publish_file(
            str(message["path"]),
            drift=bool(message.get("drift", False)),
            mmap=bool(message.get("mmap", state.config.mmap)),
        )
        if result.published:
            state.snapshot = str(message["path"])
        return {
            "type": "published",
            "worker": state.config.index,
            "published": bool(result.published),
            "generation": int(result.generation),
            "reason": result.reason,
        }
    if kind == "revert":
        result = state.publisher.revert()
        return {
            "type": "published",
            "worker": state.config.index,
            "published": bool(result.published),
            "generation": int(result.generation),
            "reason": result.reason,
        }
    if kind == "status":
        return _status_payload(state)
    if kind == "shutdown":
        return None
    return {
        "type": "error",
        "worker": state.config.index,
        "error": f"unknown message type {kind!r}",
    }


def worker_main(config: WorkerConfig, conn: Connection) -> None:
    """Entry point of one spawned worker process.

    Opens the snapshot, announces readiness, then answers pipe messages
    until ``shutdown`` (or a closed pipe). Every reply is sent before
    the next message is read — the strict request/response discipline
    the no-torn-batches argument rests on.
    """
    try:
        recommender, snapshot = _open_recommender(config)
        state = _WorkerState(
            config=config,
            recommender=recommender,
            publisher=SnapshotPublisher(recommender, probes=config.probes),
            snapshot=snapshot,
        )
        _attach_shared(state)
    except Exception as exc:  # noqa: BLE001 - startup failure must reach parent
        conn.send(
            {
                "type": "error",
                "worker": config.index,
                "error": f"worker startup failed: {type(exc).__name__}: {exc}",
            }
        )
        conn.close()
        return
    conn.send(
        {
            "type": "ready",
            "worker": config.index,
            "pid": os.getpid(),
            "snapshot": state.snapshot,
            "generation": int(recommender.generation),
            "rss_bytes": rss_bytes(),
            "pss_bytes": pss_bytes(),
        }
    )
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            try:
                reply = _handle(state, message)
            except Exception as exc:  # noqa: BLE001 - keep the worker serving
                conn.send(
                    {
                        "type": "error",
                        "worker": config.index,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
                continue
            if reply is None:
                conn.send({"type": "bye", "worker": config.index})
                break
            conn.send(reply)
    finally:
        if state.store is not None:
            state.store.close()
        conn.close()
