"""Process-parallel serving front-end with zero-copy shared snapshots.

:class:`ServingService` is the tentpole of the serving stack: an asyncio
TCP front-end (newline-delimited JSON, :mod:`.protocol`) that coalesces
concurrent queries into micro-batches (:mod:`.batching`), routes them to
``N`` worker *processes* by user shard, and hot-swaps snapshots across
the whole fleet without dropping or tearing a single request.

Architecture
------------

* **One event loop** owns all front-end state: connections, per-worker
  :class:`~repro.serving_service.batching.MicroBatchQueue` instances and
  the in-flight bookkeeping. Single-writer contract — nothing below is
  touched off-loop.
* **One pipe + I/O thread per worker.** Each spawned worker serves a
  strict request/response loop; the parent-side
  :class:`_WorkerHandle` thread performs the blocking ``send``/``recv``
  and resolves an :class:`asyncio.Future` per exchange via
  ``call_soon_threadsafe``. The per-worker FIFO makes a ``publish``
  command a serialization point between micro-batches.
* **User-sharded routing**: query ``(user, interval)`` lands on worker
  ``user % num_workers`` — the same deterministic modulo sharding
  :class:`~repro.core.parallel.PartitionedTTCAM` uses for its E-step
  rows, so a user's repeat queries always hit the worker whose serving
  caches (exclusion masks, interval contexts) are already warm for
  them.
* **Zero-copy snapshots**: with an mmap sidecar
  (:mod:`repro.recommend.paramstore`) every worker maps the same files
  and the kernel keeps one shared page cache; without one, the parent
  packs the derived serving arrays into a
  :class:`~repro.serving_service.shared.SharedSnapshot` segment that
  workers attach. Either way per-worker *proportional* memory (PSS)
  grows sub-linearly with the worker count.
* **Cross-process hot swap**: :meth:`ServingService.publish` fans a
  ``publish`` command to every worker; each gates the candidate through
  its own :class:`~repro.streaming.publisher.SnapshotPublisher` and
  RCU-swaps on success. If *any* worker rejects (health gate, corrupt
  file), the workers that accepted are reverted so the fleet never
  serves mixed snapshots, and the attempt is reported as a rollback.
  Fleet-wide success is recorded in a
  :class:`~repro.streaming.publisher.GenerationFile` so late-starting
  workers catch up.
* **Graceful drain**: :meth:`ServingService.drain` refuses new
  admissions (clients get ``{"error": "draining"}``), flushes every
  micro-batch queue, awaits all in-flight exchanges, then shuts workers
  down — SIGTERM maps to exactly this in :func:`run_service`.
"""

from __future__ import annotations

import asyncio
import contextlib
import queue
import signal
import threading
from dataclasses import dataclass
from multiprocessing import get_context
from pathlib import Path
from typing import Any, Mapping

from ..core.serialize import load_params
from ..recommend.paramstore import MANIFEST_NAME, store_dir
from ..robustness.errors import ServiceDrainingError
from ..streaming.publisher import GenerationFile
from .batching import BatchRequest, MicroBatchQueue
from .protocol import MAX_LINE_BYTES, decode_line, encode_line, error_response
from .shared import SharedSnapshot
from .worker import WorkerConfig, worker_main

__all__ = ["ServiceConfig", "ServingService", "run_service"]

#: How long to wait for a worker's ready message before giving up.
_READY_TIMEOUT_S = 60.0


@dataclass(frozen=True)
class ServiceConfig:
    """Launch-time knobs of one :class:`ServingService`.

    Attributes
    ----------
    snapshot:
        Snapshot file every worker opens.
    host / port:
        TCP bind address; port 0 picks a free port (read it back from
        :attr:`ServingService.port` after :meth:`~ServingService.start`).
    workers:
        Worker process count (= user shards).
    mmap:
        Serve through the snapshot's mmap sidecar store.
    serve_dtype:
        Selection dtype workers score with.
    max_batch / batch_deadline_s:
        Micro-batch flush triggers, per worker queue.
    generation_file:
        Durable hot-swap record path; defaults to
        ``<snapshot>.generation.json``.
    probes:
        Health-probe queries each worker's publish gate runs.
    default_k:
        ``k`` used when a request omits it.
    """

    snapshot: str
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    mmap: bool = False
    serve_dtype: str = "float64"
    max_batch: int = 64
    batch_deadline_s: float = 0.002
    generation_file: str | None = None
    probes: tuple[tuple[int, int], ...] = ((0, 0),)
    default_k: int = 10

    def generation_path(self) -> str:
        """The resolved generation-file path."""
        if self.generation_file is not None:
            return self.generation_file
        return str(Path(self.snapshot).with_name(Path(self.snapshot).name + ".generation.json"))


class _WorkerHandle:
    """Parent-side handle of one worker process.

    Owns the pipe and a dedicated I/O thread running the blocking
    request/response exchange; :meth:`request` is called from the event
    loop and returns a future the thread resolves. The FIFO queue
    preserves submission order, which is what serializes publishes
    against micro-batches.
    """

    def __init__(self, index: int, config: WorkerConfig) -> None:
        ctx = get_context("spawn")
        self.index = index
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        try:
            self.process = ctx.Process(
                target=worker_main, args=(config, child_conn), name=f"tcam-worker-{index}"
            )
            self.process.start()
        except Exception:
            # A failed __init__ never returns the handle, so shutdown()
            # could never run — close both pipe ends here or they leak.
            parent_conn.close()
            child_conn.close()
            raise
        child_conn.close()
        self.ready: dict[str, Any] | None = None
        self.alive = True
        self._requests: "queue.SimpleQueue[tuple[dict[str, Any], asyncio.Future[dict[str, Any]]] | None]" = (
            queue.SimpleQueue()
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    def wait_ready(self) -> dict[str, Any]:
        """Block for the worker's start-up message (ready or error)."""
        if not self.conn.poll(_READY_TIMEOUT_S):
            raise RuntimeError(f"worker {self.index} did not come up in time")
        message = self.conn.recv()
        if message.get("type") != "ready":
            raise RuntimeError(
                f"worker {self.index} failed: {message.get('error', message)}"
            )
        self.ready = message
        return message

    def start_io(self, loop: asyncio.AbstractEventLoop) -> None:
        """Start the blocking I/O thread once the worker is ready."""
        self._loop = loop
        self._thread = threading.Thread(
            target=self._io_loop, name=f"tcam-worker-io-{self.index}", daemon=True
        )
        self._thread.start()

    def request(self, message: dict[str, Any]) -> "asyncio.Future[dict[str, Any]]":
        """Enqueue one exchange; resolves with the worker's reply."""
        assert self._loop is not None, "start_io() must run before request()"
        future: asyncio.Future[dict[str, Any]] = self._loop.create_future()
        self._requests.put((message, future))
        return future

    def _resolve(self, future: "asyncio.Future[dict[str, Any]]", reply: dict[str, Any]) -> None:
        if not future.done():
            future.set_result(reply)

    def _io_loop(self) -> None:
        assert self._loop is not None
        while True:
            item = self._requests.get()
            if item is None:
                break
            message, future = item
            if not self.alive:
                self._loop.call_soon_threadsafe(
                    self._resolve,
                    future,
                    {"type": "error", "error": f"worker {self.index} is down"},
                )
                continue
            try:
                self.conn.send(message)
                reply = self.conn.recv()
            except (EOFError, OSError, BrokenPipeError) as exc:
                self.alive = False
                reply = {"type": "error", "error": f"worker {self.index} pipe: {exc}"}
            self._loop.call_soon_threadsafe(self._resolve, future, reply)

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop the I/O thread and reap the worker process."""
        if self._thread is not None:
            self._requests.put(None)
            self._thread.join(timeout=timeout)
            self._thread = None
        with contextlib.suppress(OSError):
            self.conn.close()
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=timeout)
        self.alive = False


@dataclass
class _ServiceState:
    """Counters the status endpoint reports for the front-end itself."""

    connections: int = 0
    requests: int = 0
    queries: int = 0
    refused: int = 0
    publishes: int = 0
    rollbacks: int = 0


class ServingService:
    """The multi-process serving front-end (see module docstring).

    Single-writer contract: every attribute is owned by the event loop
    that ran :meth:`start`; worker I/O threads only touch their handle's
    queue and ``call_soon_threadsafe``.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.handles: list[_WorkerHandle] = []
        self.queues: list[MicroBatchQueue] = []
        self.stats = _ServiceState()
        self.draining = False
        self.port: int | None = None
        self._server: asyncio.base_events.Server | None = None
        self._shared: SharedSnapshot | None = None
        self._inflight: set["asyncio.Future[dict[str, Any]]"] = set()
        self._publish_lock = asyncio.Lock()
        self._generation_file = GenerationFile(config.generation_path())

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _needs_shared_segment(self) -> bool:
        """Shared derived arrays are only needed without an mmap sidecar."""
        if self.config.mmap:
            sidecar = store_dir(self.config.snapshot)
            if (sidecar / MANIFEST_NAME).is_file():
                return False
        return True

    async def start(self) -> None:
        """Spawn workers, wait for readiness, bind the TCP server."""
        config = self.config
        shared_manifest: Mapping[str, Any] | None = None
        if self._needs_shared_segment():
            params = await asyncio.to_thread(load_params, config.snapshot)
            self._shared = SharedSnapshot(params)
            shared_manifest = self._shared.manifest
            del params
        loop = asyncio.get_running_loop()
        for index in range(config.workers):
            handle = _WorkerHandle(
                index,
                WorkerConfig(
                    index=index,
                    num_workers=config.workers,
                    snapshot=config.snapshot,
                    mmap=config.mmap,
                    serve_dtype=config.serve_dtype,
                    generation_file=config.generation_path(),
                    shared_manifest=shared_manifest,
                    probes=config.probes,
                ),
            )
            self.handles.append(handle)
        try:
            await asyncio.gather(
                *(asyncio.to_thread(handle.wait_ready) for handle in self.handles)
            )
            for handle in self.handles:
                handle.start_io(loop)
                worker_index = handle.index
                self.queues.append(
                    MicroBatchQueue(
                        lambda batch, w=worker_index: self._flush(w, batch),
                        max_batch=config.max_batch,
                        deadline_s=config.batch_deadline_s,
                    )
                )
            self._server = await asyncio.start_server(
                self._serve_connection, host=config.host, port=config.port
            )
        except Exception:
            # Cover the TCP bind too: a failed start_server used to leave
            # the already-spawned worker fleet running with no owner.
            await self._stop_workers()
            raise
        sockets = self._server.sockets or []
        self.port = sockets[0].getsockname()[1] if sockets else None

    async def _stop_workers(self) -> None:
        for handle in self.handles:
            await asyncio.to_thread(handle.shutdown)
        if self._shared is not None:
            self._shared.close()
            self._shared = None

    async def drain(self) -> None:
        """Graceful shutdown: refuse, flush, await in-flight, stop workers.

        Admission closes first (new requests get the draining refusal),
        pending micro-batches flush immediately rather than waiting out
        their deadlines, every in-flight worker exchange completes, and
        only then are workers asked to shut down — no admitted query is
        ever dropped.
        """
        if self.draining:
            return
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for micro_queue in self.queues:
            micro_queue.close()
        if self._inflight:
            await asyncio.gather(*tuple(self._inflight), return_exceptions=True)
        for handle in self.handles:
            if handle.alive:
                with contextlib.suppress(Exception):
                    await handle.request({"type": "shutdown"})
        await self._stop_workers()

    # ------------------------------------------------------------------
    # routing + micro-batching
    # ------------------------------------------------------------------

    def shard(self, user: int) -> int:
        """The worker index serving this user's shard."""
        return int(user) % len(self.handles)

    def _flush(self, worker_index: int, batch: list[BatchRequest]) -> None:
        """Ship one flushed micro-batch to its worker (event-loop side)."""
        message = {
            "type": "batch",
            "requests": [
                {"queries": request.queries, "k": request.k} for request in batch
            ],
        }
        exchange = self.handles[worker_index].request(message)
        self._inflight.add(exchange)
        exchange.add_done_callback(
            lambda done, b=batch: self._settle_batch(b, done)
        )

    def _settle_batch(
        self, batch: list[BatchRequest], done: "asyncio.Future[dict[str, Any]]"
    ) -> None:
        self._inflight.discard(done)
        reply = done.result() if not done.cancelled() else {"type": "error", "error": "cancelled"}
        if reply.get("type") != "result":
            error = str(reply.get("error", "worker exchange failed"))
            for request in batch:
                if not request.token.done():
                    request.token.set_result({"error": error})
            return
        responses = reply.get("responses", [])
        for request, response in zip(batch, responses):
            if not request.token.done():
                request.token.set_result(response)

    async def _handle_query(self, message: Mapping[str, Any]) -> dict[str, Any]:
        """Route one client query request through the worker fleet."""
        request_id = message.get("id")
        raw = message.get("queries")
        if not isinstance(raw, list) or not raw:
            return error_response(request_id, "queries must be a non-empty list")
        try:
            queries = [(int(pair[0]), int(pair[1])) for pair in raw]
        except (TypeError, ValueError, IndexError):
            return error_response(request_id, "queries must be [user, interval] pairs")
        k = int(message.get("k", self.config.default_k))
        if k <= 0:
            return error_response(request_id, "k must be positive")
        self.stats.requests += 1
        self.stats.queries += len(queries)
        shards: dict[int, list[int]] = {}
        for position, (user, _) in enumerate(queries):
            shards.setdefault(self.shard(user), []).append(position)
        slices = [
            (worker_index, positions, self.queues[worker_index].submit(
                [queries[p] for p in positions], k
            ))
            for worker_index, positions in shards.items()
        ]
        responses = await asyncio.gather(*(entry[2] for entry in slices))
        rows: list[dict[str, Any] | None] = [None] * len(queries)
        generation: list[int | None] = [None] * len(queries)
        worker: list[int | None] = [None] * len(queries)
        degraded: list[bool | None] = [None] * len(queries)
        for (worker_index, positions, _), response in zip(slices, responses):
            if "error" in response:
                return error_response(request_id, str(response["error"]))
            for offset, position in enumerate(positions):
                rows[position] = response["results"][offset]
                generation[position] = response["generation"][offset]
                degraded[position] = response["degraded"][offset]
                worker[position] = worker_index
        return {
            "id": request_id,
            "results": rows,
            "generation": generation,
            "worker": worker,
            "degraded": degraded,
        }

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------

    async def publish(
        self, path: str, mmap: bool | None = None, drift: bool = False
    ) -> dict[str, Any]:
        """Hot-swap a snapshot across the fleet, or roll it back whole.

        Every worker gates the candidate independently; a fleet where
        some workers accepted and some rejected would serve mixed
        snapshots, so any rejection reverts the workers that accepted.
        Fleet-wide success is durably recorded in the generation file.
        """
        mmap_flag = self.config.mmap if mmap is None else bool(mmap)
        async with self._publish_lock:
            command = {
                "type": "publish",
                "path": str(path),
                "mmap": mmap_flag,
                "drift": bool(drift),
            }
            replies = await asyncio.gather(
                *(handle.request(dict(command)) for handle in self.handles)
            )
            accepted = [
                handle.index
                for handle, reply in zip(self.handles, replies)
                if reply.get("type") == "published" and reply.get("published")
            ]
            rejected = {
                handle.index: str(reply.get("reason") or reply.get("error", "unknown"))
                for handle, reply in zip(self.handles, replies)
                if not (reply.get("type") == "published" and reply.get("published"))
            }
            if not rejected:
                self.stats.publishes += 1
                generations = [int(reply["generation"]) for reply in replies]
                await asyncio.to_thread(
                    self._generation_file.write, max(generations), str(path), bool(drift)
                )
                return {
                    "published": True,
                    "generation": generations,
                    "rejected": {},
                    "reverted": [],
                }
            self.stats.rollbacks += 1
            reverted: list[int] = []
            if accepted:
                revert_replies = await asyncio.gather(
                    *(
                        self.handles[index].request({"type": "revert"})
                        for index in accepted
                    )
                )
                reverted = [
                    index
                    for index, reply in zip(accepted, revert_replies)
                    if reply.get("type") == "published" and reply.get("published")
                ]
            return {
                "published": False,
                "generation": [int(reply.get("generation", -1)) for reply in replies],
                "rejected": rejected,
                "reverted": reverted,
            }

    async def status(self) -> dict[str, Any]:
        """Aggregate front-end counters plus every worker's status."""
        replies = await asyncio.gather(
            *(handle.request({"type": "status"}) for handle in self.handles if handle.alive)
        )
        return {
            "draining": self.draining,
            "workers": list(replies),
            "service": {
                "connections": self.stats.connections,
                "requests": self.stats.requests,
                "queries": self.stats.queries,
                "refused": self.stats.refused,
                "publishes": self.stats.publishes,
                "rollbacks": self.stats.rollbacks,
                "max_batch": self.config.max_batch,
                "batch_deadline_s": self.config.batch_deadline_s,
            },
        }

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _dispatch(self, message: Mapping[str, Any]) -> dict[str, Any]:
        request_id = message.get("id")
        if self.draining:
            self.stats.refused += 1
            return error_response(request_id, "draining")
        op = message.get("op")
        if op is None:
            return await self._handle_query(message)
        if op == "status":
            reply = await self.status()
            reply["id"] = request_id
            return reply
        if op == "publish":
            path = message.get("path")
            if not isinstance(path, str) or not path:
                return error_response(request_id, "publish needs a snapshot path")
            reply = await self.publish(
                path,
                mmap=message.get("mmap"),
                drift=bool(message.get("drift", False)),
            )
            reply["id"] = request_id
            return reply
        return error_response(request_id, f"unknown op {op!r}")

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if len(line) > MAX_LINE_BYTES:
                    writer.write(encode_line(error_response(None, "line too long")))
                    await writer.drain()
                    break
                if not line.strip():
                    continue
                try:
                    message = decode_line(line)
                except ValueError as exc:
                    writer.write(encode_line(error_response(None, str(exc))))
                    await writer.drain()
                    continue
                try:
                    reply = await self._dispatch(message)
                except ServiceDrainingError:
                    self.stats.refused += 1
                    reply = error_response(message.get("id"), "draining")
                except Exception as exc:  # noqa: BLE001 - keep the connection up
                    reply = error_response(
                        message.get("id"), f"{type(exc).__name__}: {exc}"
                    )
                writer.write(encode_line(reply))
                await writer.drain()
                if reply.get("error") == "draining":
                    break
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()


async def _run_until_signal(service: ServingService) -> None:
    """Serve until SIGTERM/SIGINT, then drain gracefully."""
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signum, stop.set)
    await service.start()
    print(
        f"tcam serve: {service.config.workers} workers on "
        f"{service.config.host}:{service.port} (snapshot {service.config.snapshot})",
        flush=True,
    )
    await stop.wait()
    print("tcam serve: draining", flush=True)
    await service.drain()
    print("tcam serve: drained cleanly", flush=True)


def run_service(config: ServiceConfig) -> int:
    """Blocking entry point used by ``tcam serve``; returns exit code 0."""
    service = ServingService(config)
    asyncio.run(_run_until_signal(service))
    return 0
