"""High-throughput batch serving engine (the online half of Section 4).

The paper's online workload is temporal top-k retrieval for queries
``q = (u, t)`` with score ``S(u,t,v) = Σ_z ϑ_q[z]·ϕ[z,v]``. The
Threshold-Algorithm engines in :mod:`repro.recommend.threshold` answer
one query at a time through Python-level sorted-access loops — the right
shape for the paper's efficiency study, the wrong shape for production
traffic. This module amortises per-query cost across batches:

* **Grouping.** All queries sharing an interval also share the
  topic–item matrix (and, for TCAM, the temporal-context score vector
  ``θ′_t·Φ``), so a batch is grouped by interval and each group is
  scored together.
* **Blocked GEMM scoring.** Each group's query weight vectors are
  stacked into ``Θ_batch`` and scored as one ``Θ_batch @ Φ`` matrix
  product per row block, into preallocated, reused workspaces (the same
  buffer discipline as :mod:`repro.core.engine`).
* **Exact rescoring.** BLAS GEMM, GEMV and per-item dot products differ
  in the last ULP, so GEMM scores alone cannot reproduce the per-query
  engines bit-for-bit. The GEMM pass therefore only *selects* a
  candidate superset (top ``k + margin`` per row, ties included); the
  candidates are then rescored with the identical primitive the TA
  engines use (``item_topic[v] @ ϑ_q`` — one contiguous-row dot per
  item) and ranked with the same ``(score desc, item asc)`` tie-break.
  In float64 mode the returned items, scores and tie order are exactly
  those of :func:`~repro.recommend.threshold.ta_topk`.
* **Bounded caching.** A :class:`ServingCache` of small LRU regions
  replaces the recommender's previously unbounded index dict: sorted
  TA indexes, contiguous item–topic transposes, per-interval context
  score vectors and per-user exclusion masks are all capped, with
  hit/miss/eviction counters surfaced on
  :class:`~repro.recommend.recommender.ServingStatus`.
* **float32 mode.** Opt-in ``dtype="float32"`` converts the selection
  matrices once (at index build, cached) and runs the GEMM pass in
  float32 with a wider candidate margin; rescoring stays float64, so
  results still match the float64 path whenever the true top-k survives
  float32 candidate selection (asserted on the bench corpora — see
  ``docs/performance.md``).
* **Quantized modes.** ``dtype="float16"`` / ``"int8"`` run selection
  through :mod:`repro.recommend.quantize`: a compressed copy of the
  selection matrix is staged block-by-block through a small float32
  buffer, and candidates are taken by a *proven* per-row error margin
  instead of a fixed count — so the exact float64 rescore returns
  results **bitwise identical** to the float64 path at a fraction of
  the selection bytes. With an mmap parameter store attached
  (``model.param_store``), the quantized forms and context statistics
  are paged from disk rather than rebuilt.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Generic,
    Hashable,
    KeysView,
    Mapping,
    Sequence,
    TypeVar,
)

import numpy as np

from ..tooling.sanitize import Sanitizer, check_topk_finite, sanitize_enabled
from ..typing import AnyArray, BoolArray, FloatArray, IntArray, hot_path
from .quantize import (
    QUANTIZED_DTYPES,
    STAGE_COLUMNS,
    ContextVector,
    QuantizedMatrix,
    quantize_matrix,
    selection_margins,
    staged_select_gemm,
)
from .ranking import Recommendation, TopKResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .threshold import SortedTopicLists

_V = TypeVar("_V")

#: Candidate-selection margin beyond ``k`` per serving dtype. float64
#: selection scores differ from the exact rescore by a few ULPs, so a
#: handful of extra candidates is ample; float32 selection carries
#: ~1e-7 relative noise and gets a wider net. The quantized dtypes
#: (float16 / int8) are absent on purpose: they use the *proven* per-row
#: error margin of :mod:`repro.recommend.quantize`, not a fixed count.
SELECTION_MARGIN = {"float64": 16, "float32": 64}

#: Default number of queries scored per GEMM block.
DEFAULT_ROW_BLOCK = 64

_SERVE_DTYPES = ("float64", "float32", "float16", "int8")


@dataclass(frozen=True)
class CacheStats:
    """Counters of one serving-cache region (or an aggregate of regions).

    Attributes
    ----------
    hits, misses:
        Lookup outcomes since the cache was created.
    evictions:
        Entries displaced by the LRU capacity or byte bounds.
    size, capacity:
        Current and maximum entry counts.
    bytes, max_bytes:
        Current accounted payload bytes (``ndarray.nbytes`` of the
        cached values) and the byte budget (0 = entry-count bound only).
    evicted_bytes:
        Total payload bytes displaced by evictions so far.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0
    bytes: int = 0
    max_bytes: int = 0
    evicted_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when untouched)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        """Combine two regions' counters (capacities and budgets add)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            size=self.size + other.size,
            capacity=self.capacity + other.capacity,
            bytes=self.bytes + other.bytes,
            max_bytes=self.max_bytes + other.max_bytes,
            evicted_bytes=self.evicted_bytes + other.evicted_bytes,
        )


def value_nbytes(value: object) -> int:
    """Accounted payload bytes of one cached value.

    Arrays (and anything exposing ``nbytes``, e.g.
    :class:`~repro.recommend.quantize.QuantizedMatrix` or
    :class:`~repro.recommend.threshold.SortedTopicLists`) report their
    buffer size; other values are accounted as zero bytes — the byte
    budget is a guard against large array payloads, not a general
    memory profiler.
    """
    nbytes = getattr(value, "nbytes", None)
    if isinstance(nbytes, (int, np.integer)):
        return int(nbytes)
    return 0


class LRUCache(Generic[_V]):
    """Bounded mapping with least-recently-used eviction and counters.

    A deliberately small, dependency-free LRU built on
    :class:`~collections.OrderedDict`. :meth:`get` / :meth:`put` maintain
    hit/miss/eviction counters; the mapping dunders (``cache[key]``)
    bypass the counters so diagnostic introspection does not skew the
    serving statistics.

    The mutating entry points (:meth:`get`, :meth:`put`,
    :meth:`discard`, :meth:`clear`) serialise on an internal lock, so
    recommenders sharing one :class:`ServingCache` across threads cannot
    corrupt the recency order or lose counter increments. The uncounted
    read-only accessors (:meth:`peek`, ``cache[key]``, ``len``) stay
    lock-free: they never restructure the mapping.

    ``max_bytes`` adds an optional byte budget on top of the entry
    bound: payloads are accounted with :func:`value_nbytes` and the LRU
    tail is evicted until the budget holds again. A single value larger
    than the whole budget is evicted immediately (it is never worth the
    entire cache). ``max_bytes=None`` (the default) keeps the original
    entry-count-only behaviour.
    """

    def __init__(self, capacity: int, max_bytes: int | None = None) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive or None, got {max_bytes}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self._bytes = 0
        self._lock = threading.RLock()
        self._data: OrderedDict[Hashable, _V] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __getitem__(self, key: Hashable) -> _V:
        """Counter-free lookup (raises ``KeyError`` when absent)."""
        return self._data[key]

    def __setitem__(self, key: Hashable, value: _V) -> None:
        """Counter-free insert honouring the capacity bound."""
        self.put(key, value)

    def get(self, key: Hashable, default: _V | None = None) -> _V | None:
        """Counted lookup: a hit promotes the entry to most-recent."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def peek(self, key: Hashable, default: _V | None = None) -> _V | None:
        """Uncounted lookup that leaves the recency order untouched."""
        return self._data.get(key, default)

    def put(self, key: Hashable, value: _V) -> None:
        """Insert (or refresh) an entry, evicting LRU entries while full.

        Both bounds are enforced: the entry count, and — when
        ``max_bytes`` is set — the accounted payload bytes.
        """
        with self._lock:
            previous = self._data.pop(key, None)
            if previous is not None:
                self._bytes -= value_nbytes(previous)
            self._data[key] = value
            self._bytes += value_nbytes(value)
            while len(self._data) > self.capacity or (
                self.max_bytes is not None
                and self._bytes > self.max_bytes
                and len(self._data) > 0
            ):
                _, evicted = self._data.popitem(last=False)
                self.evictions += 1
                freed = value_nbytes(evicted)
                self.evicted_bytes += freed
                self._bytes -= freed

    def discard(self, key: Hashable) -> None:
        """Drop one entry if present (no counters touched)."""
        with self._lock:
            dropped = self._data.pop(key, None)
            if dropped is not None:
                self._bytes -= value_nbytes(dropped)

    def keys(self) -> KeysView[Hashable]:
        """Current keys, least- to most-recently used."""
        return self._data.keys()

    def clear(self) -> None:
        """Drop every entry (counters are retained)."""
        with self._lock:
            self._data.clear()
            self._bytes = 0

    @property
    def bytes(self) -> int:
        """Accounted payload bytes currently held."""
        return self._bytes

    def stats(self) -> CacheStats:
        """Snapshot of this region's counters."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._data),
            capacity=self.capacity,
            bytes=self._bytes,
            max_bytes=self.max_bytes if self.max_bytes is not None else 0,
            evicted_bytes=self.evicted_bytes,
        )


class ServingCache:
    """Bounded LRU caches backing a :class:`TemporalRecommender`.

    Four regions, each independently capped:

    ``indexes``
        :class:`~repro.recommend.threshold.SortedTopicLists` per
        topic–item matrix key — TTCAM needs one entry ever, ITCAM one
        per *distinct recently queried* interval (previously this grew
        without bound).
    ``matrices``
        Contiguous ``(V, K)`` item–topic transposes used by the exact
        rescoring pass, plus dtype-converted selection matrices for the
        float32 serving mode.
    ``contexts``
        Per-interval context score vectors ``θ′_t·Φ`` shared by every
        user queried in that interval, per serving dtype — the piece of
        every score that batching makes reusable.
    ``masks``
        Per-user boolean exclusion masks built from registered
        per-user exclusion lists.

    Parameters
    ----------
    index_capacity, matrix_capacity, context_capacity, mask_capacity:
        Maximum entries per region. See ``docs/performance.md`` for
        sizing guidance (roughly: indexes/matrices ≈ working set of hot
        intervals; contexts ≈ intervals per serving window; masks ≈
        concurrently active users).
    index_max_bytes, matrix_max_bytes, context_max_bytes, mask_max_bytes:
        Optional per-region byte budgets (``None`` = entry count only,
        the default — existing behaviour is unchanged). Payloads are
        accounted via ``ndarray.nbytes``; evicted bytes are surfaced in
        :class:`CacheStats`. Budgets matter at million-item scale, where
        one ``(V, K)`` rescore transpose is hundreds of megabytes.
    """

    def __init__(
        self,
        index_capacity: int = 8,
        matrix_capacity: int = 8,
        context_capacity: int = 256,
        mask_capacity: int = 4096,
        index_max_bytes: int | None = None,
        matrix_max_bytes: int | None = None,
        context_max_bytes: int | None = None,
        mask_max_bytes: int | None = None,
    ) -> None:
        self.indexes: LRUCache[SortedTopicLists] = LRUCache(
            index_capacity, max_bytes=index_max_bytes
        )
        self.matrices: LRUCache[AnyArray | QuantizedMatrix] = LRUCache(
            matrix_capacity, max_bytes=matrix_max_bytes
        )
        self.contexts: LRUCache[AnyArray | ContextVector] = LRUCache(
            context_capacity, max_bytes=context_max_bytes
        )
        self.masks: LRUCache[BoolArray] = LRUCache(
            mask_capacity, max_bytes=mask_max_bytes
        )

    def regions(self) -> dict[str, LRUCache[Any]]:
        """The four named regions."""
        return {
            "indexes": self.indexes,
            "matrices": self.matrices,
            "contexts": self.contexts,
            "masks": self.masks,
        }

    def region_stats(self) -> dict[str, CacheStats]:
        """Per-region counter snapshots."""
        return {name: region.stats() for name, region in self.regions().items()}

    def stats(self) -> CacheStats:
        """Aggregate counters across all regions."""
        total = CacheStats()
        for region in self.regions().values():
            total = total + region.stats()
        return total

    def clear(self) -> None:
        """Drop every cached entry in every region."""
        for region in self.regions().values():
            region.clear()

    def invalidate_user(self, user: int) -> None:
        """Forget a user's cached exclusion mask (call when it changes)."""
        self.masks.discard(user)


class _Workspace:
    """Grow-once scratch buffers (the engine's workspace discipline).

    Buffers are keyed by ``(name, dtype)`` and grown to the elementwise
    maximum shape ever requested, so the steady state of a serving loop
    performs no per-batch allocations.

    Single-writer contract: a workspace is owned by exactly one
    :class:`BatchScorer` and is not thread-safe — per-thread recommenders
    each own their scorer (and therefore their workspace), sharing only
    the locked :class:`ServingCache`.
    """

    def __init__(self) -> None:
        self._buffers: dict[tuple[str, str], AnyArray] = {}

    def get(self, name: str, shape: tuple[int, ...], dtype: str) -> AnyArray:
        """A writable view of the named buffer with the requested shape."""
        key = (name, dtype)
        buffer = self._buffers.get(key)
        if buffer is None or any(b < s for b, s in zip(buffer.shape, shape)):
            grown = shape if buffer is None else tuple(
                max(b, s) for b, s in zip(buffer.shape, shape)
            )
            buffer = np.empty(grown, dtype=np.dtype(dtype))
            self._buffers[key] = buffer
        return buffer[tuple(slice(0, s) for s in shape)]


def check_serve_dtype(dtype: str) -> str:
    """Validate a serving dtype string and return it."""
    if dtype not in _SERVE_DTYPES:
        raise ValueError(f"serve dtype must be one of {_SERVE_DTYPES}, got {dtype!r}")
    return dtype


@dataclass(frozen=True)
class ServingConfig:
    """Declarative serving knobs (the engine-config idiom, serving-side).

    Bundles the levers of :class:`BatchScorer` / :class:`ServingCache`
    the way :class:`~repro.core.engine.EMEngineConfig` bundles the EM
    engine's, so deployments can pass one validated object instead of
    loose keyword arguments::

        config = ServingConfig(select_dtype="int8", cache_max_bytes=256 << 20)
        recommender = TemporalRecommender(model, config=config)

    Attributes
    ----------
    select_dtype:
        Candidate-selection dtype: ``"float64"`` (exact), ``"float32"``
        (fixed wider margin), or the proven-margin quantized modes
        ``"float16"`` / ``"int8"``.
    row_block:
        Queries scored per GEMM block.
    cache_max_bytes:
        Optional total byte budget for the serving cache, split across
        the two array-heavy regions (matrices and indexes get 3/8 each,
        contexts 2/8); ``None`` keeps entry-count bounds only.
    """

    select_dtype: str = "float64"
    row_block: int = DEFAULT_ROW_BLOCK
    cache_max_bytes: int | None = None

    def __post_init__(self) -> None:
        check_serve_dtype(self.select_dtype)
        if self.row_block <= 0:
            raise ValueError(f"row_block must be positive, got {self.row_block}")
        if self.cache_max_bytes is not None and self.cache_max_bytes <= 0:
            raise ValueError(
                f"cache_max_bytes must be positive or None, got {self.cache_max_bytes}"
            )

    def build_cache(self) -> ServingCache:
        """A :class:`ServingCache` honouring the configured byte budget."""
        if self.cache_max_bytes is None:
            return ServingCache()
        return ServingCache(
            index_max_bytes=max(1, self.cache_max_bytes * 3 // 8),
            matrix_max_bytes=max(1, self.cache_max_bytes * 3 // 8),
            context_max_bytes=max(1, self.cache_max_bytes * 2 // 8),
        )


def exact_rescore(
    item_topic: FloatArray, weights: FloatArray, candidates: IntArray, k: int
) -> TopKResult:
    """Exact top-k of a candidate set, bit-identical to the TA engines.

    Each candidate is scored with the same primitive
    :func:`~repro.recommend.threshold.ta_topk` uses — one dot product of
    the item's contiguous ``item_topic`` row with the query vector — and
    the result is ranked by ``(score desc, item asc)``, the tie order
    every engine in this package shares.
    """
    count = candidates.size
    scores = np.empty(count)
    for i in range(count):
        scores[i] = item_topic[candidates[i]] @ weights
    order = np.lexsort((candidates, -scores))[:k]
    recommendations = [
        Recommendation(item=int(candidates[i]), score=float(scores[i])) for i in order
    ]
    return TopKResult(
        recommendations=recommendations, items_scored=count, sorted_accesses=0
    )


def _row_boundaries(scores: AnyArray, count: int) -> AnyArray:
    """Each row's ``count``-th largest selection score.

    One :func:`np.partition` per row instead of a single 2-D
    ``argpartition``: the peak temporary is ``O(V)`` rather than
    ``O(rows · V)`` int64 indexes, which is what keeps a
    million-item row block from allocating hundreds of megabytes
    per selection pass. The boundary values are identical.
    """
    rows, num_items = scores.shape
    boundary = np.empty(rows, dtype=scores.dtype)
    pivot = num_items - count
    for r in range(rows):
        boundary[r] = np.partition(scores[r], pivot)[pivot]
    return boundary


def select_candidates(scores: AnyArray, count: int) -> tuple[AnyArray, BoolArray]:
    """Per-row candidate supersets from a block of selection scores.

    Returns ``(boundary, mask)`` where ``mask[r, v]`` marks item ``v`` a
    candidate of row ``r``: every item whose selection score reaches the
    row's ``count``-th largest value. Ties at the boundary are *all*
    included, so the true top-k can never be lost to an arbitrary
    partition tie split.
    """
    rows, num_items = scores.shape
    if count >= num_items:
        return (
            np.full(rows, -np.inf),
            np.ones((rows, num_items), dtype=bool),
        )
    boundary = _row_boundaries(scores, count)
    return boundary, scores >= boundary[:, None]


def select_candidates_margin(
    scores: AnyArray, k: int, margins: FloatArray
) -> BoolArray:
    """Candidate mask for approximate scores with a proven error bound.

    ``margins[r]`` must bound ``2·ε_r`` where
    ``|scores[r, v] − exact_r(v)| ≤ ε_r`` for all ``v`` (see
    :func:`~repro.recommend.quantize.selection_margins`). Every item
    whose approximate score reaches the row's k-th largest value minus
    its margin is a candidate; by the ``2ε`` argument in
    :mod:`repro.recommend.quantize` this superset provably contains
    every item of the exact top-k, tie order included. The cutoff is
    rounded *down* (one ulp in float64, then one more in the score
    dtype) so the floating-point evaluation of ``boundary − margin``
    can never exclude an item the real-arithmetic cutoff would keep.
    """
    rows, num_items = scores.shape
    mask: BoolArray
    if k >= num_items:
        mask = np.ones((rows, num_items), dtype=bool)
        return mask
    boundary = _row_boundaries(scores, k)
    cutoff = np.nextafter(boundary.astype(np.float64) - margins, -np.inf)
    cutoff_cast = np.nextafter(
        cutoff.astype(scores.dtype), np.array(-np.inf, dtype=scores.dtype)
    )
    mask = scores >= cutoff_cast[:, None]
    return mask


class BatchScorer:
    """Scores interval-grouped query batches against one primary model.

    One scorer is owned by each :class:`TemporalRecommender`; it holds
    the reused GEMM workspaces and consults the shared
    :class:`ServingCache` for selection matrices, rescore transposes and
    context vectors. Not safe for concurrent use from multiple threads
    (clone the recommender per thread instead).
    """

    def __init__(self, model: Any, cache: ServingCache) -> None:
        self.model = model
        self.cache = cache
        self.workspace = _Workspace()
        self._sanitizer = Sanitizer("serving") if sanitize_enabled() else None

    # -- model structure -------------------------------------------------

    def _params_kind(self) -> tuple[str, Any]:
        """Classify the primary model for the split fast path.

        Returns ``("ttcam" | "itcam", params)`` when the model exposes
        fitted TCAM parameter containers (interest and context parts can
        then be scored separately, with the context vector cached per
        interval), or ``("generic", None)`` for any other
        ``query_space`` provider.
        """
        from ..core.params import ITCAMParameters, TTCAMParameters

        params = getattr(self.model, "params_", None)
        if isinstance(params, TTCAMParameters):
            return "ttcam", params
        if isinstance(params, ITCAMParameters):
            return "itcam", params
        return "generic", None

    def _matrix_key(self, interval: int) -> Hashable:
        """The model's matrix cache key for an interval (``None`` = uncachable)."""
        key_fn = getattr(self.model, "matrix_cache_key", None)
        if key_fn is None:
            return None
        return key_fn(interval)

    # -- cached building blocks ------------------------------------------

    def _stacked_matrix(self, interval: int, users: Sequence[int]) -> FloatArray:
        """The full ``(K, V)`` topic–item matrix for one interval."""
        kind, params = self._params_kind()
        if kind == "ttcam":
            matrix: FloatArray = params.topic_item_matrix()
            return matrix
        if kind == "itcam":
            stacked: FloatArray = np.vstack(
                [params.phi, params.theta_time[interval][None, :]]
            )
            return stacked
        generic: FloatArray = self.model.query_space(int(users[0]), interval)[1]
        return generic

    def _item_topic(self, interval: int, users: Sequence[int]) -> FloatArray:
        """Contiguous ``(V, K)`` transpose used by the exact rescore pass.

        Reuses the transpose already held by a cached
        :class:`~repro.recommend.threshold.SortedTopicLists` when the TA
        engines built one for the same matrix; otherwise builds and
        caches it in the ``matrices`` region.
        """
        key = self._matrix_key(interval)
        if key is None:
            return np.ascontiguousarray(self._stacked_matrix(interval, users).T)
        store = self._store()
        if store is not None:
            stored = store.item_topic(key)
            if stored is not None:
                return stored  # type: ignore[no-any-return]
        lists = self.cache.indexes.peek(key)
        if lists is not None:
            return lists.item_topic
        cache_key = ("item_topic", key)
        item_topic = self.cache.matrices.get(cache_key)
        if item_topic is None:
            item_topic = np.ascontiguousarray(self._stacked_matrix(interval, users).T)
            self.cache.matrices.put(cache_key, item_topic)
        return item_topic

    def _selection_matrix(
        self, matrix: AnyArray, key: Hashable, tag: str, dtype: str
    ) -> AnyArray:
        """``matrix`` in the serving dtype (float32 conversions cached)."""
        if dtype == "float64" or matrix.dtype == np.dtype(dtype):
            return matrix
        if key is None:
            return matrix.astype(np.float32)
        cache_key = (tag, key, dtype)
        converted = self.cache.matrices.get(cache_key)
        if converted is None:
            converted = matrix.astype(np.float32)
            self.cache.matrices.put(cache_key, converted)
        return converted

    def _interest_matrix(self, theta: FloatArray, key: Hashable, dtype: str) -> AnyArray:
        """``theta`` in the serving dtype (float32 conversions cached).

        Cold path of :meth:`serve_group`: the conversion allocates, so it
        lives outside the hot kernel and its result is cached per
        ``(matrix key, dtype)`` in the ``matrices`` region.
        """
        if dtype == "float64":
            return theta
        theta_key = ("theta", key, dtype)
        converted = self.cache.matrices.get(theta_key)
        if converted is None:
            converted = theta.astype(np.float32)
            self.cache.matrices.put(theta_key, converted)
        return converted

    def _store(self) -> Any:
        """The model's optional mmap parameter store (duck-typed).

        A model loaded from an mmap snapshot layout (see
        :mod:`repro.recommend.paramstore`) exposes ``param_store``; the
        scorer then prefers the store's persisted derived arrays —
        rescore transposes, quantized selection forms, context vectors —
        over rebuilding them, so a million-item serving process pages
        instead of materialising.
        """
        return getattr(self.model, "param_store", None)

    def _quantized_selection(
        self, matrix: FloatArray, key: Hashable, tag: str, dtype: str
    ) -> QuantizedMatrix:
        """Quantized selection matrix, store-backed or built once and cached.

        Cold path of :meth:`serve_group`: quantization reads the full
        float64 matrix, so it happens at most once per ``(key, dtype)``
        and the compact result lives in the ``matrices`` cache region.
        Store-backed forms are returned directly — the store memoises
        its mmap-backed arrays and they should not count against the
        cache byte budget (they are pageable, not resident).
        """
        store = self._store()
        if store is not None and tag == "qsel":
            from_store = store.quantized_selection(dtype)
            if from_store is not None:
                return from_store  # type: ignore[no-any-return]
        if key is None:
            return quantize_matrix(np.asarray(matrix, dtype=np.float64), dtype)
        cache_key = (tag, key, dtype)
        cached = self.cache.matrices.get(cache_key)
        if isinstance(cached, QuantizedMatrix):
            return cached
        quantized = quantize_matrix(np.asarray(matrix, dtype=np.float64), dtype)
        self.cache.matrices.put(cache_key, quantized)
        return quantized

    def _quantized_context(self, interval: int, kind: str, params: Any) -> ContextVector:
        """Float32 context vector with measured error stats, per interval.

        Wraps :meth:`_context_vector`'s exact float64 vector in a
        :class:`~repro.recommend.quantize.ContextVector` so the margin
        derivation can bound the context contribution; cached in the
        ``contexts`` region (or served straight from the parameter
        store's persisted per-interval stats).
        """
        store = self._store()
        if store is not None:
            from_store = store.context_vector(interval)
            if from_store is not None:
                return from_store  # type: ignore[no-any-return]
        cache_key = ("qctx", interval)
        cached = self.cache.contexts.get(cache_key)
        if isinstance(cached, ContextVector):
            return cached
        exact = np.asarray(
            self._context_vector(interval, kind, params, "float64"), dtype=np.float64
        )
        vector = ContextVector.from_exact(exact)
        self.cache.contexts.put(cache_key, vector)
        return vector

    def _block_margins(
        self,
        kind: str,
        params: Any,
        block_users: Sequence[int],
        weights_f64: Sequence[FloatArray],
        qsel: QuantizedMatrix,
        qcontext: ContextVector | None,
    ) -> FloatArray:
        """Per-row ``2·ε_r`` candidate margins of one quantized block.

        Cold helper of :meth:`serve_group` — allocates only small
        ``(rows,)`` / ``(rows, K)`` temporaries. The split path derives
        the weight magnitudes from the parameter containers directly
        (``λ_u·θ_u ≥ 0`` elementwise); the generic path takes absolute
        values of the models' stacked query vectors.
        """
        if kind == "generic":
            abs_weights = np.abs(np.asarray(weights_f64, dtype=np.float64))
            eps = selection_margins(abs_weights, qsel)
        else:
            users_idx = np.asarray(block_users, dtype=np.int64)
            lam = np.asarray(params.lambda_u[users_idx], dtype=np.float64)
            abs_weights = np.abs(
                lam[:, None] * np.asarray(params.theta[users_idx], dtype=np.float64)
            )
            if qcontext is None:  # pragma: no cover - split path always has one
                raise RuntimeError("quantized split path requires a context vector")
            eps = selection_margins(
                abs_weights,
                qsel,
                context_weight=np.abs(1.0 - lam),
                context_delta=qcontext.delta,
                context_abs_max=qcontext.abs_max,
            )
        margins: FloatArray = 2.0 * eps
        return margins

    def _context_vector(
        self, interval: int, kind: str, params: Any, dtype: str
    ) -> AnyArray:
        """Cached per-interval context score vector ``θ′_t·Φ``.

        This is the part of every query's selection score shared by all
        users of the interval: for TTCAM the ``(V,)`` product
        ``θ′_t @ φ′``, for ITCAM the raw item distribution ``θ′_t``. A
        repeat-interval query therefore only pays for the small
        user-interest GEMM.
        """
        store = self._store()
        if store is not None:
            row = store.context_row(interval, dtype)
            if row is not None:
                return row  # type: ignore[no-any-return]
        cache_key = ("ctx", interval, dtype)
        context = self.cache.contexts.get(cache_key)
        if context is None:
            if kind == "ttcam":
                context = params.theta_time[interval] @ params.phi_time
            else:
                context = params.theta_time[interval]
            if dtype != "float64":
                context = context.astype(np.float32)
            self.cache.contexts.put(cache_key, context)
        return context

    def exclusion_mask(
        self, user: int, exclude: object, num_items: int
    ) -> BoolArray | None:
        """Per-row boolean exclusion mask, cached per user for mappings.

        ``exclude`` may be ``None``, an array of item ids applied to
        every row, or a mapping ``user -> item ids`` (per-user masks are
        cached in the ``masks`` region; call
        :meth:`ServingCache.invalidate_user` when a user's exclusion
        list changes).
        """
        if exclude is None:
            return None
        if isinstance(exclude, Mapping):
            items = exclude.get(user)
            if items is None or len(items) == 0:
                return None
            mask = self.cache.masks.get(user)
            if mask is None or mask.shape[0] != num_items:
                mask = np.zeros(num_items, dtype=bool)
                mask[np.asarray(items, dtype=np.int64)] = True
                self.cache.masks.put(user, mask)
            return mask
        items = np.asarray(exclude, dtype=np.int64)
        if items.size == 0:
            return None
        mask = np.zeros(num_items, dtype=bool)
        mask[items] = True
        return mask

    # -- per-query weight vectors ----------------------------------------

    def _stacked_weights(
        self, kind: str, params: Any, user: int, interval: int
    ) -> FloatArray:
        """The exact query vector ``ϑ_q``, bit-identical to ``query_space``.

        Replicates the parameter containers' expression directly so the
        split path never materialises the per-query stacked matrix (for
        ITCAM, ``query_space`` vstacks a ``(K1+1, V)`` matrix per call).
        """
        lam = params.lambda_u[user]
        if kind == "ttcam":
            return np.concatenate(
                [lam * params.theta[user], (1 - lam) * params.theta_time[interval]]
            )
        return np.concatenate([lam * params.theta[user], [1 - lam]])

    # -- group serving ---------------------------------------------------

    @hot_path
    def serve_group(
        self,
        interval: int,
        users: Sequence[int],
        k: int,
        exclude: object,
        dtype: str,
        row_block: int = DEFAULT_ROW_BLOCK,
    ) -> list[TopKResult]:
        """Top-k results for every user of one interval group.

        Scores ``row_block`` queries at a time as one GEMM into the
        reused workspace, selects ``k + margin`` candidates per row
        (boundary ties included) and rescores them exactly — see the
        module docstring for why the two phases are needed.
        """
        check_serve_dtype(dtype)
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if row_block <= 0:
            raise ValueError(f"row_block must be positive, got {row_block}")
        kind, params = self._params_kind()
        key = self._matrix_key(interval)
        item_topic = self._item_topic(interval, users)
        num_items = item_topic.shape[0]
        quantized = dtype in QUANTIZED_DTYPES
        compute = "float32" if quantized else dtype
        count = 0 if quantized else min(num_items, k + SELECTION_MARGIN[dtype])
        stage_cols = min(num_items, STAGE_COLUMNS)

        qsel: QuantizedMatrix | None = None
        qcontext: ContextVector | None = None
        sel_matrix: AnyArray | None = None
        context: AnyArray | None = None
        if kind == "generic":
            if quantized:
                qsel = self._quantized_selection(
                    self._stacked_matrix(interval, users), key, "qstack", dtype
                )
                k_dim = qsel.shape[0]
            else:
                sel_matrix = self._selection_matrix(
                    self._stacked_matrix(interval, users), key, "stack", dtype
                )
                k_dim = sel_matrix.shape[0]
        else:
            if quantized:
                qsel = self._quantized_selection(params.phi, (key, "phi"), "qsel", dtype)
                qcontext = self._quantized_context(interval, kind, params)
                k_dim = qsel.shape[0]
            else:
                sel_matrix = self._selection_matrix(
                    params.phi, (key, "phi"), "sel", dtype
                )
                context = self._context_vector(interval, kind, params, dtype)
                k_dim = sel_matrix.shape[0]

        results: list[TopKResult] = []
        for start in range(0, len(users), row_block):
            block_users = [int(u) for u in users[start : start + row_block]]
            rows = len(block_users)
            scores = self.workspace.get("scores", (rows, num_items), compute)
            weights_f64: list[FloatArray] = []

            if kind == "generic":
                qweights = self.workspace.get("qweights", (rows, k_dim), compute)
                for r, user in enumerate(block_users):
                    w, _ = self.model.query_space(user, interval)
                    weights_f64.append(w)
                    np.copyto(qweights[r], w, casting="same_kind")
                if qsel is not None:
                    stage = self.workspace.get("stage", (k_dim, stage_cols), "float32")
                    staged_select_gemm(qsel, qweights, scores, stage)
                else:
                    assert sel_matrix is not None  # set by the non-quantized setup
                    np.matmul(qweights, sel_matrix, out=scores)
            else:
                theta = self._interest_matrix(params.theta, key, compute)
                interest = self.workspace.get("interest", (rows, k_dim), compute)
                np.take(theta, block_users, axis=0, out=interest)
                lam = params.lambda_u[block_users]
                np.multiply(interest, lam[:, None], out=interest, casting="same_kind")
                if qsel is not None:
                    stage = self.workspace.get("stage", (k_dim, stage_cols), "float32")
                    staged_select_gemm(qsel, interest, scores, stage)
                    ctx_values = qcontext.values if qcontext is not None else None
                else:
                    assert sel_matrix is not None  # set by the non-quantized setup
                    np.matmul(interest, sel_matrix, out=scores)
                    ctx_values = context
                assert ctx_values is not None  # split path always has a context
                ctx_row = self.workspace.get("ctx_row", (num_items,), compute)
                for r, user in enumerate(block_users):
                    np.multiply(ctx_values, 1 - lam[r], out=ctx_row, casting="same_kind")
                    scores[r] += ctx_row
                for user in block_users:
                    weights_f64.append(
                        self._stacked_weights(kind, params, user, interval)
                    )

            masks = [
                self.exclusion_mask(user, exclude, num_items) for user in block_users
            ]
            for r, mask in enumerate(masks):
                if mask is not None:
                    scores[r][mask] = -np.inf

            if qsel is not None:
                margins = self._block_margins(
                    kind, params, block_users, weights_f64, qsel, qcontext
                )
                cand_mask = select_candidates_margin(scores, k, margins)
            else:
                _, cand_mask = select_candidates(scores, count)
            for r in range(rows):
                candidates = np.flatnonzero(cand_mask[r])
                if masks[r] is not None:
                    candidates = candidates[~masks[r][candidates]]
                results.append(exact_rescore(item_topic, weights_f64[r], candidates, k))
        if self._sanitizer is not None:
            check_topk_finite(results)
        return results
