"""Query construction and ranking scores (Section 4.1, Equations 21–23).

A temporal query ``q = (u, t)`` is expanded into the concatenated topic
space of ``K = K1 + K2`` dimensions: the query vector
``ϑ_q = ⟨λ_u·θ_u, (1−λ_u)·θ′_t⟩`` paired with the stacked topic–item
matrix ``ϕ``. The ranking score of item ``v`` is the inner product
``S(u,t,v) = Σ_z ϑ_q[z]·ϕ[z,v]`` — a monotone aggregation, which is what
licenses the Threshold Algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..typing import FloatArray, IntArray


@dataclass(frozen=True)
class QuerySpace:
    """One query's view of the expanded topic space.

    Attributes
    ----------
    weights:
        ``ϑ_q``, shape ``(K,)``; non-negative, sums to ~1 for TCAM models.
    item_matrix:
        ``ϕ``, shape ``(K, V)``; row ``z`` holds item weights on topic ``z``.
    """

    weights: FloatArray
    item_matrix: FloatArray

    def __post_init__(self) -> None:
        if self.weights.ndim != 1:
            raise ValueError("weights must be one-dimensional")
        if self.item_matrix.ndim != 2:
            raise ValueError("item_matrix must be two-dimensional")
        if self.weights.shape[0] != self.item_matrix.shape[0]:
            raise ValueError(
                f"weights have {self.weights.shape[0]} topics but the matrix "
                f"has {self.item_matrix.shape[0]} rows"
            )
        if np.any(self.weights < -1e-12):
            raise ValueError("query weights must be non-negative")

    @property
    def num_topics(self) -> int:
        """Number of topics ``K``."""
        return int(self.weights.shape[0])

    @property
    def num_items(self) -> int:
        """Number of items ``V``."""
        return int(self.item_matrix.shape[1])

    def score(self, item: int) -> float:
        """``S(u, t, v)`` for a single item (Equation 22)."""
        return float(self.weights @ self.item_matrix[:, item])

    def score_all(self) -> FloatArray:
        """``S(u, t, v)`` for every item at once."""
        result: FloatArray = self.weights @ self.item_matrix
        return result


@dataclass(frozen=True, slots=True)
class Recommendation:
    """One ranked recommendation."""

    item: int
    score: float


@dataclass
class TopKResult:
    """Outcome of one top-k retrieval, with access accounting.

    ``items_scored`` counts full ranking-score evaluations — the quantity
    the Threshold Algorithm minimises; ``sorted_accesses`` counts pops
    from the per-topic sorted lists (0 for brute force).
    """

    recommendations: list[Recommendation]
    items_scored: int
    sorted_accesses: int = 0

    @property
    def items(self) -> list[int]:
        """Recommended item ids in rank order."""
        return [rec.item for rec in self.recommendations]

    @property
    def scores(self) -> list[float]:
        """Ranking scores aligned with :attr:`items`."""
        return [rec.score for rec in self.recommendations]

    def __len__(self) -> int:
        return len(self.recommendations)


def rank_order(
    scores: FloatArray, k: int, exclude: IntArray | None = None
) -> IntArray:
    """Deterministic top-k item ids for a dense score vector.

    Ties break toward the smaller item id so every retrieval engine in
    this package agrees on the result set exactly.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    scores = np.asarray(scores, dtype=np.float64)
    if exclude is not None and len(exclude):
        scores = scores.copy()
        scores[np.asarray(exclude, dtype=np.int64)] = -np.inf
    k = min(k, scores.shape[0])
    # Lexicographic sort on (-score, item id) gives the deterministic order.
    order = np.lexsort((np.arange(scores.shape[0]), -scores))
    top = order[:k]
    return top[np.isfinite(scores[top])]
