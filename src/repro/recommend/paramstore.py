"""Memory-mapped parameter store for million-item serving.

A fitted snapshot (`.npz`, see :mod:`repro.core.serialize`) is the
durable, checksummed source of truth — but serving from it means
decompressing every array into resident memory. At ``V ≥ 10⁶`` items
that is gigabytes of float64 before the first query is answered, most of
which a real query mix never touches (cold users, cold items, cold
intervals).

This module adds an **mmap sidecar layout** next to the snapshot: a
directory ``<snapshot>.arrays/`` holding one raw ``.npy`` file per array
plus a ``manifest.json`` with per-file SHA-256 digests, shapes and
dtypes. Serving opens every array with ``np.load(..., mmap_mode="r")``,
so the kernel pages in exactly the rows a query touches — a recommender
process's resident set scales with the *hot* fraction of the catalogue,
not its size.

Beyond the raw parameters the layout persists the derived serving
arrays that are expensive (in time or resident bytes) to rebuild online:

* ``item_topic`` — the contiguous ``(V, K)`` rescore transpose (TTCAM,
  whose topic–item matrix is query-independent);
* ``sorted_order`` / ``sorted_values`` — the Threshold-Algorithm
  per-topic sorted lists for the same matrix;
* ``context`` / ``context32`` (+ per-interval error statistics) — the
  per-interval context score vectors ``θ′_t·Φ`` in float64 and float32;
* ``qsel_int8_*`` / ``qsel_float16_*`` — the quantized selection forms
  of Φ with their measured per-topic error bounds (see
  :mod:`repro.recommend.quantize`).

**Trust model.** ``__post_init__`` validation of the parameter
containers would page every byte of every array — defeating the point —
so :meth:`ParamStore.params` constructs them *without* validation and
the store instead (a) verifies manifest structure, shapes and dtypes
against the mapped files, (b) fully hashes every file small enough to be
cheap, and (c) spot-checks sampled rows for the stochastic invariants.
:meth:`ParamStore.verify` performs the full every-byte hash check when
integrity matters more than start-up latency (tests do this; a paranoid
deployment can too). The sidecar is *derived* data: if it is missing or
damaged, loaders fall back to the checksummed ``.npz``.

**Atomicity.** :func:`write_store` builds the layout in a temporary
sibling directory, fsyncs, and renames it into place; the manifest is
written last, so a torn publish leaves a directory without a manifest —
which :class:`ParamStore` rejects cleanly — never a plausible-looking
store with half-written arrays.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Any, Hashable, Mapping

import numpy as np

from ..core.params import ITCAMParameters, TTCAMParameters
from ..robustness.errors import SnapshotCorruptError
from ..typing import AnyArray, FloatArray
from .quantize import QUANTIZED_DTYPES, ContextVector, QuantizedMatrix, quantize_matrix
from .threshold import SortedTopicLists

__all__ = ["MANIFEST_NAME", "STORE_SUFFIX", "ParamStore", "store_dir", "write_store"]

#: Name of the manifest file inside a store directory.
MANIFEST_NAME = "manifest.json"

#: Suffix appended to the snapshot filename to form the sidecar directory.
STORE_SUFFIX = ".arrays"

_FORMAT = "tcam-store-v1"

_TTCAM_FIELDS = ("theta", "phi", "theta_time", "phi_time", "lambda_u")
_ITCAM_FIELDS = ("theta", "phi", "theta_time", "lambda_u")

#: Files up to this size are fully hashed at load time; larger ones are
#: only hashed by :meth:`ParamStore.verify` (reading them would page the
#: whole layout in, defeating the mmap win).
_EAGER_HASH_LIMIT = 1 << 20


def store_dir(snapshot: str | Path) -> Path:
    """The sidecar store directory belonging to a snapshot path."""
    snapshot = Path(snapshot)
    return snapshot.with_name(snapshot.name + STORE_SUFFIX)


def _file_sha256(path: Path) -> str:
    """Chunked SHA-256 of one file (3.10-compatible, bounded memory)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _fsync_dir(directory: Path) -> None:
    """Flush directory metadata so renames survive a crash (POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _context_stats(context: FloatArray) -> tuple[AnyArray, FloatArray, FloatArray]:
    """Float32 image of a ``(T, V)`` context block plus per-row stats."""
    rows = context.shape[0]
    values = context.astype(np.float32)
    delta = np.empty(rows, dtype=np.float64)
    abs_max = np.empty(rows, dtype=np.float64)
    for t in range(rows):
        vector = ContextVector.from_exact(context[t])
        delta[t] = vector.delta
        abs_max[t] = vector.abs_max
    return values, delta, abs_max


def write_store(
    params: ITCAMParameters | TTCAMParameters,
    snapshot: str | Path,
    quantized_dtypes: tuple[str, ...] = QUANTIZED_DTYPES,
) -> Path:
    """Write the mmap sidecar layout for ``params`` next to ``snapshot``.

    This is an offline step run at publish time: it reads the full
    parameter set once, derives the serving arrays (rescore transpose,
    sorted topic lists, context vectors, quantized selection forms) and
    publishes everything with a rename. Returns the store directory.
    An existing store at the same location is replaced.
    """
    final = store_dir(snapshot)
    tmp = final.with_name(final.name + ".tmp")
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir(parents=True)

    arrays: dict[str, AnyArray] = {}
    if isinstance(params, TTCAMParameters):
        variant = "ttcam"
        for name in _TTCAM_FIELDS:
            arrays[name] = np.asarray(getattr(params, name))
        lists = SortedTopicLists.build(params.topic_item_matrix())
        arrays["item_topic"] = lists.item_topic
        arrays["sorted_order"] = lists.order
        arrays["sorted_values"] = lists.values
        # Row-by-row GEMV, the exact expression the online path evaluates
        # per interval — a single (T, K2) @ (K2, V) GEMM can differ from
        # it in the last ULP, and persisted context rows must be
        # bit-identical to freshly computed ones.
        intervals = int(params.theta_time.shape[0])
        context = np.empty((intervals, params.num_items), dtype=np.float64)
        for t in range(intervals):
            context[t] = params.theta_time[t] @ params.phi_time
        arrays["context"] = context
    elif isinstance(params, ITCAMParameters):
        variant = "itcam"
        for name in _ITCAM_FIELDS:
            arrays[name] = np.asarray(getattr(params, name))
        # ITCAM's context *is* theta_time; only the float32 image and
        # its statistics are additional. The per-interval topic–item
        # matrix (phi + one theta_time row) is cheap to assemble online,
        # so no per-interval transposes are persisted.
        context = np.asarray(params.theta_time, dtype=np.float64)
    else:
        raise TypeError(f"unsupported parameter type: {type(params).__name__}")

    context32, context_delta, context_abs_max = _context_stats(context)
    arrays["context32"] = context32
    arrays["context_delta"] = context_delta
    arrays["context_absmax"] = context_abs_max

    for dtype in quantized_dtypes:
        quantized = quantize_matrix(np.asarray(params.phi, dtype=np.float64), dtype)
        arrays[f"qsel_{dtype}_storage"] = quantized.storage
        if quantized.scale is not None:
            arrays[f"qsel_{dtype}_scale"] = quantized.scale
        arrays[f"qsel_{dtype}_delta"] = quantized.delta
        arrays[f"qsel_{dtype}_absmax"] = quantized.row_abs_max

    entries: dict[str, dict[str, Any]] = {}
    for name, array in arrays.items():
        filename = f"{name}.npy"
        path = tmp / filename
        with open(path, "wb") as handle:
            np.save(handle, np.ascontiguousarray(array))
            handle.flush()
            os.fsync(handle.fileno())
        entries[name] = {
            "file": filename,
            "dtype": str(array.dtype),
            "shape": list(array.shape),
            "sha256": _file_sha256(path),
        }

    manifest = {
        "format": _FORMAT,
        "variant": variant,
        "quantized_dtypes": list(quantized_dtypes),
        "arrays": entries,
    }
    manifest_path = tmp / MANIFEST_NAME
    with open(manifest_path, "w", encoding="utf-8") as text:
        json.dump(manifest, text, indent=2, sort_keys=True)
        text.flush()
        os.fsync(text.fileno())
    _fsync_dir(tmp)

    if final.exists():
        shutil.rmtree(final)
    os.rename(tmp, final)
    _fsync_dir(final.parent)
    return final


class ParamStore:
    """Memory-mapped view of one published parameter store directory.

    All arrays are opened with ``mmap_mode="r"`` — constructing a store
    maps files without reading them, so start-up cost and resident
    memory are both tiny regardless of catalogue size. Accessors hand
    out mmap-backed objects directly (memoised on the store, *not*
    copied), and the serving layer deliberately keeps them out of its
    byte-budget caches: they are pageable, not resident.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        manifest_path = self.directory / MANIFEST_NAME
        if not manifest_path.is_file():
            raise SnapshotCorruptError(
                f"parameter store {self.directory} has no {MANIFEST_NAME} "
                "(missing or torn publish)"
            )
        try:
            with open(manifest_path, "r", encoding="utf-8") as text:
                manifest = json.load(text)
        except (OSError, json.JSONDecodeError) as exc:
            raise SnapshotCorruptError(
                f"parameter store manifest {manifest_path} is unreadable: {exc}"
            ) from exc
        if not isinstance(manifest, dict) or manifest.get("format") != _FORMAT:
            raise SnapshotCorruptError(
                f"{manifest_path} is not a {_FORMAT} manifest"
            )
        self.variant = str(manifest.get("variant"))
        if self.variant not in ("ttcam", "itcam"):
            raise SnapshotCorruptError(
                f"unknown parameter-store variant {self.variant!r} in {manifest_path}"
            )
        entries = manifest.get("arrays")
        if not isinstance(entries, Mapping) or not entries:
            raise SnapshotCorruptError(f"{manifest_path} lists no arrays")
        self._entries: dict[str, dict[str, Any]] = {
            str(name): dict(entry) for name, entry in entries.items()
        }
        self._arrays: dict[str, AnyArray] = {}
        for name, entry in self._entries.items():
            self._arrays[name] = self._open_array(name, entry)
        self._check_structure()
        self._spot_check()
        self._params: ITCAMParameters | TTCAMParameters | None = None
        self._lists: SortedTopicLists | None = None
        self._quantized: dict[str, QuantizedMatrix | None] = {}

    @classmethod
    def for_snapshot(cls, snapshot: str | Path) -> "ParamStore":
        """Open the store belonging to a snapshot path."""
        return cls(store_dir(snapshot))

    # -- load-time validation --------------------------------------------

    def _open_array(self, name: str, entry: Mapping[str, Any]) -> AnyArray:
        """Map one manifest entry, checking its header against the manifest."""
        path = self.directory / str(entry.get("file", f"{name}.npy"))
        try:
            array = np.load(path, mmap_mode="r", allow_pickle=False)
        except (OSError, ValueError) as exc:
            raise SnapshotCorruptError(
                f"parameter store array {path} is unreadable: {exc}"
            ) from exc
        if str(array.dtype) != entry.get("dtype"):
            raise SnapshotCorruptError(
                f"{path} has dtype {array.dtype}, manifest says {entry.get('dtype')}"
            )
        if list(array.shape) != list(entry.get("shape", [])):
            raise SnapshotCorruptError(
                f"{path} has shape {array.shape}, manifest says {entry.get('shape')}"
            )
        if path.stat().st_size <= _EAGER_HASH_LIMIT:
            digest = _file_sha256(path)
            if digest != entry.get("sha256"):
                raise SnapshotCorruptError(f"{path} failed its checksum")
        return array

    def _require(self, name: str) -> AnyArray:
        array = self._arrays.get(name)
        if array is None:
            raise SnapshotCorruptError(
                f"parameter store {self.directory} is missing array {name!r}"
            )
        return array

    def _check_structure(self) -> None:
        """Cross-array shape consistency (reads headers only, no paging)."""
        theta = self._require("theta")
        phi = self._require("phi")
        lambda_u = self._require("lambda_u")
        theta_time = self._require("theta_time")
        if theta.ndim != 2 or phi.ndim != 2 or lambda_u.ndim != 1:
            raise SnapshotCorruptError(f"{self.directory}: parameter ranks are wrong")
        if theta.shape[1] != phi.shape[0]:
            raise SnapshotCorruptError(
                f"{self.directory}: theta / phi topic dimensions disagree"
            )
        if theta.shape[0] != lambda_u.shape[0]:
            raise SnapshotCorruptError(
                f"{self.directory}: theta / lambda_u user dimensions disagree"
            )
        num_items = int(phi.shape[1])
        if self.variant == "ttcam":
            phi_time = self._require("phi_time")
            if theta_time.shape[1] != phi_time.shape[0]:
                raise SnapshotCorruptError(
                    f"{self.directory}: theta_time / phi_time dimensions disagree"
                )
            if phi_time.shape[1] != num_items:
                raise SnapshotCorruptError(
                    f"{self.directory}: phi / phi_time item dimensions disagree"
                )
            stacked_topics = int(phi.shape[0] + phi_time.shape[0])
            item_topic = self._require("item_topic")
            if tuple(item_topic.shape) != (num_items, stacked_topics):
                raise SnapshotCorruptError(
                    f"{self.directory}: item_topic shape {item_topic.shape} does not "
                    f"match ({num_items}, {stacked_topics})"
                )
            for name in ("sorted_order", "sorted_values"):
                lists_array = self._require(name)
                if tuple(lists_array.shape) != (stacked_topics, num_items):
                    raise SnapshotCorruptError(
                        f"{self.directory}: {name} shape {lists_array.shape} does not "
                        f"match ({stacked_topics}, {num_items})"
                    )
            context = self._require("context")
            if tuple(context.shape) != (int(theta_time.shape[0]), num_items):
                raise SnapshotCorruptError(
                    f"{self.directory}: context shape {context.shape} is wrong"
                )
        else:
            if theta_time.shape[1] != num_items:
                raise SnapshotCorruptError(
                    f"{self.directory}: phi / theta_time item dimensions disagree"
                )
        intervals = int(theta_time.shape[0])
        context32 = self._require("context32")
        if tuple(context32.shape) != (intervals, num_items):
            raise SnapshotCorruptError(
                f"{self.directory}: context32 shape {context32.shape} is wrong"
            )
        for name in ("context_delta", "context_absmax"):
            stats = self._require(name)
            if tuple(stats.shape) != (intervals,):
                raise SnapshotCorruptError(
                    f"{self.directory}: {name} shape {stats.shape} is wrong"
                )

    def _spot_check(self) -> None:
        """Sampled invariant checks standing in for full validation.

        Pages only a handful of rows: the first and last rows of the
        stochastic matrices must be normalised, ``lambda_u`` samples must
        lie in ``[0, 1]`` and the first sorted-values row must be
        non-increasing. Full construction-time validation is skipped on
        purpose — it would fault in every byte of the mapping.
        """
        for name in ("theta", "phi") + (
            ("theta_time", "phi_time") if self.variant == "ttcam" else ("theta_time",)
        ):
            matrix = self._arrays[name]
            for row in sorted({0, int(matrix.shape[0]) - 1}):
                total = float(np.asarray(matrix[row], dtype=np.float64).sum())
                if not np.isfinite(total) or abs(total - 1.0) > 1e-4:
                    raise SnapshotCorruptError(
                        f"{self.directory}: {name} row {row} sums to {total!r}"
                    )
        lambda_u = self._arrays["lambda_u"]
        for row in sorted({0, int(lambda_u.shape[0]) - 1}):
            value = float(lambda_u[row])
            if not 0.0 <= value <= 1.0 + 1e-9:
                raise SnapshotCorruptError(
                    f"{self.directory}: lambda_u[{row}] = {value!r} outside [0, 1]"
                )
        values = self._arrays.get("sorted_values")
        if values is not None:
            head = np.asarray(values[0, : min(1024, values.shape[1])])
            if head.size > 1 and np.any(np.diff(head) > 0):
                raise SnapshotCorruptError(
                    f"{self.directory}: sorted_values row 0 is not non-increasing"
                )

    def verify(self) -> None:
        """Full integrity check: re-hash every file against the manifest.

        Reads (and therefore pages) the entire layout — use at publish
        or audit time, not on the serving start-up path.
        """
        for name, entry in self._entries.items():
            path = self.directory / str(entry.get("file", f"{name}.npy"))
            digest = _file_sha256(path)
            if digest != entry.get("sha256"):
                raise SnapshotCorruptError(f"{path} failed its checksum")

    # -- accessors --------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Total mapped bytes (file-backed, not resident)."""
        return sum(int(array.nbytes) for array in self._arrays.values())

    def array(self, name: str) -> AnyArray | None:
        """One named mmap array, or ``None`` when not persisted."""
        return self._arrays.get(name)

    def params(self) -> ITCAMParameters | TTCAMParameters:
        """The parameter container over the mapped arrays (memoised).

        Constructed *without* ``__post_init__`` validation — see the
        module docstring's trust model. The container behaves exactly
        like an eagerly loaded one, but its arrays page on demand.
        """
        if self._params is None:
            if self.variant == "ttcam":
                params: ITCAMParameters | TTCAMParameters = TTCAMParameters.__new__(
                    TTCAMParameters
                )
                fields = _TTCAM_FIELDS
            else:
                params = ITCAMParameters.__new__(ITCAMParameters)
                fields = _ITCAM_FIELDS
            for name in fields:
                setattr(params, name, self._require(name))
            self._params = params
        return self._params

    def item_topic(self, key: Hashable) -> FloatArray | None:
        """Persisted ``(V, K)`` rescore transpose for a matrix cache key.

        Only the TTCAM layout persists one (its topic–item matrix is
        query-independent, key ``"static"``); ITCAM callers get ``None``
        and build their per-interval transpose as before.
        """
        if self.variant != "ttcam" or key != "static":
            return None
        result: FloatArray | None = self._arrays.get("item_topic")
        return result

    def sorted_lists(self, key: Hashable) -> SortedTopicLists | None:
        """Persisted Threshold-Algorithm index for a matrix cache key.

        Memoised so repeat callers share one
        :class:`~repro.recommend.threshold.SortedTopicLists` instance
        (and therefore its reused per-query scratch buffers).
        """
        if self.variant != "ttcam" or key != "static":
            return None
        if self._lists is None:
            order = self._arrays.get("sorted_order")
            values = self._arrays.get("sorted_values")
            item_topic = self._arrays.get("item_topic")
            if order is None or values is None or item_topic is None:
                return None
            self._lists = SortedTopicLists(
                order=order, values=values, item_topic=item_topic
            )
        return self._lists

    def quantized_selection(self, dtype: str) -> QuantizedMatrix | None:
        """Persisted quantized form of Φ for one selection dtype."""
        if dtype in self._quantized:
            return self._quantized[dtype]
        storage = self._arrays.get(f"qsel_{dtype}_storage")
        delta = self._arrays.get(f"qsel_{dtype}_delta")
        abs_max = self._arrays.get(f"qsel_{dtype}_absmax")
        quantized: QuantizedMatrix | None = None
        if storage is not None and delta is not None and abs_max is not None:
            scale = self._arrays.get(f"qsel_{dtype}_scale")
            # The per-topic statistics are tiny and consulted on every
            # margin computation — copy them into resident memory.
            quantized = QuantizedMatrix(
                storage=storage,
                scale=None if scale is None else np.asarray(scale, dtype=np.float32),
                delta=np.asarray(delta, dtype=np.float64),
                row_abs_max=np.asarray(abs_max, dtype=np.float64),
            )
        self._quantized[dtype] = quantized
        return quantized

    def context_row(self, interval: int, dtype: str) -> AnyArray | None:
        """One interval's persisted context score vector ``θ′_t·Φ``."""
        if dtype == "float32":
            source = self._arrays.get("context32")
        elif self.variant == "ttcam":
            source = self._arrays.get("context")
        else:
            source = self._arrays.get("theta_time")
        if source is None or not 0 <= interval < source.shape[0]:
            return None
        return source[interval]

    def context_vector(self, interval: int) -> ContextVector | None:
        """One interval's float32 context vector with its error bounds."""
        values = self.context_row(interval, "float32")
        delta = self._arrays.get("context_delta")
        abs_max = self._arrays.get("context_absmax")
        if values is None or delta is None or abs_max is None:
            return None
        if not 0 <= interval < delta.shape[0]:
            return None
        return ContextVector(
            values=values,
            delta=float(delta[interval]),
            abs_max=float(abs_max[interval]),
        )
