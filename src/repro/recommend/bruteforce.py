"""Brute-force top-k retrieval (TCAM-BF in the paper's efficiency study).

Scores every item in the catalogue with the full ranking function and
keeps the k best. Exact by construction; serves as both the baseline the
Threshold Algorithm is measured against and the oracle the TA tests
compare with.
"""

from __future__ import annotations

from ..typing import IntArray
from .ranking import QuerySpace, Recommendation, TopKResult, rank_order


def bruteforce_topk(
    query: QuerySpace, k: int, exclude: IntArray | None = None
) -> TopKResult:
    """Exact top-k by scanning all items.

    Parameters
    ----------
    query:
        The expanded query space for ``(u, t)``.
    k:
        Number of recommendations requested.
    exclude:
        Item ids that must not be recommended (e.g. the user's training
        items during evaluation).
    """
    scores = query.score_all()
    top = rank_order(scores, k, exclude=exclude)
    recommendations = [Recommendation(int(v), float(scores[v])) for v in top]
    return TopKResult(
        recommendations=recommendations,
        items_scored=query.num_items,
        sorted_accesses=0,
    )
