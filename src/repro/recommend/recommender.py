"""Temporal top-k recommendation facade (Section 4).

:class:`TemporalRecommender` wraps any fitted model that exposes
``query_space(user, interval)`` (both TCAM variants and the UT/TT
baselines via adapters) and serves temporal queries ``q = (u, t)``
through either retrieval engine:

* ``method="ta"`` — the paper's Threshold-Algorithm engine with
  pre-computed per-topic sorted lists (TCAM-TA);
* ``method="batched-ta"`` — same threshold semantics with
  block-vectorised sorted access (fastest here on large catalogues);
* ``method="bf"`` — brute-force scan (TCAM-BF);
* ``method="classic-ta"`` — textbook round-robin TA (ablation).

For TTCAM the topic–item matrix is query-independent, so one sorted-list
index serves every query. For ITCAM the temporal context row depends on
the queried interval; indexes are built lazily per interval and cached.

A production deployment also needs to keep answering when things go
wrong, so the recommender accepts a **fallback chain** — simpler fitted
models (typically popularity baselines) consulted, in order, when the
primary model is unavailable (snapshot failed its checksum), the query
is out of the primary's range (unknown user or interval), or the primary
raises at serve time. Every answer carries a structured
:class:`ServingStatus` saying who served it and why, so degradation is
observable instead of silent.

Batch traffic goes through :meth:`TemporalRecommender.recommend_batch`,
which hands interval groups to the GEMM-based
:class:`~repro.recommend.serving.BatchScorer` and degrades *per row*:
one malformed or out-of-range query falls back (or raises) on its own
while the rest of the batch is still served by the primary model. All
cached serving state — sorted-list indexes, context vectors, exclusion
masks — lives in a bounded :class:`~repro.recommend.serving.ServingCache`
whose hit/miss/eviction counters ride along on every
:class:`ServingStatus`.

**Hot swap.** The primary model, its serving cache and its batch scorer
live together in one immutable *generation* object. Every query captures
the current generation exactly once on entry and serves entirely from
that capture, so :meth:`TemporalRecommender.swap_model` can publish a
new generation — one atomic reference assignment under a lock — while
traffic is in flight: queries that already started complete against the
old generation, queries that start afterwards see the new one, and no
query ever observes a half-swapped mix (read-copy-update). The streaming
:class:`~repro.streaming.publisher.SnapshotPublisher` drives this to hot
swap freshly ingested snapshots with zero dropped queries; swap,
rollback and drift counters ride along on every :class:`ServingStatus`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping, Protocol, Sequence

import numpy as np

from ..robustness.errors import ServingUnavailableError
from ..typing import FloatArray, IntArray, bit_deterministic
from .bruteforce import bruteforce_topk
from .ranking import QuerySpace, Recommendation, TopKResult, rank_order
from .serving import (
    DEFAULT_ROW_BLOCK,
    BatchScorer,
    CacheStats,
    ServingCache,
    ServingConfig,
    check_serve_dtype,
)
from .threshold import SortedTopicLists, batched_ta_topk, classic_ta_topk, ta_topk


class SupportsQuerySpace(Protocol):
    """Any fitted model that can expand a temporal query (Eq. 21)."""

    def query_space(self, user: int, interval: int) -> tuple[FloatArray, FloatArray]:
        """Return ``(ϑ_q, ϕ)`` for the query ``(user, interval)``."""
        ...


@dataclass(frozen=True)
class ServingStatus:
    """Structured account of how one query (or recommender) was served.

    Attributes
    ----------
    degraded:
        True when anything other than the primary model answered.
    served_by:
        Display name of the model that produced the result.
    reason:
        Why the primary model could not serve (``None`` when healthy).
    attempted:
        Names of models tried and skipped before the serving one.
    cache:
        Aggregate hit/miss/eviction counters of the serving generation's
        :class:`~repro.recommend.serving.ServingCache` at serve time
        (``None`` only on statuses predating the cache).
    generation:
        Index of the serving generation that answered; bumped by every
        :meth:`TemporalRecommender.swap_model`. All rows of one batch
        carry the same generation — a torn (mixed-generation) batch is
        impossible by construction.
    swaps:
        Snapshot hot-swaps performed over this recommender's lifetime.
    rollbacks:
        Publishes rejected or reverted (corrupt snapshot, failed health
        validation) over this recommender's lifetime.
    drift_events:
        Swaps that were escalations from temporal-drift boundaries.
    """

    degraded: bool
    served_by: str
    reason: str | None = None
    attempted: tuple[str, ...] = field(default_factory=tuple)
    cache: CacheStats | None = None
    generation: int = 0
    swaps: int = 0
    rollbacks: int = 0
    drift_events: int = 0


class _Generation:
    """One immutable serving generation: a model plus its cached state.

    The recommender's RCU read side: queries capture a generation once
    and use only its members, so swapping the recommender's current
    generation never disturbs a query already in flight. The members
    themselves are never reassigned after construction — the serving
    cache mutates internally, but it belongs to exactly one generation.
    """

    __slots__ = ("model", "cache", "index", "_scorer")

    def __init__(
        self, model: SupportsQuerySpace | None, cache: ServingCache, index: int
    ) -> None:
        self.model = model
        self.cache = cache
        self.index = index
        self._scorer: BatchScorer | None = None

    def scorer(self) -> BatchScorer:
        """The generation's lazily built batch scorer.

        Benign-race lazy init: concurrent first callers may each build a
        scorer, but both are equivalent (same model, same cache) and the
        attribute store is atomic, so whichever lands last wins safely.
        """
        if self._scorer is None:
            self._scorer = BatchScorer(self.model, self.cache)
        scorer = self._scorer
        assert scorer is not None
        return scorer


def _model_name(model: object) -> str:
    """Best-effort display name for any model-like object."""
    name = getattr(model, "name", None)
    return name if isinstance(name, str) else type(model).__name__


class TemporalRecommender:
    """Serves temporal top-k queries over a fitted topic-mixture model.

    Parameters
    ----------
    model:
        A fitted model exposing ``query_space``. ``None`` declares the
        primary unavailable from the start (used by
        :meth:`from_snapshot` when the snapshot is corrupt), in which
        case every query is served by the fallback chain.
    method:
        Default retrieval engine: ``"ta"``, ``"batched-ta"``, ``"bf"``
        or ``"classic-ta"``.
    fallbacks:
        Fitted degradation chain, consulted in order when the primary
        cannot serve. Each entry needs ``query_space`` or ``score_items``
        (any fitted baseline, e.g.
        :class:`~repro.baselines.popularity.GlobalPopularity`).
    serve_dtype:
        Default selection dtype for :meth:`recommend_batch` —
        ``"float64"`` (exact, the default), ``"float32"`` (converted
        once at index build; see ``docs/performance.md`` for the
        accuracy contract), or the proven-margin quantized modes
        ``"float16"`` / ``"int8"`` (bitwise identical to float64, see
        :mod:`repro.recommend.quantize`).
    cache:
        A :class:`~repro.recommend.serving.ServingCache` to use (e.g.
        with custom capacities); one with defaults is created otherwise.
    config:
        A :class:`~repro.recommend.serving.ServingConfig` bundling the
        serving knobs. When given, it supplies the selection dtype, the
        default GEMM row block, and — unless an explicit ``cache`` is
        passed — builds the (optionally byte-budgeted) serving cache for
        this and every hot-swapped generation.
    """

    _METHODS = ("ta", "batched-ta", "bf", "classic-ta")

    def __init__(
        self,
        model: SupportsQuerySpace | None,
        method: str = "ta",
        fallbacks: Sequence[object] = (),
        unavailable_reason: str | None = None,
        serve_dtype: str = "float64",
        cache: ServingCache | None = None,
        config: ServingConfig | None = None,
    ) -> None:
        if method not in self._METHODS:
            raise ValueError(f"method must be one of {self._METHODS}, got {method!r}")
        if model is None and not fallbacks:
            raise ValueError("a recommender needs a model or at least one fallback")
        self.method = method
        self.fallbacks = tuple(fallbacks)
        self.unavailable_reason = unavailable_reason
        self.config = config
        if config is not None:
            serve_dtype = config.select_dtype
        self.serve_dtype = check_serve_dtype(serve_dtype)
        self.row_block = config.row_block if config is not None else DEFAULT_ROW_BLOCK
        self.last_status: ServingStatus | None = None
        # Bounded serving state: sorted-list indexes keyed by the model's
        # matrix cache key (TTCAM's topic–item matrix is query-independent
        # — one entry; ITCAM's depends on the queried interval — one entry
        # per recently queried interval), plus context vectors, dtype
        # conversions and exclusion masks for the batch engine. The cache
        # lives inside the generation so a hot swap retires it with the
        # model it indexed.
        self._generation = _Generation(
            model, cache if cache is not None else self._build_cache(), 0
        )
        self._swap_lock = threading.Lock()
        self._swaps = 0
        self._rollbacks = 0
        self._drift_events = 0
        self.last_rollback_reason: str | None = None

    def _build_cache(self) -> ServingCache:
        """A fresh serving cache honouring the configured byte budget."""
        if self.config is not None:
            return self.config.build_cache()
        return ServingCache()

    # ------------------------------------------------------------------
    # generations (RCU hot swap)
    # ------------------------------------------------------------------

    @property
    def model(self) -> SupportsQuerySpace | None:
        """The current generation's primary model (``None`` = degraded)."""
        return self._generation.model

    @property
    def serving_cache(self) -> ServingCache:
        """The current generation's serving cache."""
        return self._generation.cache

    @property
    def generation(self) -> int:
        """Index of the currently published serving generation."""
        return self._generation.index

    @property
    def swap_count(self) -> int:
        """Hot swaps performed over this recommender's lifetime."""
        return self._swaps

    @property
    def rollback_count(self) -> int:
        """Failed publishes recorded against this recommender."""
        return self._rollbacks

    @property
    def drift_count(self) -> int:
        """Swaps escalated from temporal-drift boundaries."""
        return self._drift_events

    def swap_model(
        self,
        model: SupportsQuerySpace,
        cache: ServingCache | None = None,
        drift: bool = False,
    ) -> int:
        """Atomically publish ``model`` as a new serving generation.

        The new generation (model + fresh :class:`ServingCache` + lazy
        scorer) becomes visible to queries that *start* after this call
        returns; queries already in flight finish against the generation
        they captured on entry, so no query is ever dropped or served a
        torn mix of old and new parameters. Returns the new generation
        index. ``drift=True`` additionally counts the swap as a
        drift-boundary escalation.
        """
        if model is None:
            raise ValueError("cannot swap in a missing model; use fallbacks instead")
        with self._swap_lock:
            generation = _Generation(
                model,
                cache if cache is not None else self._build_cache(),
                self._generation.index + 1,
            )
            self._swaps += 1
            if drift:
                self._drift_events += 1
            self.unavailable_reason = None
            # Single atomic publication point — the RCU write side.
            self._generation = generation
            return generation.index

    def note_rollback(self, reason: str) -> None:
        """Record a rejected or reverted publish (kept generation serves on)."""
        with self._swap_lock:
            self._rollbacks += 1
            self.last_rollback_reason = reason

    def _status(
        self,
        generation: "_Generation",
        degraded: bool,
        served_by: str,
        reason: str | None = None,
        attempted: tuple[str, ...] = (),
        cache: CacheStats | None = None,
    ) -> ServingStatus:
        """Stamp one :class:`ServingStatus` with the generation counters."""
        return ServingStatus(
            degraded,
            served_by,
            reason,
            attempted,
            cache=cache if cache is not None else generation.cache.stats(),
            generation=generation.index,
            swaps=self._swaps,
            rollbacks=self._rollbacks,
            drift_events=self._drift_events,
        )

    @classmethod
    def from_snapshot(
        cls,
        path: str | Path,
        method: str = "ta",
        fallbacks: Sequence[object] = (),
        mmap: bool = False,
        config: ServingConfig | None = None,
    ) -> "TemporalRecommender":
        """Serve from a snapshot file, degrading instead of crashing.

        A snapshot that fails its checksum or validation normally raises
        :class:`~repro.robustness.errors.SnapshotCorruptError`; with a
        non-empty fallback chain the recommender comes up anyway and
        serves every query from the chain, flagging the degradation in
        each :class:`ServingStatus`. Without fallbacks the error
        propagates.

        ``mmap=True`` serves from the snapshot's sidecar store (see
        :mod:`repro.recommend.paramstore`): parameters page in on
        demand instead of being materialised, and a missing or damaged
        sidecar falls back to the eager checksummed load with a
        :class:`RuntimeWarning` rather than failing the start-up.
        """
        from ..core.serialize import LoadedModel

        try:
            model: SupportsQuerySpace | None = LoadedModel.from_file(path, mmap=mmap)
            reason = None
        except (ValueError, OSError) as exc:
            if not fallbacks:
                raise
            model, reason = None, f"snapshot unusable: {exc}"
        return cls(
            model,
            method=method,
            fallbacks=fallbacks,
            unavailable_reason=reason,
            config=config,
        )

    def recommend(
        self,
        user: int,
        interval: int,
        k: int = 10,
        method: str | None = None,
        exclude: IntArray | None = None,
    ) -> TopKResult:
        """Top-k items for the temporal query ``(user, interval)``.

        Parameters
        ----------
        user, interval:
            Dense ids of the querying user and time interval.
        k:
            Number of recommendations.
        method:
            Override the recommender's default engine for this query.
        exclude:
            Item ids that must not be recommended (e.g. training items).

        The serving outcome of the most recent call (who answered, and
        whether the result is degraded) is kept in :attr:`last_status`;
        use :meth:`recommend_with_status` to receive it explicitly.
        """
        result, _ = self.recommend_with_status(
            user, interval, k=k, method=method, exclude=exclude
        )
        return result

    def recommend_with_status(
        self,
        user: int,
        interval: int,
        k: int = 10,
        method: str | None = None,
        exclude: IntArray | None = None,
    ) -> tuple[TopKResult, ServingStatus]:
        """Top-k plus the structured :class:`ServingStatus` for the query.

        The primary model serves when it can; otherwise the fallback
        chain is walked in order. Only when *nothing* can answer does
        :class:`~repro.robustness.errors.ServingUnavailableError` raise.
        """
        engine = method if method is not None else self.method
        if engine not in self._METHODS:
            raise ValueError(f"method must be one of {self._METHODS}, got {engine!r}")
        # RCU read side: capture the generation once; every lookup below
        # uses this capture, so a concurrent swap cannot tear the query.
        generation = self._generation
        attempted: list[str] = []
        reason = self.unavailable_reason
        if generation.model is not None:
            range_problem = self._range_problem(generation.model, user, interval)
            if range_problem is None:
                try:
                    result = self._serve_primary(
                        generation, user, interval, k, engine, exclude
                    )
                    status = self._status(
                        generation, False, _model_name(generation.model)
                    )
                    self.last_status = status
                    return result, status
                except Exception as exc:
                    reason = f"primary model failed: {exc}"
            else:
                reason = range_problem
            attempted.append(_model_name(generation.model))
        result, status = self._serve_via_fallbacks(
            generation, user, interval, k, exclude, reason, attempted
        )
        self.last_status = status
        return result, status

    def _serve_via_fallbacks(
        self,
        generation: "_Generation",
        user: int,
        interval: int,
        k: int,
        exclude: IntArray | None,
        reason: str | None,
        attempted: Sequence[str],
    ) -> tuple[TopKResult, ServingStatus]:
        """Walk the fallback chain for one query; raise when it runs dry."""
        attempted = list(attempted)
        for fallback in self.fallbacks:
            try:
                result = self._serve_fallback(fallback, user, interval, k, exclude)
            except Exception:
                attempted.append(_model_name(fallback))
                continue
            status = self._status(
                generation,
                True,
                _model_name(fallback),
                reason,
                tuple(attempted),
            )
            return result, status
        raise ServingUnavailableError(
            f"no model could serve query (user={user}, interval={interval}): {reason}"
        )

    def recommend_batch(
        self,
        queries: Sequence[tuple[int, int]] | IntArray,
        k: int = 10,
        exclude: IntArray | Mapping[int, IntArray] | None = None,
        dtype: str | None = None,
        row_block: int | None = None,
    ) -> list[TopKResult]:
        """Top-k items for a batch of ``(user, interval)`` queries.

        Queries sharing an interval are scored together as blocked GEMMs
        by the :class:`~repro.recommend.serving.BatchScorer`; in float64
        mode (the default) each row's items, scores and tie order are
        exactly what :meth:`recommend` returns for the same query.
        Results are returned in query order. See
        :meth:`recommend_batch_with_status` for parameters and the
        per-row degradation contract.
        """
        results, _ = self.recommend_batch_with_status(
            queries, k=k, exclude=exclude, dtype=dtype, row_block=row_block
        )
        return results

    @bit_deterministic
    def recommend_batch_with_status(
        self,
        queries: Sequence[tuple[int, int]] | IntArray,
        k: int = 10,
        exclude: IntArray | Mapping[int, IntArray] | None = None,
        dtype: str | None = None,
        row_block: int | None = None,
    ) -> tuple[list[TopKResult], list[ServingStatus]]:
        """Batch top-k plus one :class:`ServingStatus` per query.

        Parameters
        ----------
        queries:
            ``(user, interval)`` pairs (any sequence of pairs, or a
            ``(Q, 2)`` integer array).
        k:
            Number of recommendations per query.
        exclude:
            Either one array of item ids excluded from every row, or a
            mapping ``user -> item ids`` (per-user masks are cached in
            the serving cache).
        dtype:
            Selection dtype override — ``"float64"``, ``"float32"``, or
            the proven-margin quantized modes ``"float16"`` / ``"int8"``;
            defaults to the recommender's ``serve_dtype``.
        row_block:
            Queries scored per GEMM block; defaults to the configured
            (or package default) block size.

        Degradation is **per row**: a query that is out of the primary's
        range — or whose interval group fails at serve time — walks the
        fallback chain on its own while the other rows are still served
        by the primary. :class:`~repro.robustness.errors.ServingUnavailableError`
        raises only when some row cannot be answered by anything. Every
        status carries the same end-of-batch cache counter snapshot.
        """
        serve_dtype = check_serve_dtype(dtype if dtype is not None else self.serve_dtype)
        block = row_block if row_block is not None else self.row_block
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        # RCU read side: the whole batch serves from one captured
        # generation, so concurrent swaps can never produce a torn batch.
        generation = self._generation
        model = generation.model
        pairs = [(int(user), int(interval)) for user, interval in queries]
        count = len(pairs)
        results: list[TopKResult | None] = [None] * count
        statuses: list[ServingStatus | None] = [None] * count

        fallback_reason: dict[int, str] = {}
        groups: dict[int, list[int]] = {}
        if model is None:
            reason = self.unavailable_reason or "no primary model"
            for i in range(count):
                fallback_reason[i] = reason
        else:
            for i, (user, interval) in enumerate(pairs):
                problem = self._range_problem(model, user, interval)
                if problem is None:
                    groups.setdefault(interval, []).append(i)
                else:
                    fallback_reason[i] = problem

        for interval, indices in groups.items():
            users = [pairs[i][0] for i in indices]
            try:
                group_results = generation.scorer().serve_group(
                    interval, users, k, exclude, serve_dtype, block
                )
            except Exception as exc:
                for i in indices:
                    fallback_reason[i] = f"primary model failed: {exc}"
            else:
                for i, result in zip(indices, group_results):
                    results[i] = result
                    statuses[i] = self._status(
                        generation, False, _model_name(model), cache=CacheStats()
                    )

        attempted = [_model_name(model)] if model is not None else []
        for i in sorted(fallback_reason):
            user, interval = pairs[i]
            results[i], statuses[i] = self._serve_via_fallbacks(
                generation,
                user,
                interval,
                k,
                self._exclude_items(user, exclude),
                fallback_reason[i],
                attempted,
            )

        snapshot = generation.cache.stats()
        # Every index was filled by the primary path or the fallback walk.
        assert all(r is not None for r in results)
        assert all(s is not None for s in statuses)
        final_results = [r for r in results if r is not None]
        final_statuses = [
            replace(s, cache=snapshot) for s in statuses if s is not None
        ]
        if final_statuses:
            self.last_status = final_statuses[-1]
        return final_results, final_statuses

    def _scorer(self) -> BatchScorer:
        """The current generation's batch scorer (tests and tooling hook)."""
        return self._generation.scorer()

    @staticmethod
    def _exclude_items(
        user: int, exclude: IntArray | Mapping[int, IntArray] | None
    ) -> IntArray | None:
        """Resolve a batch ``exclude`` argument to one row's item array."""
        if exclude is None:
            return None
        if isinstance(exclude, Mapping):
            items = exclude.get(user)
            return None if items is None else np.asarray(items, dtype=np.int64)
        return np.asarray(exclude, dtype=np.int64)

    @staticmethod
    def _range_problem(
        model: SupportsQuerySpace, user: int, interval: int
    ) -> str | None:
        """Why the query is outside the given model, or ``None`` if it fits.

        Only models that expose fitted ``params_`` dimensions are
        checked; anything else is assumed to accept the query.
        """
        params = getattr(model, "params_", None)
        num_users = getattr(params, "num_users", None)
        num_intervals = getattr(params, "num_intervals", None)
        if num_users is not None and not 0 <= user < num_users:
            return f"unknown user {user} (model knows [0, {num_users}))"
        if num_intervals is not None and not 0 <= interval < num_intervals:
            return f"unknown interval {interval} (model knows [0, {num_intervals}))"
        return None

    def _serve_primary(
        self,
        generation: "_Generation",
        user: int,
        interval: int,
        k: int,
        engine: str,
        exclude: IntArray | None,
    ) -> TopKResult:
        """Answer with the generation's model through the selected engine."""
        model = generation.model
        assert model is not None  # callers check before dispatching here
        weights, matrix = model.query_space(user, interval)
        query = QuerySpace(weights=weights, item_matrix=matrix)
        if engine == "bf":
            return bruteforce_topk(query, k, exclude=exclude)
        lists = self._lists_for(generation, matrix, interval)
        if engine == "ta":
            return ta_topk(query, lists, k, exclude=exclude)
        if engine == "batched-ta":
            return batched_ta_topk(query, lists, k, exclude=exclude)
        return classic_ta_topk(query, lists, k, exclude=exclude)

    def _serve_fallback(
        self,
        fallback: Any,
        user: int,
        interval: int,
        k: int,
        exclude: IntArray | None,
    ) -> TopKResult:
        """Answer with one fallback model via its dense score vector."""
        scores = np.asarray(fallback.score_items(user, interval), dtype=np.float64)
        top = rank_order(scores, k, exclude=exclude)
        recommendations = [
            Recommendation(item=int(item), score=float(scores[item])) for item in top
        ]
        return TopKResult(
            recommendations=recommendations, items_scored=int(scores.shape[0])
        )

    @staticmethod
    def _lists_for(
        generation: "_Generation", matrix: FloatArray, interval: int
    ) -> SortedTopicLists:
        """Fetch or build the sorted-list index for a topic–item matrix.

        Models expose ``matrix_cache_key(interval)`` saying which queries
        share a topic–item matrix; without it the index is rebuilt per
        query (correct but slow).
        """
        key_fn = getattr(generation.model, "matrix_cache_key", None)
        if key_fn is None:
            return SortedTopicLists.build(matrix)
        key = key_fn(interval)
        store = getattr(generation.model, "param_store", None)
        if store is not None:
            stored = store.sorted_lists(key)
            if stored is not None:
                # mmap-backed and memoised by the store itself; kept out
                # of the LRU so it never counts against a byte budget.
                return stored  # type: ignore[no-any-return]
        lists = generation.cache.indexes.get(key)
        if lists is None:
            lists = SortedTopicLists.build(matrix)
            generation.cache.indexes.put(key, lists)
        return lists

    def precompute(self, intervals: IntArray | None = None, user: int = 0) -> int:
        """Eagerly build sorted-list indexes (the paper's offline step).

        For TTCAM one call suffices; for ITCAM pass the intervals you plan
        to query. Returns the number of cached indexes. A recommender
        whose primary model is unavailable has nothing to precompute.
        """
        generation = self._generation
        if generation.model is None:
            return 0
        if intervals is None:
            intervals = np.array([0])
        for interval in np.asarray(intervals, dtype=np.int64):
            _, matrix = generation.model.query_space(user, int(interval))
            self._lists_for(generation, matrix, int(interval))
        return len(generation.cache.indexes)
