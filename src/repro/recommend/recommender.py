"""Temporal top-k recommendation facade (Section 4).

:class:`TemporalRecommender` wraps any fitted model that exposes
``query_space(user, interval)`` (both TCAM variants and the UT/TT
baselines via adapters) and serves temporal queries ``q = (u, t)``
through either retrieval engine:

* ``method="ta"`` — the paper's Threshold-Algorithm engine with
  pre-computed per-topic sorted lists (TCAM-TA);
* ``method="batched-ta"`` — same threshold semantics with
  block-vectorised sorted access (fastest here on large catalogues);
* ``method="bf"`` — brute-force scan (TCAM-BF);
* ``method="classic-ta"`` — textbook round-robin TA (ablation).

For TTCAM the topic–item matrix is query-independent, so one sorted-list
index serves every query. For ITCAM the temporal context row depends on
the queried interval; indexes are built lazily per interval and cached.

A production deployment also needs to keep answering when things go
wrong, so the recommender accepts a **fallback chain** — simpler fitted
models (typically popularity baselines) consulted, in order, when the
primary model is unavailable (snapshot failed its checksum), the query
is out of the primary's range (unknown user or interval), or the primary
raises at serve time. Every answer carries a structured
:class:`ServingStatus` saying who served it and why, so degradation is
observable instead of silent.

Batch traffic goes through :meth:`TemporalRecommender.recommend_batch`,
which hands interval groups to the GEMM-based
:class:`~repro.recommend.serving.BatchScorer` and degrades *per row*:
one malformed or out-of-range query falls back (or raises) on its own
while the rest of the batch is still served by the primary model. All
cached serving state — sorted-list indexes, context vectors, exclusion
masks — lives in a bounded :class:`~repro.recommend.serving.ServingCache`
whose hit/miss/eviction counters ride along on every
:class:`ServingStatus`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping, Protocol, Sequence

import numpy as np

from ..robustness.errors import ServingUnavailableError
from ..typing import FloatArray, IntArray
from .bruteforce import bruteforce_topk
from .ranking import QuerySpace, Recommendation, TopKResult, rank_order
from .serving import (
    DEFAULT_ROW_BLOCK,
    BatchScorer,
    CacheStats,
    ServingCache,
    check_serve_dtype,
)
from .threshold import SortedTopicLists, batched_ta_topk, classic_ta_topk, ta_topk


class SupportsQuerySpace(Protocol):
    """Any fitted model that can expand a temporal query (Eq. 21)."""

    def query_space(self, user: int, interval: int) -> tuple[FloatArray, FloatArray]:
        """Return ``(ϑ_q, ϕ)`` for the query ``(user, interval)``."""
        ...


@dataclass(frozen=True)
class ServingStatus:
    """Structured account of how one query (or recommender) was served.

    Attributes
    ----------
    degraded:
        True when anything other than the primary model answered.
    served_by:
        Display name of the model that produced the result.
    reason:
        Why the primary model could not serve (``None`` when healthy).
    attempted:
        Names of models tried and skipped before the serving one.
    cache:
        Aggregate hit/miss/eviction counters of the recommender's
        :class:`~repro.recommend.serving.ServingCache` at serve time
        (``None`` only on statuses predating the cache).
    """

    degraded: bool
    served_by: str
    reason: str | None = None
    attempted: tuple[str, ...] = field(default_factory=tuple)
    cache: CacheStats | None = None


def _model_name(model: object) -> str:
    """Best-effort display name for any model-like object."""
    name = getattr(model, "name", None)
    return name if isinstance(name, str) else type(model).__name__


class TemporalRecommender:
    """Serves temporal top-k queries over a fitted topic-mixture model.

    Parameters
    ----------
    model:
        A fitted model exposing ``query_space``. ``None`` declares the
        primary unavailable from the start (used by
        :meth:`from_snapshot` when the snapshot is corrupt), in which
        case every query is served by the fallback chain.
    method:
        Default retrieval engine: ``"ta"``, ``"batched-ta"``, ``"bf"``
        or ``"classic-ta"``.
    fallbacks:
        Fitted degradation chain, consulted in order when the primary
        cannot serve. Each entry needs ``query_space`` or ``score_items``
        (any fitted baseline, e.g.
        :class:`~repro.baselines.popularity.GlobalPopularity`).
    serve_dtype:
        Default selection dtype for :meth:`recommend_batch` —
        ``"float64"`` (exact, the default) or ``"float32"`` (converted
        once at index build; see ``docs/performance.md`` for the
        accuracy contract).
    cache:
        A :class:`~repro.recommend.serving.ServingCache` to use (e.g.
        with custom capacities); one with defaults is created otherwise.
    """

    _METHODS = ("ta", "batched-ta", "bf", "classic-ta")

    def __init__(
        self,
        model: SupportsQuerySpace | None,
        method: str = "ta",
        fallbacks: Sequence[object] = (),
        unavailable_reason: str | None = None,
        serve_dtype: str = "float64",
        cache: ServingCache | None = None,
    ) -> None:
        if method not in self._METHODS:
            raise ValueError(f"method must be one of {self._METHODS}, got {method!r}")
        if model is None and not fallbacks:
            raise ValueError("a recommender needs a model or at least one fallback")
        self.model = model
        self.method = method
        self.fallbacks = tuple(fallbacks)
        self.unavailable_reason = unavailable_reason
        self.serve_dtype = check_serve_dtype(serve_dtype)
        self.last_status: ServingStatus | None = None
        # Bounded serving state: sorted-list indexes keyed by the model's
        # matrix cache key (TTCAM's topic–item matrix is query-independent
        # — one entry; ITCAM's depends on the queried interval — one entry
        # per recently queried interval), plus context vectors, dtype
        # conversions and exclusion masks for the batch engine.
        self.serving_cache = cache if cache is not None else ServingCache()
        self._batch_scorer: BatchScorer | None = None

    @classmethod
    def from_snapshot(
        cls,
        path: str | Path,
        method: str = "ta",
        fallbacks: Sequence[object] = (),
    ) -> "TemporalRecommender":
        """Serve from a snapshot file, degrading instead of crashing.

        A snapshot that fails its checksum or validation normally raises
        :class:`~repro.robustness.errors.SnapshotCorruptError`; with a
        non-empty fallback chain the recommender comes up anyway and
        serves every query from the chain, flagging the degradation in
        each :class:`ServingStatus`. Without fallbacks the error
        propagates.
        """
        from ..core.serialize import LoadedModel

        try:
            model: SupportsQuerySpace | None = LoadedModel.from_file(path)
            reason = None
        except (ValueError, OSError) as exc:
            if not fallbacks:
                raise
            model, reason = None, f"snapshot unusable: {exc}"
        return cls(model, method=method, fallbacks=fallbacks, unavailable_reason=reason)

    def recommend(
        self,
        user: int,
        interval: int,
        k: int = 10,
        method: str | None = None,
        exclude: IntArray | None = None,
    ) -> TopKResult:
        """Top-k items for the temporal query ``(user, interval)``.

        Parameters
        ----------
        user, interval:
            Dense ids of the querying user and time interval.
        k:
            Number of recommendations.
        method:
            Override the recommender's default engine for this query.
        exclude:
            Item ids that must not be recommended (e.g. training items).

        The serving outcome of the most recent call (who answered, and
        whether the result is degraded) is kept in :attr:`last_status`;
        use :meth:`recommend_with_status` to receive it explicitly.
        """
        result, _ = self.recommend_with_status(
            user, interval, k=k, method=method, exclude=exclude
        )
        return result

    def recommend_with_status(
        self,
        user: int,
        interval: int,
        k: int = 10,
        method: str | None = None,
        exclude: IntArray | None = None,
    ) -> tuple[TopKResult, ServingStatus]:
        """Top-k plus the structured :class:`ServingStatus` for the query.

        The primary model serves when it can; otherwise the fallback
        chain is walked in order. Only when *nothing* can answer does
        :class:`~repro.robustness.errors.ServingUnavailableError` raise.
        """
        engine = method if method is not None else self.method
        if engine not in self._METHODS:
            raise ValueError(f"method must be one of {self._METHODS}, got {engine!r}")
        attempted: list[str] = []
        reason = self.unavailable_reason
        if self.model is not None:
            range_problem = self._range_problem(user, interval)
            if range_problem is None:
                try:
                    result = self._serve_primary(user, interval, k, engine, exclude)
                    status = ServingStatus(
                        False,
                        _model_name(self.model),
                        cache=self.serving_cache.stats(),
                    )
                    self.last_status = status
                    return result, status
                except Exception as exc:
                    reason = f"primary model failed: {exc}"
            else:
                reason = range_problem
            attempted.append(_model_name(self.model))
        result, status = self._serve_via_fallbacks(
            user, interval, k, exclude, reason, attempted
        )
        self.last_status = status
        return result, status

    def _serve_via_fallbacks(
        self,
        user: int,
        interval: int,
        k: int,
        exclude: IntArray | None,
        reason: str | None,
        attempted: Sequence[str],
    ) -> tuple[TopKResult, ServingStatus]:
        """Walk the fallback chain for one query; raise when it runs dry."""
        attempted = list(attempted)
        for fallback in self.fallbacks:
            try:
                result = self._serve_fallback(fallback, user, interval, k, exclude)
            except Exception:
                attempted.append(_model_name(fallback))
                continue
            status = ServingStatus(
                True,
                _model_name(fallback),
                reason,
                tuple(attempted),
                cache=self.serving_cache.stats(),
            )
            return result, status
        raise ServingUnavailableError(
            f"no model could serve query (user={user}, interval={interval}): {reason}"
        )

    def recommend_batch(
        self,
        queries: Sequence[tuple[int, int]] | IntArray,
        k: int = 10,
        exclude: IntArray | Mapping[int, IntArray] | None = None,
        dtype: str | None = None,
        row_block: int = DEFAULT_ROW_BLOCK,
    ) -> list[TopKResult]:
        """Top-k items for a batch of ``(user, interval)`` queries.

        Queries sharing an interval are scored together as blocked GEMMs
        by the :class:`~repro.recommend.serving.BatchScorer`; in float64
        mode (the default) each row's items, scores and tie order are
        exactly what :meth:`recommend` returns for the same query.
        Results are returned in query order. See
        :meth:`recommend_batch_with_status` for parameters and the
        per-row degradation contract.
        """
        results, _ = self.recommend_batch_with_status(
            queries, k=k, exclude=exclude, dtype=dtype, row_block=row_block
        )
        return results

    def recommend_batch_with_status(
        self,
        queries: Sequence[tuple[int, int]] | IntArray,
        k: int = 10,
        exclude: IntArray | Mapping[int, IntArray] | None = None,
        dtype: str | None = None,
        row_block: int = DEFAULT_ROW_BLOCK,
    ) -> tuple[list[TopKResult], list[ServingStatus]]:
        """Batch top-k plus one :class:`ServingStatus` per query.

        Parameters
        ----------
        queries:
            ``(user, interval)`` pairs (any sequence of pairs, or a
            ``(Q, 2)`` integer array).
        k:
            Number of recommendations per query.
        exclude:
            Either one array of item ids excluded from every row, or a
            mapping ``user -> item ids`` (per-user masks are cached in
            the serving cache).
        dtype:
            Selection dtype override, ``"float64"`` or ``"float32"``;
            defaults to the recommender's ``serve_dtype``.
        row_block:
            Queries scored per GEMM block.

        Degradation is **per row**: a query that is out of the primary's
        range — or whose interval group fails at serve time — walks the
        fallback chain on its own while the other rows are still served
        by the primary. :class:`~repro.robustness.errors.ServingUnavailableError`
        raises only when some row cannot be answered by anything. Every
        status carries the same end-of-batch cache counter snapshot.
        """
        serve_dtype = check_serve_dtype(dtype if dtype is not None else self.serve_dtype)
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        pairs = [(int(user), int(interval)) for user, interval in queries]
        count = len(pairs)
        results: list[TopKResult | None] = [None] * count
        statuses: list[ServingStatus | None] = [None] * count

        fallback_reason: dict[int, str] = {}
        groups: dict[int, list[int]] = {}
        if self.model is None:
            reason = self.unavailable_reason or "no primary model"
            for i in range(count):
                fallback_reason[i] = reason
        else:
            for i, (user, interval) in enumerate(pairs):
                problem = self._range_problem(user, interval)
                if problem is None:
                    groups.setdefault(interval, []).append(i)
                else:
                    fallback_reason[i] = problem

        for interval, indices in groups.items():
            users = [pairs[i][0] for i in indices]
            try:
                group_results = self._scorer().serve_group(
                    interval, users, k, exclude, serve_dtype, row_block
                )
            except Exception as exc:
                for i in indices:
                    fallback_reason[i] = f"primary model failed: {exc}"
            else:
                for i, result in zip(indices, group_results):
                    results[i] = result
                    statuses[i] = ServingStatus(False, _model_name(self.model))

        attempted = [_model_name(self.model)] if self.model is not None else []
        for i in sorted(fallback_reason):
            user, interval = pairs[i]
            results[i], statuses[i] = self._serve_via_fallbacks(
                user,
                interval,
                k,
                self._exclude_items(user, exclude),
                fallback_reason[i],
                attempted,
            )

        snapshot = self.serving_cache.stats()
        # Every index was filled by the primary path or the fallback walk.
        assert all(r is not None for r in results)
        assert all(s is not None for s in statuses)
        final_results = [r for r in results if r is not None]
        final_statuses = [
            replace(s, cache=snapshot) for s in statuses if s is not None
        ]
        if final_statuses:
            self.last_status = final_statuses[-1]
        return final_results, final_statuses

    def _scorer(self) -> BatchScorer:
        """The lazily created batch scorer bound to the primary model."""
        if self._batch_scorer is None:
            self._batch_scorer = BatchScorer(self.model, self.serving_cache)
        return self._batch_scorer

    @staticmethod
    def _exclude_items(
        user: int, exclude: IntArray | Mapping[int, IntArray] | None
    ) -> IntArray | None:
        """Resolve a batch ``exclude`` argument to one row's item array."""
        if exclude is None:
            return None
        if isinstance(exclude, Mapping):
            items = exclude.get(user)
            return None if items is None else np.asarray(items, dtype=np.int64)
        return np.asarray(exclude, dtype=np.int64)

    def _range_problem(self, user: int, interval: int) -> str | None:
        """Why the query is outside the primary model, or ``None`` if it fits.

        Only models that expose fitted ``params_`` dimensions are
        checked; anything else is assumed to accept the query.
        """
        params = getattr(self.model, "params_", None)
        num_users = getattr(params, "num_users", None)
        num_intervals = getattr(params, "num_intervals", None)
        if num_users is not None and not 0 <= user < num_users:
            return f"unknown user {user} (model knows [0, {num_users}))"
        if num_intervals is not None and not 0 <= interval < num_intervals:
            return f"unknown interval {interval} (model knows [0, {num_intervals}))"
        return None

    def _serve_primary(
        self,
        user: int,
        interval: int,
        k: int,
        engine: str,
        exclude: IntArray | None,
    ) -> TopKResult:
        """Answer with the primary model through the selected engine."""
        assert self.model is not None  # callers check before dispatching here
        weights, matrix = self.model.query_space(user, interval)
        query = QuerySpace(weights=weights, item_matrix=matrix)
        if engine == "bf":
            return bruteforce_topk(query, k, exclude=exclude)
        lists = self._lists_for(matrix, interval)
        if engine == "ta":
            return ta_topk(query, lists, k, exclude=exclude)
        if engine == "batched-ta":
            return batched_ta_topk(query, lists, k, exclude=exclude)
        return classic_ta_topk(query, lists, k, exclude=exclude)

    def _serve_fallback(
        self,
        fallback: Any,
        user: int,
        interval: int,
        k: int,
        exclude: IntArray | None,
    ) -> TopKResult:
        """Answer with one fallback model via its dense score vector."""
        scores = np.asarray(fallback.score_items(user, interval), dtype=np.float64)
        top = rank_order(scores, k, exclude=exclude)
        recommendations = [
            Recommendation(item=int(item), score=float(scores[item])) for item in top
        ]
        return TopKResult(
            recommendations=recommendations, items_scored=int(scores.shape[0])
        )

    def _lists_for(self, matrix: FloatArray, interval: int) -> SortedTopicLists:
        """Fetch or build the sorted-list index for a topic–item matrix.

        Models expose ``matrix_cache_key(interval)`` saying which queries
        share a topic–item matrix; without it the index is rebuilt per
        query (correct but slow).
        """
        key_fn = getattr(self.model, "matrix_cache_key", None)
        if key_fn is None:
            return SortedTopicLists.build(matrix)
        key = key_fn(interval)
        lists = self.serving_cache.indexes.get(key)
        if lists is None:
            lists = SortedTopicLists.build(matrix)
            self.serving_cache.indexes.put(key, lists)
        return lists

    def precompute(self, intervals: IntArray | None = None, user: int = 0) -> int:
        """Eagerly build sorted-list indexes (the paper's offline step).

        For TTCAM one call suffices; for ITCAM pass the intervals you plan
        to query. Returns the number of cached indexes. A recommender
        whose primary model is unavailable has nothing to precompute.
        """
        if self.model is None:
            return 0
        if intervals is None:
            intervals = np.array([0])
        for interval in np.asarray(intervals, dtype=np.int64):
            _, matrix = self.model.query_space(user, int(interval))
            self._lists_for(matrix, int(interval))
        return len(self.serving_cache.indexes)
