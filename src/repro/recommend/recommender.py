"""Temporal top-k recommendation facade (Section 4).

:class:`TemporalRecommender` wraps any fitted model that exposes
``query_space(user, interval)`` (both TCAM variants and the UT/TT
baselines via adapters) and serves temporal queries ``q = (u, t)``
through either retrieval engine:

* ``method="ta"`` — the paper's Threshold-Algorithm engine with
  pre-computed per-topic sorted lists (TCAM-TA);
* ``method="batched-ta"`` — same threshold semantics with
  block-vectorised sorted access (fastest here on large catalogues);
* ``method="bf"`` — brute-force scan (TCAM-BF);
* ``method="classic-ta"`` — textbook round-robin TA (ablation).

For TTCAM the topic–item matrix is query-independent, so one sorted-list
index serves every query. For ITCAM the temporal context row depends on
the queried interval; indexes are built lazily per interval and cached.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from .bruteforce import bruteforce_topk
from .ranking import QuerySpace, TopKResult
from .threshold import SortedTopicLists, batched_ta_topk, classic_ta_topk, ta_topk


class SupportsQuerySpace(Protocol):
    """Any fitted model that can expand a temporal query (Eq. 21)."""

    def query_space(self, user: int, interval: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(ϑ_q, ϕ)`` for the query ``(user, interval)``."""
        ...


class TemporalRecommender:
    """Serves temporal top-k queries over a fitted topic-mixture model.

    Parameters
    ----------
    model:
        A fitted model exposing ``query_space``.
    method:
        Default retrieval engine: ``"ta"``, ``"batched-ta"``, ``"bf"``
        or ``"classic-ta"``.
    """

    _METHODS = ("ta", "batched-ta", "bf", "classic-ta")

    def __init__(self, model: SupportsQuerySpace, method: str = "ta") -> None:
        if method not in self._METHODS:
            raise ValueError(f"method must be one of {self._METHODS}, got {method!r}")
        self.model = model
        self.method = method
        # Sorted-list indexes keyed by the model's matrix cache key: TTCAM's
        # topic–item matrix is query-independent (one entry), ITCAM's
        # depends on the queried interval (one entry per interval).
        self._index_cache: dict[object, SortedTopicLists] = {}

    def recommend(
        self,
        user: int,
        interval: int,
        k: int = 10,
        method: str | None = None,
        exclude: np.ndarray | None = None,
    ) -> TopKResult:
        """Top-k items for the temporal query ``(user, interval)``.

        Parameters
        ----------
        user, interval:
            Dense ids of the querying user and time interval.
        k:
            Number of recommendations.
        method:
            Override the recommender's default engine for this query.
        exclude:
            Item ids that must not be recommended (e.g. training items).
        """
        engine = method if method is not None else self.method
        if engine not in self._METHODS:
            raise ValueError(f"method must be one of {self._METHODS}, got {engine!r}")
        weights, matrix = self.model.query_space(user, interval)
        query = QuerySpace(weights=weights, item_matrix=matrix)
        if engine == "bf":
            return bruteforce_topk(query, k, exclude=exclude)
        lists = self._lists_for(matrix, interval)
        if engine == "ta":
            return ta_topk(query, lists, k, exclude=exclude)
        if engine == "batched-ta":
            return batched_ta_topk(query, lists, k, exclude=exclude)
        return classic_ta_topk(query, lists, k, exclude=exclude)

    def _lists_for(self, matrix: np.ndarray, interval: int) -> SortedTopicLists:
        """Fetch or build the sorted-list index for a topic–item matrix.

        Models expose ``matrix_cache_key(interval)`` saying which queries
        share a topic–item matrix; without it the index is rebuilt per
        query (correct but slow).
        """
        key_fn = getattr(self.model, "matrix_cache_key", None)
        if key_fn is None:
            return SortedTopicLists.build(matrix)
        key = key_fn(interval)
        lists = self._index_cache.get(key)
        if lists is None:
            lists = SortedTopicLists.build(matrix)
            self._index_cache[key] = lists
        return lists

    def precompute(self, intervals: np.ndarray | None = None, user: int = 0) -> int:
        """Eagerly build sorted-list indexes (the paper's offline step).

        For TTCAM one call suffices; for ITCAM pass the intervals you plan
        to query. Returns the number of cached indexes.
        """
        if intervals is None:
            intervals = np.array([0])
        for interval in np.asarray(intervals, dtype=np.int64):
            _, matrix = self.model.query_space(user, int(interval))
            self._lists_for(matrix, int(interval))
        return len(self._index_cache)
