"""Temporal top-k recommendation facade (Section 4).

:class:`TemporalRecommender` wraps any fitted model that exposes
``query_space(user, interval)`` (both TCAM variants and the UT/TT
baselines via adapters) and serves temporal queries ``q = (u, t)``
through either retrieval engine:

* ``method="ta"`` — the paper's Threshold-Algorithm engine with
  pre-computed per-topic sorted lists (TCAM-TA);
* ``method="batched-ta"`` — same threshold semantics with
  block-vectorised sorted access (fastest here on large catalogues);
* ``method="bf"`` — brute-force scan (TCAM-BF);
* ``method="classic-ta"`` — textbook round-robin TA (ablation).

For TTCAM the topic–item matrix is query-independent, so one sorted-list
index serves every query. For ITCAM the temporal context row depends on
the queried interval; indexes are built lazily per interval and cached.

A production deployment also needs to keep answering when things go
wrong, so the recommender accepts a **fallback chain** — simpler fitted
models (typically popularity baselines) consulted, in order, when the
primary model is unavailable (snapshot failed its checksum), the query
is out of the primary's range (unknown user or interval), or the primary
raises at serve time. Every answer carries a structured
:class:`ServingStatus` saying who served it and why, so degradation is
observable instead of silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol, Sequence

import numpy as np

from ..robustness.errors import ServingUnavailableError
from .bruteforce import bruteforce_topk
from .ranking import QuerySpace, Recommendation, TopKResult, rank_order
from .threshold import SortedTopicLists, batched_ta_topk, classic_ta_topk, ta_topk


class SupportsQuerySpace(Protocol):
    """Any fitted model that can expand a temporal query (Eq. 21)."""

    def query_space(self, user: int, interval: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(ϑ_q, ϕ)`` for the query ``(user, interval)``."""
        ...


@dataclass(frozen=True)
class ServingStatus:
    """Structured account of how one query (or recommender) was served.

    Attributes
    ----------
    degraded:
        True when anything other than the primary model answered.
    served_by:
        Display name of the model that produced the result.
    reason:
        Why the primary model could not serve (``None`` when healthy).
    attempted:
        Names of models tried and skipped before the serving one.
    """

    degraded: bool
    served_by: str
    reason: str | None = None
    attempted: tuple[str, ...] = field(default_factory=tuple)


def _model_name(model: object) -> str:
    """Best-effort display name for any model-like object."""
    name = getattr(model, "name", None)
    return name if isinstance(name, str) else type(model).__name__


class TemporalRecommender:
    """Serves temporal top-k queries over a fitted topic-mixture model.

    Parameters
    ----------
    model:
        A fitted model exposing ``query_space``. ``None`` declares the
        primary unavailable from the start (used by
        :meth:`from_snapshot` when the snapshot is corrupt), in which
        case every query is served by the fallback chain.
    method:
        Default retrieval engine: ``"ta"``, ``"batched-ta"``, ``"bf"``
        or ``"classic-ta"``.
    fallbacks:
        Fitted degradation chain, consulted in order when the primary
        cannot serve. Each entry needs ``query_space`` or ``score_items``
        (any fitted baseline, e.g.
        :class:`~repro.baselines.popularity.GlobalPopularity`).
    """

    _METHODS = ("ta", "batched-ta", "bf", "classic-ta")

    def __init__(
        self,
        model: SupportsQuerySpace | None,
        method: str = "ta",
        fallbacks: Sequence[object] = (),
        unavailable_reason: str | None = None,
    ) -> None:
        if method not in self._METHODS:
            raise ValueError(f"method must be one of {self._METHODS}, got {method!r}")
        if model is None and not fallbacks:
            raise ValueError("a recommender needs a model or at least one fallback")
        self.model = model
        self.method = method
        self.fallbacks = tuple(fallbacks)
        self.unavailable_reason = unavailable_reason
        self.last_status: ServingStatus | None = None
        # Sorted-list indexes keyed by the model's matrix cache key: TTCAM's
        # topic–item matrix is query-independent (one entry), ITCAM's
        # depends on the queried interval (one entry per interval).
        self._index_cache: dict[object, SortedTopicLists] = {}

    @classmethod
    def from_snapshot(
        cls,
        path: str | Path,
        method: str = "ta",
        fallbacks: Sequence[object] = (),
    ) -> "TemporalRecommender":
        """Serve from a snapshot file, degrading instead of crashing.

        A snapshot that fails its checksum or validation normally raises
        :class:`~repro.robustness.errors.SnapshotCorruptError`; with a
        non-empty fallback chain the recommender comes up anyway and
        serves every query from the chain, flagging the degradation in
        each :class:`ServingStatus`. Without fallbacks the error
        propagates.
        """
        from ..core.serialize import LoadedModel

        try:
            model: SupportsQuerySpace | None = LoadedModel.from_file(path)
            reason = None
        except (ValueError, OSError) as exc:
            if not fallbacks:
                raise
            model, reason = None, f"snapshot unusable: {exc}"
        return cls(model, method=method, fallbacks=fallbacks, unavailable_reason=reason)

    def recommend(
        self,
        user: int,
        interval: int,
        k: int = 10,
        method: str | None = None,
        exclude: np.ndarray | None = None,
    ) -> TopKResult:
        """Top-k items for the temporal query ``(user, interval)``.

        Parameters
        ----------
        user, interval:
            Dense ids of the querying user and time interval.
        k:
            Number of recommendations.
        method:
            Override the recommender's default engine for this query.
        exclude:
            Item ids that must not be recommended (e.g. training items).

        The serving outcome of the most recent call (who answered, and
        whether the result is degraded) is kept in :attr:`last_status`;
        use :meth:`recommend_with_status` to receive it explicitly.
        """
        result, _ = self.recommend_with_status(
            user, interval, k=k, method=method, exclude=exclude
        )
        return result

    def recommend_with_status(
        self,
        user: int,
        interval: int,
        k: int = 10,
        method: str | None = None,
        exclude: np.ndarray | None = None,
    ) -> tuple[TopKResult, ServingStatus]:
        """Top-k plus the structured :class:`ServingStatus` for the query.

        The primary model serves when it can; otherwise the fallback
        chain is walked in order. Only when *nothing* can answer does
        :class:`~repro.robustness.errors.ServingUnavailableError` raise.
        """
        engine = method if method is not None else self.method
        if engine not in self._METHODS:
            raise ValueError(f"method must be one of {self._METHODS}, got {engine!r}")
        attempted: list[str] = []
        reason = self.unavailable_reason
        if self.model is not None:
            range_problem = self._range_problem(user, interval)
            if range_problem is None:
                try:
                    result = self._serve_primary(user, interval, k, engine, exclude)
                    status = ServingStatus(False, _model_name(self.model))
                    self.last_status = status
                    return result, status
                except Exception as exc:
                    reason = f"primary model failed: {exc}"
            else:
                reason = range_problem
            attempted.append(_model_name(self.model))
        for fallback in self.fallbacks:
            try:
                result = self._serve_fallback(fallback, user, interval, k, exclude)
            except Exception:
                attempted.append(_model_name(fallback))
                continue
            status = ServingStatus(
                True, _model_name(fallback), reason, tuple(attempted)
            )
            self.last_status = status
            return result, status
        raise ServingUnavailableError(
            f"no model could serve query (user={user}, interval={interval}): {reason}"
        )

    def _range_problem(self, user: int, interval: int) -> str | None:
        """Why the query is outside the primary model, or ``None`` if it fits.

        Only models that expose fitted ``params_`` dimensions are
        checked; anything else is assumed to accept the query.
        """
        params = getattr(self.model, "params_", None)
        num_users = getattr(params, "num_users", None)
        num_intervals = getattr(params, "num_intervals", None)
        if num_users is not None and not 0 <= user < num_users:
            return f"unknown user {user} (model knows [0, {num_users}))"
        if num_intervals is not None and not 0 <= interval < num_intervals:
            return f"unknown interval {interval} (model knows [0, {num_intervals}))"
        return None

    def _serve_primary(
        self,
        user: int,
        interval: int,
        k: int,
        engine: str,
        exclude: np.ndarray | None,
    ) -> TopKResult:
        """Answer with the primary model through the selected engine."""
        weights, matrix = self.model.query_space(user, interval)
        query = QuerySpace(weights=weights, item_matrix=matrix)
        if engine == "bf":
            return bruteforce_topk(query, k, exclude=exclude)
        lists = self._lists_for(matrix, interval)
        if engine == "ta":
            return ta_topk(query, lists, k, exclude=exclude)
        if engine == "batched-ta":
            return batched_ta_topk(query, lists, k, exclude=exclude)
        return classic_ta_topk(query, lists, k, exclude=exclude)

    def _serve_fallback(
        self,
        fallback: object,
        user: int,
        interval: int,
        k: int,
        exclude: np.ndarray | None,
    ) -> TopKResult:
        """Answer with one fallback model via its dense score vector."""
        scores = np.asarray(fallback.score_items(user, interval), dtype=np.float64)
        top = rank_order(scores, k, exclude=exclude)
        recommendations = [
            Recommendation(item=int(item), score=float(scores[item])) for item in top
        ]
        return TopKResult(
            recommendations=recommendations, items_scored=int(scores.shape[0])
        )

    def _lists_for(self, matrix: np.ndarray, interval: int) -> SortedTopicLists:
        """Fetch or build the sorted-list index for a topic–item matrix.

        Models expose ``matrix_cache_key(interval)`` saying which queries
        share a topic–item matrix; without it the index is rebuilt per
        query (correct but slow).
        """
        key_fn = getattr(self.model, "matrix_cache_key", None)
        if key_fn is None:
            return SortedTopicLists.build(matrix)
        key = key_fn(interval)
        lists = self._index_cache.get(key)
        if lists is None:
            lists = SortedTopicLists.build(matrix)
            self._index_cache[key] = lists
        return lists

    def precompute(self, intervals: np.ndarray | None = None, user: int = 0) -> int:
        """Eagerly build sorted-list indexes (the paper's offline step).

        For TTCAM one call suffices; for ITCAM pass the intervals you plan
        to query. Returns the number of cached indexes. A recommender
        whose primary model is unavailable has nothing to precompute.
        """
        if self.model is None:
            return 0
        if intervals is None:
            intervals = np.array([0])
        for interval in np.asarray(intervals, dtype=np.int64):
            _, matrix = self.model.query_space(user, int(interval))
            self._lists_for(matrix, int(interval))
        return len(self._index_cache)
