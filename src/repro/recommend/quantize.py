"""Quantized candidate selection with a proven exactness margin.

The batch serving engine (:mod:`repro.recommend.serving`) splits every
query into an approximate GEMM *selection* pass and an exact float64
*rescore* pass. The selection pass only has to produce a candidate
superset of the true top-k — so its matrix does not have to be float64.
This module provides int8 (symmetric, per-topic scale) and float16
representations of a ``(K, V)`` selection matrix together with the
machinery that keeps the end-to-end result **bitwise identical** to the
float64 path:

* :class:`QuantizedMatrix` stores the compressed matrix plus, per topic
  row, the *measured* worst-case deviation ``δ_z`` of its effective
  float32 value from the exact float64 entry, and the maximum absolute
  effective value (used to bound floating-point accumulation error).
* :func:`staged_select_gemm` computes approximate selection scores by
  dequantizing column blocks into a small reused float32 buffer — the
  full float32 matrix is never materialised, so an int8 model pages and
  keeps resident ~8× fewer selection bytes than float64.
* :func:`selection_margins` turns the stored error statistics into a
  per-row bound ``ε_r`` with ``|approx(v) − exact(v)| ≤ ε_r`` for every
  item ``v``, where *exact* is the float64 rescore score.

**Why the ``2ε`` margin is sufficient.** Let ``τ_r`` be the k-th largest
approximate score of row ``r`` and suppose some true top-k item ``v*``
had ``approx(v*) < τ_r − 2ε_r``. Then ``exact(v*) ≤ approx(v*) + ε_r <
τ_r − ε_r``. But each of the (at least) k items with ``approx ≥ τ_r``
has ``exact ≥ τ_r − ε_r > exact(v*)`` — k items with strictly larger
exact score, contradicting ``v*`` being in the exact top-k (under the
shared ``(score desc, item asc)`` tie order, which only ever *adds*
items at equal scores). Hence every item the float64 path returns
satisfies ``approx ≥ τ_r − 2ε_r`` and survives selection; the exact
rescore of any candidate superset returns identical items, scores and
tie order. See ``docs/performance.md`` for the full derivation,
including how ``ε_r`` accounts for quantization, float32 staging and
accumulation order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..typing import AnyArray, FloatArray

__all__ = [
    "QUANTIZED_DTYPES",
    "ContextVector",
    "QuantizedMatrix",
    "accumulation_gamma",
    "quantize_matrix",
    "selection_margins",
    "staged_select_gemm",
]

#: Selection dtypes that run through the quantized staged-GEMM path.
QUANTIZED_DTYPES = ("float16", "int8")

#: Columns dequantized per staging step. ``K × 65536 × 4`` bytes of
#: float32 staging buffer (e.g. 12 MB at K = 48) regardless of ``V``.
STAGE_COLUMNS = 65_536

#: Unit roundoff of the float32 staging/accumulation arithmetic.
_UNIT32 = float(np.finfo(np.float32).eps) / 2.0

#: Measured error statistics are themselves computed in float64; inflate
#: them by this relative factor so their own rounding can never make the
#: stored bound an underestimate.
_MEASURE_SLACK = 1.0 + 2.0**-30


def accumulation_gamma(terms: int) -> float:
    """Worst-case relative error factor of summing ``terms`` products.

    The classical bound ``γ_n = n·u / (1 − n·u)`` with ``u`` the float32
    unit roundoff: any evaluation order of a dot product of length ``n``
    satisfies ``|fl(x·y) − x·y| ≤ γ_n · Σ|x_i||y_i|`` (Higham,
    *Accuracy and Stability of Numerical Algorithms*, §3.1). It is
    ordering-independent, so it covers BLAS's blocked/pairwise
    accumulation as well as sequential summation.
    """
    nu = terms * _UNIT32
    if nu >= 0.5:  # absurd K; keep the bound finite and conservative
        return 1.0
    return nu / (1.0 - nu)


@dataclass(frozen=True)
class QuantizedMatrix:
    """A ``(K, V)`` selection matrix in int8 or float16 storage.

    Attributes
    ----------
    storage:
        ``(K, V)`` int8 codes or float16 values.
    scale:
        ``(K,)`` float32 per-topic dequantization scales (int8 only;
        ``None`` for float16 storage).
    delta:
        ``(K,)`` float64 measured per-topic worst-case deviation of the
        *effective float32 value* (exactly what
        :func:`staged_select_gemm` multiplies with) from the exact
        float64 matrix entry — an upper bound by construction.
    row_abs_max:
        ``(K,)`` float64 maximum absolute effective value per topic,
        used to bound float32 accumulation error.
    """

    storage: AnyArray
    scale: AnyArray | None
    delta: FloatArray
    row_abs_max: FloatArray

    @property
    def dtype(self) -> str:
        """Storage dtype name (``"int8"`` or ``"float16"``)."""
        return str(self.storage.dtype)

    @property
    def shape(self) -> tuple[int, int]:
        """``(K, V)`` of the represented matrix."""
        return (int(self.storage.shape[0]), int(self.storage.shape[1]))

    @property
    def nbytes(self) -> int:
        """Bytes held by the storage and its per-topic statistics."""
        total = int(self.storage.nbytes + self.delta.nbytes + self.row_abs_max.nbytes)
        if self.scale is not None:
            total += int(self.scale.nbytes)
        return total

    def dequantize_block(self, columns: slice, out: AnyArray) -> AnyArray:
        """Effective float32 values of one column block, written to ``out``.

        For int8 storage the effective value is
        ``float32(code) · float32(scale)`` — the exact expression the
        stored ``delta`` was measured against, so the GEMM operates on
        values whose deviation from float64 truth is bounded by
        construction.
        """
        block = self.storage[:, columns]
        view = out[:, : block.shape[1]]
        np.copyto(view, block, casting="same_kind")
        if self.scale is not None:
            np.multiply(view, self.scale[:, None], out=view)
        return view


@dataclass(frozen=True)
class ContextVector:
    """Float32 per-interval context scores plus their error statistics.

    Used by the quantized selection path: ``values`` is the float32
    conversion of the exact float64 context vector ``θ′_t·Φ``; ``delta``
    the measured worst case ``max_v |values[v] − exact[v]|`` and
    ``abs_max`` the largest ``|values[v]|`` — the two numbers
    :func:`selection_margins` needs to bound the context contribution to
    every row's selection error.
    """

    values: AnyArray
    delta: float
    abs_max: float

    @property
    def nbytes(self) -> int:
        """Bytes held by the float32 vector (for byte-budget caches)."""
        return int(self.values.nbytes)

    @classmethod
    def from_exact(cls, exact: FloatArray) -> "ContextVector":
        """Convert an exact float64 vector, measuring the deviation.

        The measured statistics are inflated by the same relative slack
        as :func:`quantize_matrix`'s, so the float64 measurement cannot
        underestimate the true conversion error.
        """
        exact = np.asarray(exact, dtype=np.float64)
        values = exact.astype(np.float32)
        back = values.astype(np.float64)
        delta = float(np.abs(back - exact).max(initial=0.0)) * _MEASURE_SLACK
        abs_max = float(np.abs(back).max(initial=0.0)) * _MEASURE_SLACK
        return cls(values=values, delta=delta, abs_max=abs_max)


def _effective_values(storage: AnyArray, scale: AnyArray | None) -> FloatArray:
    """Float64 image of the effective float32 values (build-time only)."""
    values = storage.astype(np.float32)
    if scale is not None:
        values = values * scale[:, None]
    result: FloatArray = values.astype(np.float64)
    return result


def quantize_matrix(matrix: FloatArray, dtype: str) -> QuantizedMatrix:
    """Quantize a float64 ``(K, V)`` selection matrix.

    ``dtype="int8"`` uses a symmetric per-topic scale
    ``s_z = max_v |M[z, v]| / 127`` and round-to-nearest codes clipped to
    ``[−127, 127]``; ``dtype="float16"`` stores IEEE half precision.
    Either way the returned container carries *measured* per-topic error
    bounds: the deviation is evaluated against the effective float32
    values actually used at serve time, then inflated by a relative
    slack so the measurement's own float64 rounding cannot flip it from
    an upper bound into an underestimate.

    This is a build/offline step — it reads the full matrix once and
    allocates freely. Serving only touches the compact result.
    """
    if dtype not in QUANTIZED_DTYPES:
        raise ValueError(f"quantized dtype must be one of {QUANTIZED_DTYPES}, got {dtype!r}")
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"selection matrix must be 2-D, got shape {matrix.shape}")
    scale: AnyArray | None
    if dtype == "int8":
        abs_max = np.abs(matrix).max(axis=1)
        # A zero row quantizes to zero codes; scale 1.0 keeps the
        # dequantization well-defined (0 * 1.0 == 0, delta == 0).
        safe = np.where(abs_max > 0.0, abs_max, 1.0)
        scale64 = safe / 127.0
        scale = scale64.astype(np.float32)
        codes = np.rint(matrix / scale64[:, None])
        np.clip(codes, -127.0, 127.0, out=codes)
        storage = codes.astype(np.int8)
    else:
        scale = None
        storage = matrix.astype(np.float16)
    effective = _effective_values(storage, scale)
    delta = np.abs(effective - matrix).max(axis=1) * _MEASURE_SLACK
    row_abs_max = np.abs(effective).max(axis=1) * _MEASURE_SLACK
    return QuantizedMatrix(
        storage=storage,
        scale=scale,
        delta=np.asarray(delta, dtype=np.float64),
        row_abs_max=np.asarray(row_abs_max, dtype=np.float64),
    )


def staged_select_gemm(
    qmatrix: QuantizedMatrix,
    weights32: AnyArray,
    scores: AnyArray,
    stage: AnyArray,
    stage_columns: int = STAGE_COLUMNS,
) -> None:
    """Approximate selection scores ``weights32 @ qmatrix`` into ``scores``.

    Dequantizes ``stage_columns`` columns at a time into the caller's
    reused float32 ``stage`` buffer and multiplies each block with one
    float32 GEMM — the float32 image of the full matrix never exists at
    once, which is what keeps a million-item catalogue's resident set
    small. ``scores`` must be a float32 ``(rows, V)`` buffer; ``stage``
    a float32 buffer of at least ``(K, min(V, stage_columns))``.
    """
    num_items = qmatrix.storage.shape[1]
    for start in range(0, num_items, stage_columns):
        columns = slice(start, min(start + stage_columns, num_items))
        block = qmatrix.dequantize_block(columns, stage)
        np.matmul(weights32, block, out=scores[:, columns])


def selection_margins(
    abs_weights: FloatArray,
    qmatrix: QuantizedMatrix,
    context_weight: FloatArray | None = None,
    context_delta: float = 0.0,
    context_abs_max: float = 0.0,
) -> FloatArray:
    """Per-row error bound ``ε_r`` of the staged quantized selection.

    For row ``r`` with non-negative weight magnitudes ``|w_r|`` (and an
    optional per-interval context vector added with weight ``c_r``, as
    the TCAM split path does), every item ``v`` satisfies
    ``|approx_r(v) − exact_r(v)| ≤ ε_r`` with::

        ε_r = Σ_z |w_rz| δ_z  +  c_r δ_ctx            (representation)
            + γ_{K+8} · (Σ_z |w_rz| m_z + c_r m_ctx)   (accumulation)

    where ``δ`` are the measured effective-value deviations, ``m`` the
    effective absolute row maxima and ``γ`` the float32 dot-product
    bound of :func:`accumulation_gamma`. The ``+8`` headroom covers the
    float32 rounding of the staged weights, the context addition, and
    the (hundreds of times smaller) float64 rounding of the exact
    rescore reference itself; the result is further inflated by a
    relative slack so that computing the bound in float64 cannot
    underestimate it. Returns one float64 margin per row.
    """
    terms = int(qmatrix.storage.shape[0]) + 8
    gamma = accumulation_gamma(terms)
    representation = abs_weights @ qmatrix.delta
    magnitude = abs_weights @ qmatrix.row_abs_max
    if context_weight is not None:
        representation = representation + context_weight * context_delta
        magnitude = magnitude + context_weight * context_abs_max
    margins: FloatArray = (representation + gamma * magnitude) * _MEASURE_SLACK
    return margins
