"""Threshold-Algorithm top-k retrieval (Section 4.2, Algorithm 1).

The ranking score ``S(u,t,v) = Σ_z ϑ_q[z]·ϕ[z,v]`` is a monotone
aggregation over per-topic item weights, so Fagin's Threshold Algorithm
applies: pre-sort each topic's items by weight, walk the lists from the
top, and stop as soon as the k-th best score found exceeds the largest
score any unexamined item could still reach (Equation 23).

Two engines are provided:

* :func:`ta_topk` — the paper's Algorithm 1: a priority queue over lists
  keyed by the *full ranking score of each list's front item*, popping
  from the most promising list first.
* :func:`classic_ta_topk` — textbook round-robin TA (Fagin, Lotem &
  Naor), for the ablation comparing access strategies.
* :func:`batched_ta_topk` — the production engine: identical threshold
  semantics, but sorted access proceeds in vectorised blocks so the
  per-item cost is a numpy kernel rather than interpreted Python. Still
  exact; examines at most one extra block per termination check.

Both return exactly the brute-force top-k scores; the accompanying
:class:`~repro.recommend.ranking.TopKResult` reports how much of the
catalogue was actually scored.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..typing import FloatArray, IntArray
from .ranking import QuerySpace, Recommendation, TopKResult


class _QueryScratch:
    """Reusable per-query working buffers for one ``SortedTopicLists``.

    The TA engines used to allocate list cursors, membership sets and
    seen-arrays on every call; for repeated single-query serving those
    allocations dominate small-``k`` latency. Each engine now borrows
    these buffers and resets only what it uses at entry (an ``O(V+K)``
    fill, far cheaper than fresh allocation). Consequently queries
    against one ``SortedTopicLists`` are **not re-entrant** and not
    thread-safe — use one index (or an explicit copy) per thread.
    """

    def __init__(self, num_topics: int, num_items: int) -> None:
        self.positions = np.zeros(num_topics, dtype=np.int64)
        self.front_values = np.empty(num_topics, dtype=np.float64)
        self.exhausted = np.zeros(num_topics, dtype=bool)
        self.in_result = np.zeros(num_items, dtype=bool)
        self.excluded = np.zeros(num_items, dtype=bool)
        self.seen = np.zeros(num_items, dtype=bool)


@dataclass
class SortedTopicLists:
    """Pre-computed per-topic sorted item lists (the offline step).

    ``order[z]`` holds item ids sorted by descending topic weight
    ``ϕ[z, v]``; ``values[z]`` holds the weights in the same order. Built
    once per topic–item matrix and shared across all queries.

    ``item_topic`` stores the transposed ``(V, K)`` matrix contiguously,
    so the random-access full-score computation of one item is a single
    cache-friendly row dot product instead of a strided column gather.
    """

    order: IntArray  # (K, V) item ids, descending weight
    values: FloatArray  # (K, V) weights, descending
    item_topic: FloatArray  # (V, K) contiguous transpose for random access
    _scratch: "_QueryScratch | None" = field(default=None, repr=False, compare=False)

    @classmethod
    def build(cls, item_matrix: FloatArray) -> "SortedTopicLists":
        """Sort every topic's items by weight (ties to smaller item id).

        One stable argsort of the negated matrix over axis 1: stability
        makes equal weights keep their original (ascending item-id)
        order, exactly like the per-topic ``lexsort((ids, -row))`` it
        replaces — but as a single vectorised kernel over all topics.
        """
        order = np.argsort(-item_matrix, axis=1, kind="stable").astype(
            np.int64, copy=False
        )
        values = np.take_along_axis(item_matrix, order, axis=1)
        item_topic = np.ascontiguousarray(item_matrix.T)
        return cls(order=order, values=values, item_topic=item_topic)

    @property
    def num_topics(self) -> int:
        """Number of topics ``K``."""
        return self.order.shape[0]

    @property
    def num_items(self) -> int:
        """Number of items ``V``."""
        return self.order.shape[1]

    def scratch(self) -> _QueryScratch:
        """The lazily created, reused per-query scratch buffers."""
        if self._scratch is None:
            self._scratch = _QueryScratch(self.num_topics, self.num_items)
        return self._scratch


class _ResultHeap:
    """Bounded min-heap of the best k (score, item) pairs seen so far.

    Orders by ``(score, -item)`` so ties resolve toward smaller item ids,
    matching the deterministic brute-force ranking. Membership is tracked
    in a caller-provided ``(V,)`` boolean array (pre-cleared by the
    caller) so repeated queries reuse one buffer instead of building a
    fresh set per call.
    """

    def __init__(self, k: int, members: IntArray) -> None:
        self.k = k
        self._heap: list[tuple[float, int]] = []  # (score, -item)
        self._members = members

    def __contains__(self, item: int) -> bool:
        return bool(self._members[item])

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def kth_score(self) -> float:
        """Score of the current worst member (−inf while not full)."""
        if len(self._heap) < self.k:
            return -np.inf
        return self._heap[0][0]

    def offer(self, item: int, score: float) -> None:
        """Insert ``item`` if it beats the current worst member."""
        if self._members[item]:
            return
        entry = (score, -item)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
            self._members[item] = True
        elif entry > self._heap[0]:
            evicted = heapq.heappushpop(self._heap, entry)
            self._members[-evicted[1]] = False
            self._members[item] = True

    def ranked(self) -> list[Recommendation]:
        """Members best-first."""
        ordered = sorted(self._heap, key=lambda e: (-e[0], -e[1]))
        return [Recommendation(item=-neg_item, score=score) for score, neg_item in ordered]


def _prepare(query: QuerySpace, lists: SortedTopicLists, k: int) -> None:
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if lists.num_topics != query.num_topics:
        raise ValueError(
            f"lists were built for {lists.num_topics} topics, query has "
            f"{query.num_topics}"
        )


def ta_topk(
    query: QuerySpace,
    lists: SortedTopicLists,
    k: int,
    exclude: IntArray | None = None,
) -> TopKResult:
    """The paper's Algorithm 1: priority-queue-driven Threshold Algorithm.

    Maintains a max-priority queue over the K sorted lists keyed by the
    full ranking score of each list's front item; repeatedly consumes the
    most promising front item, and stops when the k-th best found score
    strictly exceeds the threshold ``S_Ta = Σ_z ϑ_q[z]·max_{v∈L_z} ϕ[z,v]``
    (Equation 23) — the best score any unexamined item could achieve.
    """
    _prepare(query, lists, k)
    scratch = lists.scratch()
    excluded = scratch.excluded
    excluded.fill(False)
    if exclude is not None and len(exclude):
        excluded[np.asarray(exclude, dtype=np.int64)] = True
    weights = query.weights
    item_topic = lists.item_topic  # (V, K): contiguous random access
    num_topics, num_items = lists.num_topics, lists.num_items

    positions = scratch.positions  # cursor per list
    positions.fill(0)
    front_values = scratch.front_values
    np.copyto(front_values, lists.values[:, 0])
    score_cache: dict[int, float] = {}
    sorted_accesses = 0

    def full_score(item: int) -> float:
        cached = score_cache.get(item)
        if cached is None:
            cached = float(item_topic[item] @ weights)
            score_cache[item] = cached
        return cached

    # Priority queue of (negated front-item score, list id); lines 2–6.
    pq: list[tuple[float, int]] = []
    for z in range(num_topics):
        item = int(lists.order[z, 0])
        heapq.heappush(pq, (-full_score(item), z))
    threshold = float(weights @ front_values)  # Equation 23, line 7

    scratch.in_result.fill(False)
    result = _ResultHeap(k, scratch.in_result)
    while pq:
        _neg_score, z = heapq.heappop(pq)  # lines 9–10
        item = int(lists.order[z, positions[z]])  # lines 11–12
        positions[z] += 1
        sorted_accesses += 1

        if item not in result and not excluded[item]:  # line 13
            if len(result) < k:  # lines 14–16
                result.offer(item, full_score(item))
            else:
                if result.kth_score > threshold:  # lines 18–21: terminate
                    break
                result.offer(item, full_score(item))  # lines 22–25

        if positions[z] < num_items:  # lines 28–33
            next_item = int(lists.order[z, positions[z]])
            heapq.heappush(pq, (-full_score(next_item), z))
            front_values[z] = lists.values[z, positions[z]]
            threshold = float(weights @ front_values)
        else:  # lines 34–36
            break

    return TopKResult(
        recommendations=result.ranked(),
        items_scored=len(score_cache),
        sorted_accesses=sorted_accesses,
    )


def batched_ta_topk(
    query: QuerySpace,
    lists: SortedTopicLists,
    k: int,
    exclude: IntArray | None = None,
    block: int = 256,
) -> TopKResult:
    """Block-vectorised Threshold Algorithm (exact, production engine).

    Keeps Algorithm 1's access strategy — always read from the list whose
    remaining items can contribute the most — but consumes ``block``
    items of that list per step with one vectorised score computation.
    The threshold check runs between blocks, so at most one block of
    extra sorted accesses is performed compared to the item-at-a-time
    engine; the returned top-k is exactly the brute-force top-k.
    """
    _prepare(query, lists, k)
    scratch = lists.scratch()
    weights = query.weights
    item_topic = lists.item_topic
    num_topics, num_items = lists.num_topics, lists.num_items

    seen = scratch.seen
    seen.fill(False)
    if exclude is not None and len(exclude):
        seen[np.asarray(exclude, dtype=np.int64)] = True

    positions = scratch.positions
    positions.fill(0)
    front_values = scratch.front_values
    np.copyto(front_values, lists.values[:, 0])
    exhausted = scratch.exhausted
    exhausted.fill(False)

    # Running top-k candidate pool: item ids and their exact scores.
    pool_items = np.empty(0, dtype=np.int64)
    pool_scores = np.empty(0, dtype=np.float64)
    items_scored = 0
    sorted_accesses = 0

    while not exhausted.all():
        contributions = np.where(exhausted, -np.inf, weights * front_values)
        z = int(np.argmax(contributions))
        start = positions[z]
        stop = min(start + block, num_items)
        ids = lists.order[z, start:stop]
        sorted_accesses += ids.size
        positions[z] = stop
        if stop >= num_items:
            exhausted[z] = True
        else:
            front_values[z] = lists.values[z, stop]

        fresh = ids[~seen[ids]]
        if fresh.size:
            seen[fresh] = True
            scores = item_topic[fresh] @ weights
            items_scored += fresh.size
            pool_items = np.concatenate([pool_items, fresh])
            pool_scores = np.concatenate([pool_scores, scores])
            if pool_items.size > 4 * max(k, block):
                keep = np.argpartition(-pool_scores, k - 1)[: max(k, 1)]
                pool_items, pool_scores = pool_items[keep], pool_scores[keep]

        if pool_items.size >= k:
            threshold = float(weights @ np.where(exhausted, 0.0, front_values))
            kth = np.partition(pool_scores, pool_scores.size - k)[
                pool_scores.size - k
            ]
            if kth > threshold:
                break

    top = rank_order_pool(pool_items, pool_scores, k)
    recommendations = [
        Recommendation(int(item), float(score)) for item, score in top
    ]
    return TopKResult(
        recommendations=recommendations,
        items_scored=items_scored,
        sorted_accesses=sorted_accesses,
    )


def rank_order_pool(
    items: IntArray, scores: FloatArray, k: int
) -> list[tuple[int, float]]:
    """Deterministic best-k of a candidate pool (ties to smaller item id)."""
    if items.size == 0:
        return []
    order = np.lexsort((items, -scores))[:k]
    return [(int(items[i]), float(scores[i])) for i in order]


def classic_ta_topk(
    query: QuerySpace,
    lists: SortedTopicLists,
    k: int,
    exclude: IntArray | None = None,
) -> TopKResult:
    """Textbook Threshold Algorithm: round-robin sorted access.

    One depth step visits the next item of *every* list; the threshold is
    the weighted sum of the values at the current depth. Used by the TA
    ablation to quantify what the paper's best-list-first strategy buys.
    """
    _prepare(query, lists, k)
    scratch = lists.scratch()
    excluded = scratch.excluded
    excluded.fill(False)
    if exclude is not None and len(exclude):
        excluded[np.asarray(exclude, dtype=np.int64)] = True
    num_excluded = int(excluded.sum())
    weights = query.weights
    item_topic = lists.item_topic
    num_items = lists.num_items

    score_cache: dict[int, float] = {}
    scratch.in_result.fill(False)
    result = _ResultHeap(k, scratch.in_result)
    sorted_accesses = 0

    for depth in range(num_items):
        for z in range(lists.num_topics):
            item = int(lists.order[z, depth])
            sorted_accesses += 1
            if item in score_cache or excluded[item]:
                continue
            score = float(item_topic[item] @ weights)
            score_cache[item] = score
            result.offer(item, score)
        threshold = float(weights @ lists.values[:, depth])
        if len(result) >= min(k, num_items - num_excluded) and result.kth_score >= threshold:
            break

    return TopKResult(
        recommendations=result.ranked(),
        items_scored=len(score_cache),
        sorted_accesses=sorted_accesses,
    )
