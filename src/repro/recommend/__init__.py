"""Temporal top-k recommendation: query expansion, brute-force scan,
Threshold-Algorithm retrieval (Section 4 of the paper) and the batch
serving engine with bounded LRU caches."""

from .bruteforce import bruteforce_topk
from .ranking import QuerySpace, Recommendation, TopKResult, rank_order
from .recommender import ServingStatus, TemporalRecommender
from .serving import BatchScorer, CacheStats, LRUCache, ServingCache
from .threshold import SortedTopicLists, batched_ta_topk, classic_ta_topk, ta_topk

__all__ = [
    "bruteforce_topk",
    "QuerySpace",
    "Recommendation",
    "TopKResult",
    "rank_order",
    "ServingStatus",
    "TemporalRecommender",
    "BatchScorer",
    "CacheStats",
    "LRUCache",
    "ServingCache",
    "SortedTopicLists",
    "batched_ta_topk",
    "classic_ta_topk",
    "ta_topk",
]
