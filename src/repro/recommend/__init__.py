"""Temporal top-k recommendation: query expansion, brute-force scan,
Threshold-Algorithm retrieval (Section 4 of the paper) and the batch
serving engine with bounded LRU caches, quantized candidate selection
and memory-mapped parameter stores for million-item catalogues."""

from .bruteforce import bruteforce_topk
from .paramstore import ParamStore, write_store
from .quantize import QuantizedMatrix, quantize_matrix, selection_margins
from .ranking import QuerySpace, Recommendation, TopKResult, rank_order
from .recommender import ServingStatus, TemporalRecommender
from .serving import (
    BatchScorer,
    CacheStats,
    LRUCache,
    ServingCache,
    ServingConfig,
)
from .threshold import SortedTopicLists, batched_ta_topk, classic_ta_topk, ta_topk

__all__ = [
    "bruteforce_topk",
    "ParamStore",
    "write_store",
    "QuantizedMatrix",
    "quantize_matrix",
    "selection_margins",
    "QuerySpace",
    "Recommendation",
    "TopKResult",
    "rank_order",
    "ServingStatus",
    "TemporalRecommender",
    "BatchScorer",
    "CacheStats",
    "LRUCache",
    "ServingCache",
    "ServingConfig",
    "SortedTopicLists",
    "batched_ta_topk",
    "classic_ta_topk",
    "ta_topk",
]
