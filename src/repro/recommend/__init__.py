"""Temporal top-k recommendation: query expansion, brute-force scan and
Threshold-Algorithm retrieval (Section 4 of the paper)."""

from .bruteforce import bruteforce_topk
from .ranking import QuerySpace, Recommendation, TopKResult, rank_order
from .recommender import ServingStatus, TemporalRecommender
from .threshold import SortedTopicLists, batched_ta_topk, classic_ta_topk, ta_topk

__all__ = [
    "bruteforce_topk",
    "QuerySpace",
    "Recommendation",
    "TopKResult",
    "rank_order",
    "ServingStatus",
    "TemporalRecommender",
    "SortedTopicLists",
    "batched_ta_topk",
    "classic_ta_topk",
    "ta_topk",
]
