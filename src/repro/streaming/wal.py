"""Durable append-only write-ahead log of rating events.

The batch pipeline materialises a full :class:`~repro.data.cuboid.RatingCuboid`
before fitting; the streaming pipeline instead makes every incoming
rating *durable first* and folds it into the model afterwards. The
:class:`EventLog` is that durability layer:

* **Segments** — the log is a directory of numbered segment files
  (``wal-00000000.log``, …), each opened with an 8-byte magic header and
  rotated after ``segment_events`` records, so replay and retention work
  on bounded files.
* **Records** — each event is a fixed-size payload (``user``,
  ``interval``, ``item`` as little-endian int64, ``score`` as float64)
  framed by a length prefix and a CRC-32 of the payload. A reader can
  always tell "complete record" from "torn tail".
* **Durability** — every :meth:`EventLog.append` writes through
  :func:`~repro.robustness.faults.faulty_write` (so the fault harness
  can tear it), flushes and ``fsync``\\ s before returning. An append
  either lands completely or — if the process dies mid-call — leaves a
  torn tail that recovery removes; the *previously* appended events are
  never harmed.
* **Recovery** — :class:`EventLog` scans its segments on open,
  validating every record. A torn or corrupt tail on the *last* segment
  is truncated (with a :class:`UserWarning`); damage anywhere earlier
  raises :class:`~repro.robustness.errors.EventLogCorruptError`, because
  then the durable history itself cannot be trusted.

Replay is bit-deterministic: a log recovered after any crash yields
exactly the prefix of events whose appends were acknowledged, in append
order, with identical bytes — which is what lets the
:class:`~repro.streaming.ingestor.StreamIngestor` rebuild bit-identical
model state from any checkpointed offset.
"""

from __future__ import annotations

import os
import struct
import warnings
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Iterator

from ..robustness.errors import EventLogCorruptError
from ..typing import bit_deterministic
from ..robustness.faults import faulty_write

_MAGIC = b"TCAMWAL1"
#: Record frame: payload length (u32), CRC-32 of the payload (u32).
_FRAME = struct.Struct("<II")
#: Event payload: user, interval, item (i64 each) and score (f64).
_EVENT = struct.Struct("<qqqd")

_SEGMENT_GLOB = "wal-*.log"


@dataclass(frozen=True, slots=True)
class StreamEvent:
    """One rating behavior in the dense id space of a fitted model.

    Unlike :class:`~repro.data.events.Rating` (labelled, offline), a
    stream event carries *dense* integer ids so it can be folded into a
    fitted model without consulting an indexer. Ids may exceed the
    current model dimensions — that is exactly how new users, items and
    intervals announce themselves to the ingestor.
    """

    user: int
    interval: int
    item: int
    score: float = 1.0

    def __post_init__(self) -> None:
        if self.user < 0 or self.interval < 0 or self.item < 0:
            raise ValueError(
                f"event ids must be non-negative, got "
                f"({self.user}, {self.interval}, {self.item})"
            )
        if not self.score > 0:
            raise ValueError(f"score must be positive, got {self.score}")

    def pack(self) -> bytes:
        """Encode this event as one framed, checksummed WAL record."""
        payload = _EVENT.pack(self.user, self.interval, self.item, self.score)
        return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload

    @classmethod
    def unpack(cls, payload: bytes) -> "StreamEvent":
        """Decode one record payload produced by :meth:`pack`."""
        user, interval, item, score = _EVENT.unpack(payload)
        return cls(user=user, interval=interval, item=item, score=score)


@dataclass
class _Segment:
    """One on-disk log segment: its sequence number and record count."""

    seq: int
    path: Path
    events: int


def _segment_name(seq: int) -> str:
    return f"wal-{seq:08d}.log"


def _scan_segment(path: Path) -> tuple[int, int]:
    """Validate one segment; return ``(valid_records, valid_bytes)``.

    ``valid_bytes`` is the offset of the first byte that is not part of
    a complete, checksum-clean record — the truncation point for a torn
    tail. A file too short for even the magic header counts as zero
    records with ``valid_bytes`` of zero (recovery rewrites it).
    """
    data = path.read_bytes()
    if len(data) < len(_MAGIC) or data[: len(_MAGIC)] != _MAGIC:
        return 0, 0
    pos = len(_MAGIC)
    records = 0
    while True:
        if pos + _FRAME.size > len(data):
            break
        length, crc = _FRAME.unpack_from(data, pos)
        payload_start = pos + _FRAME.size
        if length != _EVENT.size or payload_start + length > len(data):
            break
        payload = data[payload_start : payload_start + length]
        if zlib.crc32(payload) != crc:
            break
        records += 1
        pos = payload_start + length
    return records, pos


class EventLog:
    """Append-only, crash-recoverable log of :class:`StreamEvent` records.

    Parameters
    ----------
    directory:
        Home of the segment files; created if missing. Opening a
        directory with existing segments runs recovery (see the module
        docstring for the torn-tail contract).
    segment_events:
        Records per segment before rotation.
    sync:
        ``"always"`` (default) fsyncs on every append — an acknowledged
        append survives an immediate power cut; ``"rotate"`` fsyncs only
        on segment rotation and close, trading the tail's durability for
        append throughput.

    A single :class:`EventLog` instance is a **single-writer** object:
    appends must come from one thread/process. Readers
    (:meth:`read`, :meth:`__iter__`) are safe against a concurrent
    writer only up to the last acknowledged append, which is all the
    ingestor ever consumes.
    """

    _SYNC_MODES = ("always", "rotate")

    def __init__(
        self,
        directory: str | Path,
        segment_events: int = 4096,
        sync: str = "always",
    ) -> None:
        if segment_events <= 0:
            raise ValueError(f"segment_events must be positive, got {segment_events}")
        if sync not in self._SYNC_MODES:
            raise ValueError(f"sync must be one of {self._SYNC_MODES}, got {sync!r}")
        self.directory = Path(directory)
        self.segment_events = segment_events
        self.sync = sync
        self.directory.mkdir(parents=True, exist_ok=True)
        self._segments: list[_Segment] = []
        self._handle: IO[bytes] | None = None
        self._recover()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def _recover(self) -> None:
        """Scan segments, truncate a torn live tail, build the offset map."""
        paths = sorted(self.directory.glob(_SEGMENT_GLOB))
        segments: list[_Segment] = []
        for index, path in enumerate(paths):
            try:
                seq = int(path.stem.split("-")[1])
            except (IndexError, ValueError) as exc:
                raise EventLogCorruptError(
                    f"unrecognised segment file name {path.name!r}"
                ) from exc
            records, valid_bytes = _scan_segment(path)
            size = path.stat().st_size
            if valid_bytes != size:
                if index != len(paths) - 1:
                    raise EventLogCorruptError(
                        f"segment {path.name} is damaged mid-log "
                        f"({size - valid_bytes} trailing bytes fail validation "
                        "and it is not the live tail)"
                    )
                warnings.warn(
                    f"event log recovery truncated a torn tail: {path.name} "
                    f"kept {records} records ({valid_bytes} of {size} bytes)",
                    UserWarning,
                    stacklevel=3,
                )
                keep = valid_bytes if valid_bytes >= len(_MAGIC) else 0
                with path.open("rb+") as handle:
                    handle.truncate(keep)
                    handle.flush()
                    os.fsync(handle.fileno())
                if keep == 0:
                    # The crash tore even the header; rewrite it so the
                    # segment is appendable again.
                    self._write_header(path)
            segments.append(_Segment(seq=seq, path=path, events=records))
        self._segments = segments

    def _write_header(self, path: Path) -> None:
        """(Re)initialise a segment file with the magic header."""
        with path.open("wb") as handle:
            handle.write(_MAGIC)
            handle.flush()
            os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    @property
    def next_offset(self) -> int:
        """Offset one past the last durable event (== total event count)."""
        return sum(segment.events for segment in self._segments)

    def __len__(self) -> int:
        return self.next_offset

    def _open_tail(self) -> tuple[_Segment, IO[bytes]]:
        """The segment and handle the next append goes to."""
        if self._segments and self._segments[-1].events < self.segment_events:
            tail = self._segments[-1]
        else:
            seq = self._segments[-1].seq + 1 if self._segments else 0
            path = self.directory / _segment_name(seq)
            self._write_header(path)
            tail = _Segment(seq=seq, path=path, events=0)
            self._segments.append(tail)
        if self._handle is None or self._handle.name != str(tail.path):
            self._close_handle()
            self._handle = tail.path.open("ab")
        return tail, self._handle

    def _close_handle(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def append(self, events: "Iterable[StreamEvent] | StreamEvent") -> int:
        """Durably append events; returns the offset after the append.

        The append is **atomic at the batch level**: either every event
        becomes durable, or — on a write error such as a full disk — the
        segment is rolled back to its pre-append size and the error
        propagates, leaving the log exactly as before the call. A crash
        mid-append (torn write) leaves a tail that the next open
        truncates, so an unacknowledged append simply never happened.
        """
        if isinstance(events, StreamEvent):
            events = [events]
        batch = list(events)
        if not batch:
            return self.next_offset
        undo = {
            segment.seq: (segment.events, segment.path.stat().st_size)
            for segment in self._segments[-1:]
        }
        known = {segment.seq for segment in self._segments}
        try:
            for event in batch:
                tail, handle = self._open_tail()
                record = memoryview(event.pack())
                while record:
                    written = faulty_write(
                        "wal.write", handle, record, segment=tail.seq
                    )
                    record = record[written:]
                tail.events += 1
                if tail.events >= self.segment_events:
                    handle.flush()
                    os.fsync(handle.fileno())
        except OSError:
            # Roll the whole batch back — append is all-or-nothing. The
            # tail segment is truncated to its pre-append size and any
            # segment the batch created is deleted, so the log is byte
            # identical to the last acknowledged state.
            self._close_handle()
            self._rollback_batch(undo, known)
            raise
        handle = self._handle
        if handle is not None:
            handle.flush()
            if self.sync == "always":
                os.fsync(handle.fileno())
        return self.next_offset

    def _rollback_batch(
        self, undo: dict[int, tuple[int, int]], known: set[int]
    ) -> None:
        """Restore every segment touched by a failed append.

        ``undo`` maps the pre-append tail segment to its (record count,
        byte size); ``known`` holds the sequence numbers that existed
        before the append. Events appended by *earlier*, acknowledged
        calls all sit before those marks and survive untouched.
        """
        restored: list[_Segment] = []
        for segment in self._segments:
            if segment.seq in undo:
                events, size = undo[segment.seq]
                with segment.path.open("rb+") as handle:
                    handle.truncate(size)
                    handle.flush()
                    os.fsync(handle.fileno())
                segment.events = events
                restored.append(segment)
            elif segment.seq in known:
                restored.append(segment)
            else:
                segment.path.unlink(missing_ok=True)
        self._segments = restored

    def close(self) -> None:
        """Flush, fsync and release the write handle."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._close_handle()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def _iter_segment(self, segment: _Segment) -> Iterator[StreamEvent]:
        """Yield the valid records of one segment, in order."""
        data = segment.path.read_bytes()
        pos = len(_MAGIC)
        for _ in range(segment.events):
            length, crc = _FRAME.unpack_from(data, pos)
            payload = data[pos + _FRAME.size : pos + _FRAME.size + length]
            if zlib.crc32(payload) != crc:  # pragma: no cover - recovery missed it
                raise EventLogCorruptError(
                    f"segment {segment.path.name} record failed its checksum"
                )
            yield StreamEvent.unpack(payload)
            pos += _FRAME.size + length

    @bit_deterministic
    def read(self, start: int = 0, count: int | None = None) -> list[StreamEvent]:
        """Events ``[start, start + count)`` in append order.

        ``count=None`` reads to the durable end. Reading past the end
        returns what exists; a negative or out-of-range ``start`` raises.
        """
        end = self.next_offset
        if not 0 <= start <= end:
            raise ValueError(f"start must be in [0, {end}], got {start}")
        remaining = end - start if count is None else max(0, min(count, end - start))
        out: list[StreamEvent] = []
        skip = start
        for segment in self._segments:
            if remaining == 0:
                break
            if skip >= segment.events:
                skip -= segment.events
                continue
            for index, event in enumerate(self._iter_segment(segment)):
                if index < skip:
                    continue
                out.append(event)
                remaining -= 1
                if remaining == 0:
                    break
            skip = 0
        return out

    def __iter__(self) -> Iterator[StreamEvent]:
        for segment in self._segments:
            yield from self._iter_segment(segment)

    @property
    def segment_paths(self) -> list[Path]:
        """Paths of the current segment files, oldest first."""
        return [segment.path for segment in self._segments]
