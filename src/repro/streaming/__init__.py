"""Crash-safe streaming ingestion: durable log, fold-in, hot swap.

The batch pipeline (cuboid → EM fit → snapshot) assumes the data holds
still; this package is the online counterpart, moving one rating event
at a time from the network edge into the serving path without ever
losing or double-counting it:

* :class:`EventLog` / :class:`StreamEvent` — an append-only,
  checksummed write-ahead log; events are durable (fsync) before they
  are acknowledged, and recovery after any crash truncates at most an
  unacknowledged torn tail.
* :class:`StreamIngestor` / :class:`IngestReport` — consumes the log in
  micro-batches, folds new users/intervals into a fitted TTCAM with
  partial EM, tracks per-interval temporal drift
  (:class:`DriftTracker`) and escalates cosine-threshold boundaries to
  checkpointed partial refits. Its checkpoints carry the consumer
  offset, so kill-anywhere resume replays to bit-identical parameters.
* :class:`SnapshotPublisher` / :class:`PublishResult` — health-gates
  folded snapshots and hot-swaps them into a
  :class:`~repro.recommend.recommender.TemporalRecommender` under its
  read-copy-update generation scheme: zero dropped queries, zero torn
  batches, rollback on corrupt or unhealthy candidates.

See ``docs/robustness.md`` (Streaming section) for the on-disk WAL
format and the end-to-end crash-safety argument.
"""

from .drift import DriftTracker, DriftUpdate, unit_norm
from .ingestor import IngestReport, StreamIngestor
from .publisher import GenerationFile, PublishResult, SnapshotPublisher
from .wal import EventLog, StreamEvent

__all__ = [
    "DriftTracker",
    "DriftUpdate",
    "unit_norm",
    "IngestReport",
    "StreamIngestor",
    "GenerationFile",
    "PublishResult",
    "SnapshotPublisher",
    "EventLog",
    "StreamEvent",
]
