"""Incremental fold-in of durable stream events into a fitted TTCAM.

The :class:`StreamIngestor` is the consumer side of the streaming
pipeline: it reads acknowledged events from an :class:`~repro.streaming.wal.EventLog`
in fixed-size micro-batches and folds them into a fitted model without a
full refit, using the partial-EM estimators of
:class:`~repro.extensions.online.OnlineTTCAM`:

* **New intervals** get uniform-prior context rows appended to
  ``θ′`` before anything else, so every event in the batch is in range.
* **New users** are admitted in ascending id order — ids that actually
  appear in the batch are folded in from their own events, gap ids in
  between get the cold-start prior directly.
* **Per-interval context updates**: each interval's events produce a
  fresh context estimate; a :class:`~repro.streaming.drift.DriftTracker`
  compares it (unit-norm cosine) with the interval's tracked vector.
  Within the threshold, the published context takes a small *blend* step
  toward the estimate; below it — a temporal boundary — the ingestor
  escalates to a **partial refit** (a longer fold of that interval,
  re-anchoring its context outright) and checkpoints immediately.

Every micro-batch application is a pure function of ``(model state,
events)``: no clocks, no randomness, fixed iteration order. Combined
with the durable consumer ``offset`` stored inside each checkpoint,
killing the ingestor at *any* point and resuming from the latest
checkpoint replays the exact same micro-batches and reproduces
bit-identical parameters — no event is ever double-applied or dropped.
Items beyond the fitted catalogue cannot be folded (φ has no column for
them); such events are counted, warned about once per batch and skipped
deterministically.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

import numpy as np

from ..core.params import TTCAMParameters
from ..extensions.online import OnlineTTCAM
from ..robustness.checkpoint import CheckpointManager
from ..typing import bit_deterministic
from ..robustness.errors import CheckpointError
from ..robustness.faults import fault_point
from .drift import DriftTracker
from .wal import EventLog, StreamEvent

#: Checkpoint keys for the drift tracker's state arrays.
_DRIFT_VECTORS = "drift_vectors"
_DRIFT_VALID = "drift_valid"


@dataclass(frozen=True, slots=True)
class IngestReport:
    """Outcome of one :meth:`StreamIngestor.run` call.

    Attributes
    ----------
    batches:
        Micro-batches applied by this call.
    applied:
        Events folded into the model by this call.
    skipped:
        Events dropped because their item id is outside the fitted
        catalogue.
    boundaries:
        Drift boundaries detected (each escalated to a partial refit).
    checkpoints:
        Durable checkpoints written.
    offset:
        The consumer offset after this call (next event to consume).
    """

    batches: int
    applied: int
    skipped: int
    boundaries: int
    checkpoints: int
    offset: int


class StreamIngestor:
    """Folds event-log micro-batches into a fitted TTCAM, crash-safely.

    Parameters
    ----------
    log:
        The durable event log to consume.
    base:
        Fitted :class:`~repro.core.params.TTCAMParameters` to start from.
    checkpoint_dir:
        Directory for consumer checkpoints (parameters + drift state +
        offset). Sharing it across restarts is what makes resume work.
    batch_events:
        Events per micro-batch (the sliding consumption interval).
    fold_iterations:
        Partial-EM iterations per fold-in.
    refit_iterations:
        Iterations for the escalated partial refit at a drift boundary.
    drift_rate, drift_threshold:
        :class:`~repro.streaming.drift.DriftTracker` parameters.
    blend:
        Step size of a non-boundary context update; the published row
        becomes ``(1-blend)·old + blend·estimate`` (both are
        distributions, so the blend stays on the simplex).
    checkpoint_every:
        Checkpoint cadence in micro-batches (boundaries checkpoint
        immediately regardless).
    resume:
        When true (default), restore the newest valid checkpoint in
        ``checkpoint_dir`` — parameters, drift state and offset — and
        continue from there. A checkpoint written under a different
        configuration raises
        :class:`~repro.robustness.errors.CheckpointError`.
    """

    def __init__(
        self,
        log: EventLog,
        base: TTCAMParameters,
        checkpoint_dir: str | Path,
        batch_events: int = 256,
        fold_iterations: int = 10,
        refit_iterations: int = 30,
        drift_rate: float = 0.2,
        drift_threshold: float = 0.85,
        blend: float = 0.3,
        checkpoint_every: int = 4,
        resume: bool = True,
    ) -> None:
        if batch_events <= 0:
            raise ValueError(f"batch_events must be positive, got {batch_events}")
        if refit_iterations <= 0:
            raise ValueError(
                f"refit_iterations must be positive, got {refit_iterations}"
            )
        if not 0.0 < blend <= 1.0:
            raise ValueError(f"blend must be in (0, 1], got {blend}")
        self.log = log
        self.batch_events = batch_events
        self.fold_iterations = fold_iterations
        self.refit_iterations = refit_iterations
        self.blend = blend
        self.online = OnlineTTCAM(base, fold_iterations=fold_iterations)
        self.tracker = DriftTracker(
            dim=base.num_time_topics,
            drift_rate=drift_rate,
            threshold=drift_threshold,
        )
        self.tracker.ensure_intervals(base.num_intervals)
        self.offset = 0
        self.batches = 0
        self.applied = 0
        self.skipped = 0
        self.boundaries = 0
        self.refits = 0
        self.manager = CheckpointManager(
            checkpoint_dir, every=checkpoint_every, keep=3, prefix="stream"
        )
        if resume:
            self._try_resume()

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    @property
    def params(self) -> TTCAMParameters:
        """The current folded parameters (a fresh container per batch)."""
        return self.online.params

    def _config(self) -> dict[str, object]:
        """The knobs a checkpoint must match to be resumable."""
        return {
            "kind": "stream-ingestor",
            "k1": self.params.num_user_topics,
            "k2": self.params.num_time_topics,
            "num_items": self.params.num_items,
            "batch_events": self.batch_events,
            "fold_iterations": self.fold_iterations,
            "refit_iterations": self.refit_iterations,
            "drift_rate": self.tracker.drift_rate,
            "drift_threshold": self.tracker.threshold,
            "blend": self.blend,
        }

    def checkpoint(self) -> Path:
        """Durably persist parameters, drift state and consumer offset."""
        fault_point("stream.checkpoint", offset=self.offset, batch=self.batches)
        arrays = {
            "theta": self.params.theta,
            "phi": self.params.phi,
            "theta_time": self.params.theta_time,
            "phi_time": self.params.phi_time,
            "lambda_u": self.params.lambda_u,
            _DRIFT_VECTORS: self.tracker.vectors,
            _DRIFT_VALID: self.tracker.valid,
        }
        self.manager.meta = {
            "config": self._config(),
            "offset": self.offset,
            "counters": {
                "batches": self.batches,
                "applied": self.applied,
                "skipped": self.skipped,
                "boundaries": self.boundaries,
                "refits": self.refits,
                "tracker_updates": self.tracker.updates,
                "tracker_boundaries": self.tracker.boundaries,
            },
        }
        return self.manager.save(arrays, iteration=self.batches)

    @bit_deterministic
    def _try_resume(self) -> None:
        """Restore the newest valid checkpoint, if one exists."""
        checkpoint = self.manager.latest()
        if checkpoint is None:
            return
        meta = checkpoint.meta
        stored = meta.get("config")
        if stored != self._config():
            raise CheckpointError(
                "stream checkpoint was written under a different configuration "
                f"(stored {stored!r})"
            )
        self.online.params = TTCAMParameters(
            theta=np.asarray(checkpoint.arrays["theta"], dtype=np.float64),
            phi=np.asarray(checkpoint.arrays["phi"], dtype=np.float64),
            theta_time=np.asarray(checkpoint.arrays["theta_time"], dtype=np.float64),
            phi_time=np.asarray(checkpoint.arrays["phi_time"], dtype=np.float64),
            lambda_u=np.asarray(checkpoint.arrays["lambda_u"], dtype=np.float64),
        )
        counters = meta.get("counters")
        counters = counters if isinstance(counters, Mapping) else {}
        self.tracker.restore(
            checkpoint.arrays[_DRIFT_VECTORS],
            checkpoint.arrays[_DRIFT_VALID],
            boundaries=int(counters.get("tracker_boundaries", 0)),  # type: ignore[arg-type]
            updates=int(counters.get("tracker_updates", 0)),  # type: ignore[arg-type]
        )
        self.offset = int(meta.get("offset", 0))  # type: ignore[arg-type]
        self.batches = int(counters.get("batches", 0))  # type: ignore[arg-type]
        self.applied = int(counters.get("applied", 0))  # type: ignore[arg-type]
        self.skipped = int(counters.get("skipped", 0))  # type: ignore[arg-type]
        self.boundaries = int(counters.get("boundaries", 0))  # type: ignore[arg-type]
        self.refits = int(counters.get("refits", 0))  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # micro-batch application
    # ------------------------------------------------------------------

    def _extend_intervals(self, max_interval: int) -> None:
        """Append uniform-prior context rows up to ``max_interval``."""
        params = self.params
        missing = max_interval + 1 - params.num_intervals
        if missing <= 0:
            return
        k2 = params.num_time_topics
        prior = np.full((missing, k2), 1.0 / k2)
        self.online.params = TTCAMParameters(
            theta=params.theta,
            phi=params.phi,
            theta_time=np.vstack([params.theta_time, prior]),
            phi_time=params.phi_time,
            lambda_u=params.lambda_u,
        )
        self.tracker.ensure_intervals(max_interval + 1)

    def _extend_users(self, events: list[StreamEvent]) -> None:
        """Admit every unseen user id, in ascending order.

        Ids that appear in the batch fold in from their own events; gap
        ids below the maximum get the cold-start prior row directly
        (uniform interests, ``λ=0.5``) without a warning, because their
        absence from this batch is expected, not anomalous.
        """
        params = self.params
        max_user = max(event.user for event in events)
        if max_user < params.num_users:
            return
        by_user: dict[int, list[StreamEvent]] = {}
        for event in events:
            if event.user >= params.num_users:
                by_user.setdefault(event.user, []).append(event)
        k1 = params.num_user_topics
        for user in range(params.num_users, max_user + 1):
            mine = by_user.get(user)
            if mine:
                self.online.extend_with_user(
                    np.array([event.item for event in mine], dtype=np.int64),
                    np.array([event.interval for event in mine], dtype=np.int64),
                    np.array([event.score for event in mine], dtype=np.float64),
                )
            else:
                params = self.params
                self.online.params = TTCAMParameters(
                    theta=np.vstack([params.theta, np.full((1, k1), 1.0 / k1)]),
                    phi=params.phi,
                    theta_time=params.theta_time,
                    phi_time=params.phi_time,
                    lambda_u=np.append(params.lambda_u, 0.5),
                )

    def _set_context_row(self, interval: int, row: np.ndarray) -> None:
        """Publish one interval's context via copy-on-write."""
        params = self.params
        theta_time = params.theta_time.copy()
        theta_time[interval] = row
        self.online.params = TTCAMParameters(
            theta=params.theta,
            phi=params.phi,
            theta_time=theta_time,
            phi_time=params.phi_time,
            lambda_u=params.lambda_u,
        )

    def _apply_batch(self, events: list[StreamEvent]) -> bool:
        """Fold one micro-batch into the model; True if a boundary hit.

        Deterministic application order — extend intervals, admit users
        ascending, update interval contexts ascending — so replaying the
        same events over the same state reproduces identical bits.
        """
        catalogue = self.params.num_items
        usable = [event for event in events if event.item < catalogue]
        dropped = len(events) - len(usable)
        if dropped:
            self.skipped += dropped
            warnings.warn(
                f"stream batch skipped {dropped} event(s) whose items are "
                f"outside the fitted catalogue (< {catalogue}); folding "
                "cannot invent topic–item columns — retrain to admit them",
                UserWarning,
                stacklevel=3,
            )
        if not usable:
            return False
        self._extend_intervals(max(event.interval for event in usable))
        self._extend_users(usable)

        by_interval: dict[int, list[StreamEvent]] = {}
        for event in usable:
            by_interval.setdefault(event.interval, []).append(event)
        boundary_hit = False
        for interval in sorted(by_interval):
            group = by_interval[interval]
            users = np.array([event.user for event in group], dtype=np.int64)
            items = np.array([event.item for event in group], dtype=np.int64)
            scores = np.array([event.score for event in group], dtype=np.float64)
            estimate = self.online.fold_in_interval(users, items, scores)
            verdict = self.tracker.update(interval, estimate)
            if verdict.boundary:
                # Temporal boundary: the context jumped. Re-anchor the
                # interval with a longer partial refit instead of a blend.
                boundary_hit = True
                self.boundaries += 1
                refit = OnlineTTCAM(
                    self.params, fold_iterations=self.refit_iterations
                )
                self._set_context_row(
                    interval, refit.fold_in_interval(users, items, scores)
                )
                self.refits += 1
            else:
                old = self.params.theta_time[interval]
                self._set_context_row(
                    interval, (1.0 - self.blend) * old + self.blend * estimate
                )
        self.applied += len(usable)
        return boundary_hit

    # ------------------------------------------------------------------
    # consumption loop
    # ------------------------------------------------------------------

    @bit_deterministic
    def run(self, max_batches: int | None = None) -> IngestReport:
        """Consume durable events from the current offset, in micro-batches.

        Processes complete and partial batches until the log is drained
        (or ``max_batches`` is reached), checkpointing on the configured
        cadence and immediately after any drift boundary. Returns a
        report of what this call did.
        """
        start = (self.batches, self.applied, self.skipped, self.boundaries)
        checkpoints = 0
        while max_batches is None or self.batches - start[0] < max_batches:
            events = self.log.read(self.offset, self.batch_events)
            if not events:
                break
            fault_point("stream.batch", offset=self.offset, batch=self.batches)
            boundary = self._apply_batch(events)
            self.offset += len(events)
            self.batches += 1
            if boundary or self.manager.should_save(self.batches):
                self.checkpoint()
                checkpoints += 1
        return IngestReport(
            batches=self.batches - start[0],
            applied=self.applied - start[1],
            skipped=self.skipped - start[2],
            boundaries=self.boundaries - start[3],
            checkpoints=checkpoints,
            offset=self.offset,
        )
