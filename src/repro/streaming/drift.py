"""Unit-norm drifting context vectors with cosine-threshold boundaries.

The streaming ingestor needs a *cheap* answer to "has this interval's
temporal context genuinely changed, or is it just wobbling?". Following
the drifting-vector design referenced by the roadmap (a unit-norm
vector that drifts in small steps but jumps at boundaries, with cosine
similarity reduced to a dot product by keeping everything L2-normalised),
each tracked interval carries one unit vector:

* every micro-batch produces a fresh context estimate; its unit-norm
  form is compared to the tracked vector by a single dot product;
* ``cosine >= threshold`` → **drift**: the tracked vector takes a small
  step toward the estimate and is re-normalised;
* ``cosine < threshold`` → **boundary**: the context has jumped — the
  tracked vector is replaced outright and the caller escalates (the
  ingestor runs a checkpointed partial refit of that interval).

Everything is deterministic and dtype-stable, so drift decisions replay
identically during crash recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..typing import FloatArray

#: Vectors with less mass than this are treated as absent (no signal).
_NORM_FLOOR = 1e-300


def unit_norm(vector: FloatArray) -> FloatArray:
    """L2-normalise a vector (float64); zero vectors raise.

    Keeping every tracked vector at unit length is what makes the
    boundary test a plain dot product.
    """
    values = np.asarray(vector, dtype=np.float64)
    norm = float(np.linalg.norm(values))
    if not norm > _NORM_FLOOR:
        raise ValueError("cannot unit-normalise a zero vector")
    return values / norm


@dataclass(frozen=True, slots=True)
class DriftUpdate:
    """Outcome of feeding one context estimate to the tracker.

    Attributes
    ----------
    interval:
        The interval whose vector was updated.
    cosine:
        Similarity between the tracked vector and the new estimate
        (``1.0`` for a freshly initialised interval).
    boundary:
        True when the estimate crossed the cosine threshold — the
        caller should escalate to a refit.
    """

    interval: int
    cosine: float
    boundary: bool


class DriftTracker:
    """Per-interval unit-norm drift vectors over a growing interval axis.

    Parameters
    ----------
    dim:
        Dimensionality of the context vectors (``K2`` time topics).
    drift_rate:
        Step size toward each new estimate on a non-boundary update
        (``0`` = frozen, ``1`` = always jump).
    threshold:
        Cosine below which an update counts as a boundary.

    The tracker's state is two arrays — ``vectors`` of shape ``(T, dim)``
    and a 0/1 ``valid`` mask — exposed for checkpointing and restored
    with :meth:`restore`, so drift decisions survive a crash bit-for-bit.
    """

    def __init__(self, dim: int, drift_rate: float = 0.2, threshold: float = 0.85) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if not 0.0 <= drift_rate <= 1.0:
            raise ValueError(f"drift_rate must be in [0, 1], got {drift_rate}")
        if not -1.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [-1, 1], got {threshold}")
        self.dim = dim
        self.drift_rate = drift_rate
        self.threshold = threshold
        self.vectors: FloatArray = np.zeros((0, dim), dtype=np.float64)
        self.valid: FloatArray = np.zeros(0, dtype=np.float64)
        self.boundaries = 0
        self.updates = 0

    @property
    def num_intervals(self) -> int:
        """Number of intervals currently tracked (rows of ``vectors``)."""
        return int(self.vectors.shape[0])

    def ensure_intervals(self, count: int) -> None:
        """Grow the tracked axis to at least ``count`` intervals."""
        if count <= self.num_intervals:
            return
        extra = count - self.num_intervals
        self.vectors = np.vstack(
            [self.vectors, np.zeros((extra, self.dim), dtype=np.float64)]
        )
        self.valid = np.concatenate(
            [self.valid, np.zeros(extra, dtype=np.float64)]
        )

    def update(self, interval: int, estimate: FloatArray) -> DriftUpdate:
        """Feed one micro-batch context estimate for ``interval``.

        Returns the :class:`DriftUpdate` verdict; the tracked vector has
        already drifted (or jumped) when this returns.
        """
        if interval < 0:
            raise ValueError(f"interval must be non-negative, got {interval}")
        self.ensure_intervals(interval + 1)
        fresh = unit_norm(estimate)
        self.updates += 1
        if not self.valid[interval]:
            self.vectors[interval] = fresh
            self.valid[interval] = 1.0
            return DriftUpdate(interval=interval, cosine=1.0, boundary=False)
        current = self.vectors[interval]
        cosine = float(np.dot(current, fresh))
        if cosine < self.threshold:
            # Boundary: the context jumped; re-anchor on the estimate.
            self.vectors[interval] = fresh
            self.boundaries += 1
            return DriftUpdate(interval=interval, cosine=cosine, boundary=True)
        stepped = (1.0 - self.drift_rate) * current + self.drift_rate * fresh
        self.vectors[interval] = unit_norm(stepped)
        return DriftUpdate(interval=interval, cosine=cosine, boundary=False)

    def restore(
        self,
        vectors: FloatArray,
        valid: FloatArray,
        boundaries: int = 0,
        updates: int = 0,
    ) -> None:
        """Replace the tracker state (crash-recovery path)."""
        vectors = np.asarray(vectors, dtype=np.float64)
        valid = np.asarray(valid, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError(
                f"vectors must have shape (T, {self.dim}), got {vectors.shape}"
            )
        if valid.shape != (vectors.shape[0],):
            raise ValueError("valid mask must align with vectors")
        self.vectors = vectors.copy()
        self.valid = valid.copy()
        self.boundaries = int(boundaries)
        self.updates = int(updates)
