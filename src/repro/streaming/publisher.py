"""Zero-downtime publication of ingested snapshots into serving.

The :class:`SnapshotPublisher` closes the streaming loop: the
:class:`~repro.streaming.ingestor.StreamIngestor` folds events into
fresh parameters, and the publisher hot-swaps those parameters into a
live :class:`~repro.recommend.recommender.TemporalRecommender` — or
refuses to, keeping the current generation serving.

Every candidate goes through the same gate before it can serve:

1. **Integrity** — snapshot files load through
   :func:`~repro.core.serialize.load_params`, so a truncated or
   bit-flipped archive surfaces as
   :class:`~repro.robustness.errors.SnapshotCorruptError` instead of
   garbage scores.
2. **Health** — a :class:`~repro.robustness.health.HealthMonitor`
   checks the candidate's parameter invariants (finite, row-stochastic,
   λ in the unit interval, no collapsed topics).
3. **Probes** — a configurable set of ``(user, interval)`` probe
   queries must produce finite scores end to end.

Only a candidate that passes all three is published, through the
recommender's read-copy-update :meth:`~repro.recommend.recommender.TemporalRecommender.swap_model`
— one atomic generation swap, so in-flight queries finish on the old
snapshot and no query is ever dropped or served a torn mix. A failed
candidate is recorded as a rollback (the serving generation simply
stays), and :meth:`SnapshotPublisher.revert` can re-publish the
previous healthy snapshot if a bad one ever got through the gate.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.params import ITCAMParameters, TTCAMParameters
from ..core.serialize import LoadedModel, load_params
from ..recommend.recommender import TemporalRecommender
from ..robustness.errors import SnapshotCorruptError
from ..robustness.health import HealthMonitor

#: Invariants every TCAM parameter container must satisfy to serve.
_MONITOR = HealthMonitor(
    stochastic=("theta", "phi", "theta_time", "phi_time"),
    unit_interval=("lambda_u",),
    no_collapse=("phi",),
)


@dataclass(frozen=True, slots=True)
class PublishResult:
    """Outcome of one publication attempt.

    Attributes
    ----------
    published:
        True when the candidate is now the serving generation.
    generation:
        The serving generation index after this attempt (new on
        success, unchanged on rejection).
    reason:
        Why the candidate was rejected (``None`` on success).
    drift:
        Whether this publish was escalated by a drift boundary.
    """

    published: bool
    generation: int
    reason: str | None = None
    drift: bool = False


class SnapshotPublisher:
    """Validates and hot-swaps model snapshots into a live recommender.

    Parameters
    ----------
    recommender:
        The serving recommender to publish into; its current model (if
        any) seeds the revert history.
    probes:
        ``(user, interval)`` pairs that every candidate must answer
        with finite scores before it may serve. Probes outside a
        candidate's dimensions fail it — a snapshot that lost users or
        intervals the probes rely on should not be published silently.
    monitor:
        Override the default parameter :class:`HealthMonitor`.
    """

    def __init__(
        self,
        recommender: TemporalRecommender,
        probes: Sequence[tuple[int, int]] = ((0, 0),),
        monitor: HealthMonitor | None = None,
    ) -> None:
        self.recommender = recommender
        self.probes = tuple((int(user), int(interval)) for user, interval in probes)
        self.monitor = monitor if monitor is not None else _MONITOR
        self._previous: LoadedModel | None = None
        current = recommender.model
        self._current: LoadedModel | None = (
            current if isinstance(current, LoadedModel) else None
        )

    # ------------------------------------------------------------------
    # validation gate
    # ------------------------------------------------------------------

    def _reject(self, reason: str) -> PublishResult:
        """Record a failed candidate; the serving generation stays."""
        self.recommender.note_rollback(reason)
        return PublishResult(
            published=False,
            generation=self.recommender.generation,
            reason=reason,
        )

    def _validate(self, params: ITCAMParameters | TTCAMParameters) -> str | None:
        """Why the candidate must not serve, or ``None`` when healthy."""
        arrays = {
            name: np.asarray(getattr(params, name))
            for name in ("theta", "phi", "theta_time", "lambda_u")
        }
        if isinstance(params, TTCAMParameters):
            arrays["phi_time"] = np.asarray(params.phi_time)
        problems = self.monitor.violations(arrays)
        if problems:
            return "unhealthy snapshot: " + "; ".join(problems)
        for user, interval in self.probes:
            if not 0 <= user < params.num_users:
                return f"probe user {user} outside snapshot ({params.num_users} users)"
            if not 0 <= interval < params.num_intervals:
                return (
                    f"probe interval {interval} outside snapshot "
                    f"({params.num_intervals} intervals)"
                )
            scores = params.score_items(user, interval)
            if not bool(np.all(np.isfinite(scores))):
                return f"probe ({user}, {interval}) produced non-finite scores"
        return None

    # ------------------------------------------------------------------
    # publication
    # ------------------------------------------------------------------

    def publish(
        self,
        params: ITCAMParameters | TTCAMParameters,
        drift: bool = False,
        model: LoadedModel | None = None,
    ) -> PublishResult:
        """Gate and hot-swap one parameter snapshot.

        On success the candidate becomes the serving generation — an
        atomic swap, with in-flight queries finishing on the previous
        generation. On rejection the recommender records a rollback and
        keeps serving exactly what it served before. ``drift=True``
        marks the swap as a drift-boundary escalation (counted
        separately on every :class:`~repro.recommend.recommender.ServingStatus`).
        """
        problem = self._validate(params)
        if problem is not None:
            return self._reject(problem)
        if model is None:
            model = LoadedModel(params)
        generation = self.recommender.swap_model(model, drift=drift)
        self._previous, self._current = self._current, model
        return PublishResult(published=True, generation=generation, drift=drift)

    def publish_file(
        self, path: str | Path, drift: bool = False, mmap: bool = False
    ) -> PublishResult:
        """Load, gate and hot-swap a snapshot file.

        A corrupt archive (torn write, checksum mismatch, invalid
        parameters) is rejected and recorded as a rollback rather than
        raised — the serving path never goes down because a publish
        failed.

        ``mmap=True`` publishes the snapshot's sidecar store (see
        :mod:`repro.recommend.paramstore`) so the swapped-in generation
        serves from memory-mapped parameters. The health gate still
        reads every array once (in this publisher process); the resident
        win applies to the serving side. A missing or damaged sidecar
        degrades to the eager load with a :class:`RuntimeWarning`.
        """
        try:
            if mmap:
                model: LoadedModel | None = LoadedModel.from_file(path, mmap=True)
                params = model.params_
            else:
                model = None
                params = load_params(path)
        except (SnapshotCorruptError, FileNotFoundError) as exc:
            return self._reject(f"snapshot rejected: {exc}")
        return self.publish(params, drift=drift, model=model)

    def revert(self) -> PublishResult:
        """Re-publish the previous healthy snapshot (counted as rollback).

        The escape hatch for a snapshot that passed the gate but
        misbehaves in production: swap the last known-good generation
        back in. Fails (without touching serving) when no previous
        snapshot exists.
        """
        if self._previous is None:
            return self._reject("no previous snapshot to revert to")
        model = self._previous
        self.recommender.note_rollback("reverted to previous snapshot")
        generation = self.recommender.swap_model(model)
        self._previous, self._current = None, model
        return PublishResult(published=True, generation=generation)


class GenerationFile:
    """Durable record of the latest published snapshot generation.

    The cross-process serving service coordinates hot swaps over two
    channels: a control message down each worker's pipe (the fast
    notification) and this small atomically-replaced JSON file (the
    durable record). A worker that starts — or restarts — after a swap
    reads the file and comes up on the current snapshot instead of the
    one the service was launched with; an operator can inspect it to see
    what is actually serving.

    The file is written with the same write-temp-then-``os.replace``
    discipline as every snapshot in this repository, so readers never
    observe a torn record.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def write(self, generation: int, snapshot: str | Path, drift: bool = False) -> None:
        """Atomically record ``snapshot`` as generation ``generation``."""
        payload = {
            "generation": int(generation),
            "snapshot": str(snapshot),
            "drift": bool(drift),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def read(self) -> dict | None:
        """The latest record, or ``None`` when nothing was published yet.

        A missing or undecodable file is treated as "no record" — the
        generation file is a coordination aid, not a source of truth,
        and a half-provisioned run directory must not stop a worker from
        serving its launch snapshot.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(raw, dict) or "snapshot" not in raw:
            return None
        return {
            "generation": int(raw.get("generation", 0)),
            "snapshot": str(raw["snapshot"]),
            "drift": bool(raw.get("drift", False)),
        }
