"""Domain-aware AST linter for the TCAM stack (``tcam lint``).

The reproduced guarantees — EM convergence, bit-deterministic
checkpoint/resume, TA/batch-serving score identity — rest on a handful of
coding invariants that generic linters cannot see.  This module encodes
them as five AST rules:

========  ==================================================================
TCAM001   No legacy/unseeded RNG.  ``np.random.<fn>()`` module-level calls
          and ``RandomState`` are banned; randomness must flow through a
          seeded ``np.random.Generator`` (``np.random.default_rng``).
TCAM002   No unguarded ``np.log`` / ``np.divide`` on probability arrays.
          The risky operand must carry an ``EPS``/``_EPS`` guard, a
          ``safe_``-prefixed value, or a clamping call (``np.maximum``,
          ``np.clip``, ``np.where``), unless it lives inside a blessed
          ``safe_*`` helper.
TCAM003   No array allocation inside hot paths.  Functions decorated with
          :func:`repro.typing.hot_path` (or listed as built-in hot kernels
          in ``core/engine.py`` / ``recommend/serving.py``) must write into
          preallocated workspaces; ``np.zeros``/``np.empty``/
          ``np.concatenate``/``.copy()``/... are flagged.
TCAM004   ``__all__`` consistency.  Every ``__all__`` entry must resolve to
          a module-level binding, every public top-level ``def``/``class``
          must be exported, and duplicates are flagged.
TCAM005   No nondeterministic iteration.  Bare ``set``/``frozenset``
          expressions must not feed loops, comprehensions, or order-
          sensitive reductions; wrap them in ``sorted(...)`` first.
========  ==================================================================

Suppression: append ``# tcam-lint: disable=TCAM001`` (comma-separate for
several rules) to the offending line.

Run as ``tcam lint [paths...]`` or ``python -m repro.tooling.lint``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .registry import rules_for_tool

__all__ = [
    "RULES",
    "Finding",
    "lint_source",
    "lint_paths",
    "main",
]

#: Rule code -> one-line summary, derived from the shared registry
#: (:mod:`repro.tooling.registry`) so ``--list-rules``, the docs and the
#: SARIF rule metadata all agree on one catalogue.
RULES: dict[str, str] = rules_for_tool("lint")

# -- rule configuration ------------------------------------------------------

#: np.random attributes that construct seeded generator machinery.
_SEEDED_RNG_OK = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
    }
)

#: Names whose presence inside an expression marks it as EPS-guarded.
_GUARD_NAMES = frozenset({"EPS", "_EPS"})

#: Calls whose result is considered clamped/safe for log/divide operands.
_GUARD_CALLS = frozenset({"maximum", "fmax", "clip", "where", "exp", "abs", "absolute"})

#: numpy constructors that allocate a fresh array (banned in hot paths).
#: Checked both as ``np.<name>(...)`` chains and as bare names imported
#: via ``from numpy import <name>`` (aliases included).
_ALLOCATORS = frozenset(
    {
        "zeros",
        "empty",
        "ones",
        "full",
        "zeros_like",
        "empty_like",
        "ones_like",
        "full_like",
        "array",
        "copy",
        "concatenate",
        "vstack",
        "hstack",
        "stack",
        "tile",
        "repeat",
        "append",
        "insert",
        "pad",
        "ascontiguousarray",
        "asfortranarray",
        "atleast_1d",
        "atleast_2d",
        "atleast_3d",
        "arange",
        "linspace",
    }
)

#: Built-in hot kernels, keyed by path suffix.  Entries match a function's
#: qualified name exactly, or any qualname's final segment when the entry
#: has no dot (``"accumulate"`` matches every ``*.accumulate`` method).
_HOT_KERNELS: dict[str, frozenset[str]] = {
    "core/engine.py": frozenset({"accumulate", "BlockedEStep._run_worker"}),
    "recommend/serving.py": frozenset({"BatchScorer.serve_group"}),
}

#: Aggregator callables whose argument order affects the result enough to
#: care about set nondeterminism (TCAM005).
_ORDER_SENSITIVE = frozenset({"sum", "list", "tuple"})

_SUPPRESS_RE = re.compile(r"#\s*tcam-lint:\s*disable=([A-Z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding:
    """A single lint violation at ``path:line:col``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """Format the finding the way compilers do (clickable in editors)."""

        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


# -- small AST helpers -------------------------------------------------------


def _attr_chain(node: ast.AST) -> list[str]:
    """Flatten ``np.random.default_rng`` into ``["np", "random", "default_rng"]``.

    Returns an empty list for anything that is not a plain name/attribute
    chain (calls, subscripts, ...).
    """

    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _is_numpy_random_chain(chain: Sequence[str]) -> bool:
    """True for ``np.random.X`` / ``numpy.random.X`` style chains."""

    return len(chain) >= 2 and chain[0] in {"np", "numpy"} and chain[1] == "random"


def _call_leaf(node: ast.AST) -> str:
    """Final attribute/name of a call target (``np.log`` -> ``log``)."""

    chain = _attr_chain(node)
    return chain[-1] if chain else ""


def _is_safe_name(name: str) -> bool:
    return name in _GUARD_NAMES or name.startswith("safe_")


def _expr_is_guarded(node: ast.AST) -> bool:
    """True when an expression visibly carries a numerical guard.

    Guards recognised: an ``EPS``/``_EPS`` term, any ``safe_``-prefixed
    name or attribute, or a clamping call (``np.maximum``, ``np.clip``,
    ``np.where``, ``np.exp``, ...).
    """

    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and _is_safe_name(sub.id):
            return True
        if isinstance(sub, ast.Attribute) and _is_safe_name(sub.attr):
            return True
        if isinstance(sub, ast.Call) and _call_leaf(sub.func) in _GUARD_CALLS:
            return True
    return False


def _target_names(target: ast.AST) -> Iterator[str]:
    """Yield plain names bound by an assignment target."""

    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


def _keyword(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _is_set_expr(node: ast.AST) -> bool:
    """True for set/frozenset literals, comprehensions, and constructors."""

    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names: set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        leaf = _call_leaf(target)
        if leaf:
            names.add(leaf)
    return names


# -- per-scope analysis ------------------------------------------------------


def _guarded_locals(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names that were EPS-guarded somewhere inside ``func``.

    Recognised shapes::

        den = interest + context + EPS      # assignment containing a guard
        den += EPS                          # additive in-place guard
        np.add(p, EPS, out=den)             # ufunc writing a guarded value
        np.maximum(den, EPS, out=den)       # clamping in place

    The scan is flow-insensitive on purpose: the repo's kernels guard a
    denominator once, immediately before use, and a flow-lite heuristic
    keeps the rule free of false negatives without a dataflow engine.
    """

    guarded: set[str] = set()
    for sub in _walk_own(func):
        if isinstance(sub, ast.Assign):
            if _expr_is_guarded(sub.value):
                for target in sub.targets:
                    guarded.update(_target_names(target))
        elif isinstance(sub, ast.AugAssign):
            if isinstance(sub.target, ast.Name) and _expr_is_guarded(sub.value):
                guarded.add(sub.target.id)
        elif isinstance(sub, ast.Call):
            leaf = _call_leaf(sub.func)
            out = _keyword(sub, "out")
            if out is not None and isinstance(out, ast.Name):
                clamps = leaf in {"maximum", "fmax", "clip"}
                adds_eps = leaf in {"add", "divide", "multiply"} and any(
                    _expr_is_guarded(arg) for arg in sub.args
                )
                if clamps or adds_eps:
                    guarded.add(out.id)
    return guarded


def _risky_operand(call: ast.Call, leaf: str) -> ast.expr | None:
    """The operand of ``np.log``/``np.divide`` that must not be zero."""

    if leaf == "log":
        return call.args[0] if call.args else None
    if leaf == "divide":
        return call.args[1] if len(call.args) > 1 else None
    return None


def _operand_is_guarded(operand: ast.expr, guarded: set[str]) -> bool:
    if isinstance(operand, ast.Constant):
        return True
    if _expr_is_guarded(operand):
        return True
    if isinstance(operand, ast.Name) and operand.id in guarded:
        return True
    if isinstance(operand, ast.Attribute) and operand.attr in guarded:
        return True
    return False


class _ScopeInfo:
    """A function scope plus everything the rules need to know about it."""

    def __init__(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        hot: bool,
        parent: "_ScopeInfo | None" = None,
    ) -> None:
        self.node = node
        self.qualname = qualname
        self.hot = hot
        self.parent = parent


def _collect_scopes(tree: ast.Module, hot_kernels: frozenset[str]) -> list[_ScopeInfo]:
    """Walk the module and qualify every function definition."""

    scopes: list[_ScopeInfo] = []
    bare_kernels = {entry for entry in hot_kernels if "." not in entry}

    def visit(node: ast.AST, prefix: str, parent: _ScopeInfo | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}" if prefix else child.name
                decorated = "hot_path" in _decorator_names(child)
                listed = qualname in hot_kernels or child.name in bare_kernels
                hot = decorated or listed or (parent is not None and parent.hot)
                scope = _ScopeInfo(child, qualname, hot, parent)
                scopes.append(scope)
                visit(child, f"{qualname}.<locals>.", scope)
            elif isinstance(child, ast.ClassDef):
                class_prefix = f"{prefix}{child.name}." if prefix else f"{child.name}."
                visit(child, class_prefix, parent)
            else:
                visit(child, prefix, parent)

    visit(tree, "", None)
    return scopes


# -- the rules ---------------------------------------------------------------


def _check_rng(tree: ast.Module, emit: "_Emitter") -> None:
    """TCAM001: ban module-level np.random calls and RandomState."""

    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr == "RandomState":
            emit(node, "TCAM001", "RandomState is banned; use np.random.default_rng")
        elif isinstance(node, ast.Name) and node.id == "RandomState":
            emit(node, "TCAM001", "RandomState is banned; use np.random.default_rng")
        elif isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if (
                _is_numpy_random_chain(chain)
                and len(chain) == 3
                and chain[2] not in _SEEDED_RNG_OK
            ):
                emit(
                    node,
                    "TCAM001",
                    f"np.random.{chain[2]}() uses the legacy global RNG; "
                    "thread a seeded np.random.Generator instead",
                )


def _walk_own(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function definitions."""

    stack: list[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _check_calls_guarded(
    nodes: Iterable[ast.AST], guarded: set[str], where: str, emit: "_Emitter"
) -> None:
    for node in nodes:
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if len(chain) != 2 or chain[0] not in {"np", "numpy"}:
            continue
        leaf = chain[1]
        operand = _risky_operand(node, leaf)
        if operand is None:
            continue
        if not _operand_is_guarded(operand, guarded):
            emit(
                node,
                "TCAM002",
                f"unguarded np.{leaf} in {where}; add an EPS term, clamp "
                "with np.maximum/np.clip, or use a safe_* helper",
            )


def _check_safe_math(scopes: Iterable[_ScopeInfo], tree: ast.Module, emit: "_Emitter") -> None:
    """TCAM002: np.log/np.divide operands must be visibly guarded."""

    for scope in scopes:
        if _is_safe_name(scope.node.name):
            continue  # blessed safe-math helper: the guard lives inside it
        guarded = _guarded_locals(scope.node)
        ancestor = scope.parent
        while ancestor is not None:  # closures see enclosing guards
            guarded |= _guarded_locals(ancestor.node)
            ancestor = ancestor.parent
        _check_calls_guarded(
            _walk_own(scope.node), guarded, f"'{scope.qualname}'", emit
        )

    # Module-level statements (outside any def/class) get the same treatment.
    module_guarded: set[str] = set()
    top: list[ast.AST] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        top.append(node)
        if isinstance(node, ast.Assign) and _expr_is_guarded(node.value):
            for target in node.targets:
                module_guarded.update(_target_names(target))
    for node in top:
        _check_calls_guarded(
            [node, *_walk_own(node)], module_guarded, "module scope", emit
        )


def _numpy_aliases(tree: ast.Module) -> dict[str, str]:
    """Local names bound by ``from numpy import ...`` -> numpy name.

    Lets TCAM003 see allocator calls that do not spell the ``np.``
    prefix (``from numpy import concatenate as cat; cat(...)``).
    """

    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "numpy":
            for alias in node.names:
                aliases[alias.asname or alias.name] = alias.name
    return aliases


def _check_hot_alloc(
    scopes: Iterable[_ScopeInfo], aliases: dict[str, str], emit: "_Emitter"
) -> None:
    """TCAM003: no array allocation inside hot paths."""

    for scope in scopes:
        if not scope.hot:
            continue
        for node in ast.walk(scope.node):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if len(chain) == 2 and chain[0] in {"np", "numpy"} and chain[1] in _ALLOCATORS:
                emit(
                    node,
                    "TCAM003",
                    f"np.{chain[1]}() allocates inside hot path "
                    f"'{scope.qualname}'; use the preallocated workspace",
                )
            elif (
                isinstance(node.func, ast.Name)
                and aliases.get(node.func.id) in _ALLOCATORS
            ):
                emit(
                    node,
                    "TCAM003",
                    f"{node.func.id}() (numpy {aliases[node.func.id]}) "
                    f"allocates inside hot path '{scope.qualname}'; use "
                    "the preallocated workspace",
                )
            elif isinstance(node.func, ast.Attribute) and node.func.attr == "copy":
                if not chain or chain[0] not in {"np", "numpy"}:
                    emit(
                        node,
                        "TCAM003",
                        f".copy() allocates inside hot path '{scope.qualname}'; "
                        "use the preallocated workspace",
                    )
            elif isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
                copy_kw = _keyword(node, "copy")
                if not (
                    isinstance(copy_kw, ast.Constant) and copy_kw.value is False
                ):
                    emit(
                        node,
                        "TCAM003",
                        f".astype() without copy=False allocates inside hot "
                        f"path '{scope.qualname}'",
                    )


def _check_all_exports(tree: ast.Module, emit: "_Emitter") -> None:
    """TCAM004: __all__ and the public surface must agree."""

    all_node: ast.Assign | None = None
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    all_node = node
    if all_node is None:
        return
    if not isinstance(all_node.value, (ast.List, ast.Tuple)):
        return
    exported: list[tuple[str, ast.expr]] = []
    for element in all_node.value.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            exported.append((element.value, element))

    bound: set[str] = set()
    public_defs: list[tuple[str, ast.stmt]] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
            if not node.name.startswith("_"):
                public_defs.append((node.name, node))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                bound.update(_target_names(target))
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bound.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                bound.add(alias.asname or alias.name)
        elif isinstance(node, (ast.If, ast.Try)):
            for sub in ast.walk(node):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    bound.add(sub.name)
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        bound.update(_target_names(target))
                elif isinstance(sub, ast.Import):
                    for alias in sub.names:
                        bound.add(alias.asname or alias.name.split(".")[0])
                elif isinstance(sub, ast.ImportFrom):
                    for alias in sub.names:
                        bound.add(alias.asname or alias.name)

    seen: set[str] = set()
    for name, element in exported:
        if name in seen:
            emit(element, "TCAM004", f"'{name}' listed twice in __all__")
        seen.add(name)
        if name not in bound:
            emit(
                element,
                "TCAM004",
                f"'{name}' is exported in __all__ but never defined or imported",
            )
    for name, node in public_defs:
        if name not in seen:
            emit(node, "TCAM004", f"public definition '{name}' missing from __all__")


def _check_set_iteration(tree: ast.Module, emit: "_Emitter") -> None:
    """TCAM005: bare sets must not drive loops or order-sensitive reductions."""

    message = (
        "iterating a bare set is nondeterministic; wrap it in sorted(...) "
        "to fix the reduction order"
    )
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(node.iter):
            emit(node.iter, "TCAM005", message)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter):
                    emit(gen.iter, "TCAM005", message)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _ORDER_SENSITIVE:
                if node.args and _is_set_expr(node.args[0]):
                    emit(node.args[0], "TCAM005", message)
            elif isinstance(func, ast.Attribute) and func.attr == "join":
                if node.args and _is_set_expr(node.args[0]):
                    emit(node.args[0], "TCAM005", message)


# -- driver ------------------------------------------------------------------


class _Emitter:
    """Collects findings, honouring per-line suppression comments."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.findings: list[Finding] = []
        self._suppressed: dict[int, set[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                codes = {code.strip() for code in match.group(1).split(",")}
                self._suppressed[lineno] = {code for code in codes if code}

    def __call__(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        if rule in self._suppressed.get(line, set()):
            return
        self.findings.append(Finding(self.path, line, col, rule, message))


def _hot_kernels_for(path: str) -> frozenset[str]:
    normalized = path.replace("\\", "/")
    for suffix, kernels in _HOT_KERNELS.items():
        if normalized.endswith(suffix):
            return kernels
    return frozenset()


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint a single module's source text and return its findings."""

    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(path, exc.lineno or 0, exc.offset or 0, "TCAM000", f"syntax error: {exc.msg}")
        ]
    emit = _Emitter(path, source)
    scopes = _collect_scopes(tree, _hot_kernels_for(path))
    _check_rng(tree, emit)
    _check_safe_math(scopes, tree, emit)
    _check_hot_alloc(scopes, _numpy_aliases(tree), emit)
    _check_all_exports(tree, emit)
    _check_set_iteration(tree, emit)
    emit.findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return emit.findings


def _iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Sequence[str]) -> list[Finding]:
    """Lint every ``.py`` file under the given files/directories."""

    findings: list[Finding] = []
    for file_path in _iter_python_files(paths):
        findings.extend(lint_source(file_path.read_text(encoding="utf-8"), str(file_path)))
    return findings


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a shell exit status (0 clean, 1 findings)."""

    from .output import run_cli

    return run_cli(
        prog="tcam lint",
        description="Domain-aware linter enforcing TCAM determinism and "
        "numerical-safety invariants (rules TCAM001-TCAM005).",
        rules=RULES,
        collect=lint_paths,
        argv=argv,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
