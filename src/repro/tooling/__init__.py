"""Developer tooling for the TCAM reproduction.

Home to the domain-aware linter (:mod:`repro.tooling.lint`), the static
concurrency-race analyzer (:mod:`repro.tooling.races`), the resource-
lifecycle and crash-consistency auditor (:mod:`repro.tooling.lifecycle`),
the determinism & dtype-flow verifier (:mod:`repro.tooling.determinism`)
and the opt-in runtime sanitizer (:mod:`repro.tooling.sanitize`) —
together they encode the determinism, numerical-safety, data-race and
durability invariants the test suite otherwise only catches after the
fact. All four static tools share one CLI surface
(:mod:`repro.tooling.output`): ``--format json`` emits the same
stable-sorted schema from each (``--format sarif`` the same SARIF 2.1.0
log), which CI turns into GitHub annotations and code-scanning uploads,
and every rule code is declared once in :mod:`repro.tooling.registry`.

The submodules are loaded lazily so that ``python -m repro.tooling.lint``
(or ``...races``) does not import them twice (once as a package
attribute, once as ``__main__``), which would trigger a runpy
``RuntimeWarning``.
"""

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .determinism import prove_paths, prove_source
    from .lifecycle import audit_paths, audit_source
    from .lint import Finding, lint_paths, lint_source, main
    from .races import analyze_paths, analyze_source
    from .registry import REGISTRY, RuleSpec, rules_for_tool
    from .sanitize import Sanitizer, SanitizerError, sanitize_enabled

#: Lazily exported name -> owning submodule.
_SUBMODULE_EXPORTS = {
    "Finding": "lint",
    "lint_paths": "lint",
    "lint_source": "lint",
    "main": "lint",
    "analyze_paths": "races",
    "analyze_source": "races",
    "audit_paths": "lifecycle",
    "audit_source": "lifecycle",
    "prove_paths": "determinism",
    "prove_source": "determinism",
    "REGISTRY": "registry",
    "RuleSpec": "registry",
    "rules_for_tool": "registry",
    "Sanitizer": "sanitize",
    "SanitizerError": "sanitize",
    "sanitize_enabled": "sanitize",
}

__all__ = [
    "Finding",
    "lint_paths",
    "lint_source",
    "main",
    "analyze_paths",
    "analyze_source",
    "audit_paths",
    "audit_source",
    "prove_paths",
    "prove_source",
    "REGISTRY",
    "RuleSpec",
    "rules_for_tool",
    "Sanitizer",
    "SanitizerError",
    "sanitize_enabled",
]


def __getattr__(name: str) -> Any:
    submodule = _SUBMODULE_EXPORTS.get(name)
    if submodule is not None:
        from importlib import import_module

        return getattr(import_module(f".{submodule}", __name__), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
