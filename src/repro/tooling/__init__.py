"""Developer tooling for the TCAM reproduction.

Currently home to the domain-aware linter (:mod:`repro.tooling.lint`),
which encodes the determinism and numerical-safety invariants the test
suite otherwise only catches after the fact.

The submodule is loaded lazily so that ``python -m repro.tooling.lint``
does not import it twice (once as a package attribute, once as
``__main__``), which would trigger a runpy ``RuntimeWarning``.
"""

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .lint import Finding, lint_paths, lint_source, main

__all__ = [
    "Finding",
    "lint_paths",
    "lint_source",
    "main",
]


def __getattr__(name: str) -> Any:
    if name in __all__:
        from . import lint

        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
