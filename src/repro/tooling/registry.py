"""Single source of truth for every TCAM rule ID.

Four independent rule engines share the ``TCAMxxx`` namespace: the
domain linter (``tcam lint``, TCAM001–005), the concurrency-race
analyzer (``tcam analyze``, TCAM010–013), the resource-lifecycle auditor
(``tcam audit``, TCAM020–025) and the determinism & dtype-flow verifier
(``tcam prove``, TCAM030–035).  Before this registry each tool kept its
own ``RULES`` dict, and nothing stopped two tools from claiming the same
code or a tool from inventing an unregistered one.

Every rule is declared *here* as a :class:`RuleSpec` — code, owning
tool, rule class (the invariant family it protects), one-line summary,
and the ``docs/static-analysis.md`` anchor — and each tool's ``RULES``
mapping is derived via :func:`rules_for_tool`.  The registry test
(``tests/tooling/test_registry.py``) fails on duplicate codes, on a tool
shipping a rule that is not registered to it, and on a registered rule
the tool no longer implements.

``TCAM000`` (syntax error while parsing a file) is shared by all four
tools and registered to the pseudo-tool ``"shared"``; it never appears
in a ``--list-rules`` catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "REGISTRY",
    "RuleSpec",
    "registry_errors",
    "rules_for_tool",
    "spec_for",
]

#: The four CLI tools (plus the shared pseudo-tool for TCAM000).
_TOOLS = ("lint", "analyze", "audit", "prove", "shared")


@dataclass(frozen=True)
class RuleSpec:
    """One registered rule: identity, owner, classification and docs."""

    code: str
    tool: str
    rule_class: str
    summary: str
    doc_anchor: str

    @property
    def doc_url(self) -> str:
        """Repo-relative documentation link for SARIF ``helpUri``."""

        return f"docs/static-analysis.md#{self.doc_anchor}"


def _spec(code: str, tool: str, rule_class: str, summary: str, anchor: str) -> RuleSpec:
    return RuleSpec(code, tool, rule_class, summary, anchor)


#: Every TCAM rule, in code order.  Append here first when adding a rule.
_SPECS: tuple[RuleSpec, ...] = (
    _spec("TCAM000", "shared", "parse", "syntax error while parsing a file", "suppressions"),
    # -- tcam lint (domain linter) ----------------------------------------
    _spec(
        "TCAM001",
        "lint",
        "determinism",
        "legacy/unseeded RNG (np.random.* module calls, RandomState)",
        "tcam001--no-legacyunseeded-rng",
    ),
    _spec(
        "TCAM002",
        "lint",
        "numerical-safety",
        "unguarded np.log / np.divide on probability arrays",
        "tcam002--no-unguarded-nplog--npdivide",
    ),
    _spec(
        "TCAM003",
        "lint",
        "performance",
        "array allocation inside @hot_path functions or hot kernels",
        "tcam003--no-allocation-in-hot-paths",
    ),
    _spec(
        "TCAM004",
        "lint",
        "api-hygiene",
        "__all__ out of sync with public module definitions",
        "tcam004--__all__-consistency",
    ),
    _spec(
        "TCAM005",
        "lint",
        "determinism",
        "nondeterministic iteration over a bare set",
        "tcam005--no-nondeterministic-set-iteration",
    ),
    # -- tcam analyze (race analyzer) -------------------------------------
    _spec(
        "TCAM010",
        "analyze",
        "concurrency",
        "write to shared mutable state from a pooled worker",
        "tcam010--write-to-shared-state-from-a-pooled-worker",
    ),
    _spec(
        "TCAM011",
        "analyze",
        "concurrency",
        "pooled workers handed aliasing workspace/stat buffers",
        "tcam011--aliasing-buffers-handed-to-workers",
    ),
    _spec(
        "TCAM012",
        "analyze",
        "concurrency",
        "unlocked cache mutation in the concurrent serving layer",
        "tcam012--unlocked-serving-cache-mutation",
    ),
    _spec(
        "TCAM013",
        "analyze",
        "determinism",
        "reduction over worker results in completion (unfixed) order",
        "tcam013--completion-order-reduction",
    ),
    # -- tcam audit (lifecycle auditor) -----------------------------------
    _spec(
        "TCAM020",
        "audit",
        "resource-lifecycle",
        "acquired resource never released or handed to an owner",
        "tcam020--resource-leak",
    ),
    _spec(
        "TCAM021",
        "audit",
        "crash-consistency",
        "os.replace/rename publish without fsync (atomic-publish protocol)",
        "tcam021--atomic-publish-protocol",
    ),
    _spec(
        "TCAM022",
        "audit",
        "crash-consistency",
        "manifest/checksum/generation write precedes payload fsync",
        "tcam022--commit-record-ordering",
    ),
    _spec(
        "TCAM023",
        "audit",
        "resource-lifecycle",
        "shared-memory unlink from the attaching (non-owning) side",
        "tcam023--shared-memory-unlink-ownership",
    ),
    _spec(
        "TCAM024",
        "audit",
        "resource-lifecycle",
        "spawned process not joined/reaped on every exit",
        "tcam024--process-lifecycle",
    ),
    _spec(
        "TCAM025",
        "audit",
        "resource-lifecycle",
        "mmap-backed array used or returned past its store's close",
        "tcam025--mmap-use-after-close",
    ),
    # -- tcam prove (determinism & dtype-flow verifier) --------------------
    _spec(
        "TCAM030",
        "prove",
        "determinism",
        "unordered iteration feeding an accumulation or emitted sequence",
        "tcam030--unordered-iteration-on-a-deterministic-path",
    ),
    _spec(
        "TCAM031",
        "prove",
        "determinism",
        "float reduction order depends on scheduling/worker/machine",
        "tcam031--scheduling-dependent-float-reduction",
    ),
    _spec(
        "TCAM032",
        "prove",
        "determinism",
        "argsort/np.sort without kind='stable' where ties are possible",
        "tcam032--unstable-sort-on-a-deterministic-path",
    ),
    _spec(
        "TCAM033",
        "prove",
        "dtype-flow",
        "silent float dtype mixing or unblessed narrowing cast",
        "tcam033--silent-float-dtype-mixing",
    ),
    _spec(
        "TCAM034",
        "prove",
        "determinism",
        "wall-clock or unseeded entropy reaching deterministic state",
        "tcam034--wall-clock--unseeded-entropy",
    ),
    _spec(
        "TCAM035",
        "prove",
        "coverage",
        "documented contract function missing the @bit_deterministic marker",
        "tcam035--bit_deterministic-coverage",
    ),
)

#: Rule code -> spec, in declaration (= code) order.
REGISTRY: dict[str, RuleSpec] = {spec.code: spec for spec in _SPECS}


def rules_for_tool(tool: str) -> dict[str, str]:
    """The ``RULES`` mapping (code -> summary) one tool should export."""

    if tool not in _TOOLS:
        raise ValueError(f"unknown tool {tool!r}; expected one of {_TOOLS}")
    return {
        spec.code: spec.summary for spec in _SPECS if spec.tool == tool
    }


def spec_for(code: str) -> RuleSpec:
    """Look up one rule's spec; raises ``KeyError`` for unregistered codes."""

    return REGISTRY[code.upper()]


def registry_errors() -> list[str]:
    """Internal-consistency problems with the registry itself.

    Returns human-readable complaints (empty when healthy): duplicate
    codes in the declaration tuple, malformed code strings, unknown
    tools, or codes sorted out of declaration order.  The registry test
    asserts this is empty, alongside its cross-tool checks.
    """

    errors: list[str] = []
    seen: set[str] = set()
    for spec in _SPECS:
        if spec.code in seen:
            errors.append(f"duplicate rule code {spec.code}")
        seen.add(spec.code)
        if not (
            spec.code.startswith("TCAM")
            and len(spec.code) == 7
            and spec.code[4:].isdigit()
        ):
            errors.append(f"malformed rule code {spec.code!r}")
        if spec.tool not in _TOOLS:
            errors.append(f"{spec.code} registered to unknown tool {spec.tool!r}")
        if not spec.summary or not spec.doc_anchor:
            errors.append(f"{spec.code} is missing a summary or doc anchor")
    codes = [spec.code for spec in _SPECS]
    if codes != sorted(codes):
        errors.append("registry is not declared in code order")
    return errors
