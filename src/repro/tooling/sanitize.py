"""Opt-in runtime sanitizer for the threaded EM engine and serving layer.

The static analyzer (:mod:`repro.tooling.races`) proves properties of the
code it can see; this module checks the same invariants *dynamically*, in
the spirit of happens-before race detectors (FastTrack, Flanagan &
Freund, PLDI 2009) specialised to the repo's narrow worker-pool idiom:

* **Write-interval disjointness** — every pooled E-step worker records
  the ``[lo, hi)`` rating-row intervals it writes; after the join the
  sanitizer asserts the intervals are pairwise disjoint across workers
  and exactly cover the dataset.
* **Buffer privacy** — the per-worker workspace and statistic buffers
  must be pairwise distinct objects (no aliasing handoff).
* **Numerical invariants** — model state entering the E-step must be
  finite, row-stochastic where the model contract says so, and the
  mixing weights must live in ``[0, 1]``; the reduced statistics must be
  finite.
* **Fixed-order reduce** — the post-reduce totals are recomputed from
  per-worker partial snapshots folded in worker order and compared
  *bitwise*, so a reduce that depended on completion order can never
  slip through.

Enablement is opt-in: set the environment variable ``TCAM_SANITIZE=1``
or pass ``EMEngineConfig(sanitize=True)``. When disabled, the
instrumented call sites hold a ``None`` sanitizer and skip every check
behind a single attribute test — no :class:`Sanitizer` is ever
constructed (the class-level :attr:`Sanitizer.constructed` counter
proves it, and the benchmark harness asserts it), so the sanitize-off
hot path performs zero additional allocations or per-row work.

Violations raise :class:`SanitizerError`, an :class:`AssertionError`
subclass, so they fail tests loudly while remaining distinguishable from
ordinary assertions.
"""

from __future__ import annotations

import os
import threading
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..typing import ArrayState, FloatArray, Workspace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..recommend.ranking import TopKResult

__all__ = [
    "ENV_FLAG",
    "SanitizerError",
    "Sanitizer",
    "sanitize_enabled",
    "check_finite",
    "check_simplex",
    "check_unit_interval",
    "check_state",
    "check_topk_finite",
]

#: Environment variable that switches the sanitizer on process-wide.
ENV_FLAG = "TCAM_SANITIZE"

_FALSY = frozenset({"", "0", "false", "off", "no"})

#: State keys whose rows must sum to one when present.
_SIMPLEX_KEYS = ("theta", "phi", "theta_time", "phi_time")

#: State keys that must live in the unit interval when present.
_UNIT_KEYS = ("lambda_u",)


def sanitize_enabled() -> bool:
    """True when ``TCAM_SANITIZE`` requests process-wide sanitizing."""
    return os.environ.get(ENV_FLAG, "").strip().lower() not in _FALSY


class SanitizerError(AssertionError):
    """A runtime sanitizer invariant was violated."""


def _simplex_atol(array: FloatArray) -> float:
    """Row-sum tolerance scaled to the array's precision."""
    return 1e-4 if array.dtype == np.dtype("float32") else 1e-6


def check_finite(name: str, array: FloatArray) -> None:
    """Raise :class:`SanitizerError` if ``array`` contains NaN/Inf."""
    if not bool(np.isfinite(array).all()):
        raise SanitizerError(f"sanitizer: '{name}' contains NaN/Inf values")


def check_unit_interval(name: str, array: FloatArray) -> None:
    """Raise unless every value of ``array`` is finite and in ``[0, 1]``."""
    check_finite(name, array)
    if bool((array < 0.0).any()) or bool((array > 1.0).any()):
        raise SanitizerError(
            f"sanitizer: '{name}' leaves the unit interval "
            f"(min {float(array.min())!r}, max {float(array.max())!r})"
        )


def check_simplex(name: str, array: FloatArray, atol: float | None = None) -> None:
    """Raise unless every row of ``array`` is a probability simplex."""
    check_finite(name, array)
    if bool((array < 0.0).any()):
        raise SanitizerError(f"sanitizer: '{name}' has negative probability mass")
    sums = array.sum(axis=-1)
    tolerance = _simplex_atol(array) if atol is None else atol
    if not bool(np.allclose(sums, 1.0, atol=tolerance)):
        worst = float(np.abs(sums - 1.0).max())
        raise SanitizerError(
            f"sanitizer: '{name}' rows are not stochastic "
            f"(worst row-sum deviation {worst:.3e})"
        )


def check_state(state: ArrayState) -> None:
    """Validate the model-state invariants the EM contract guarantees.

    Row-stochastic simplexes for the topic matrices present in ``state``
    and unit-interval mixing weights; unknown keys are checked for
    finiteness only.
    """
    for name, array in state.items():
        if name in _SIMPLEX_KEYS:
            check_simplex(name, array)
        elif name in _UNIT_KEYS:
            check_unit_interval(name, array)
        else:
            check_finite(name, array)


def check_topk_finite(results: Iterable["TopKResult"]) -> None:
    """Raise if any served recommendation carries a NaN/Inf score."""
    for result in results:
        for rec in result.recommendations:
            if not np.isfinite(rec.score):
                raise SanitizerError(
                    f"sanitizer: served item {rec.item} with non-finite "
                    f"score {rec.score!r}"
                )


class Sanitizer:
    """Per-engine recorder that asserts the worker-pool invariants.

    One instance is owned by each sanitizing :class:`BlockedEStep` (or
    :class:`BatchScorer`). Workers call :meth:`record_write` /
    :meth:`record_completion` under an internal lock; the engine drives
    :meth:`begin_pass`, :meth:`snapshot_partials` and :meth:`end_pass`
    around each E-step. The class-level :attr:`constructed` counter backs
    the zero-overhead-when-off guarantee: a sanitize-off run constructs
    no instances, which the benchmark harness asserts.
    """

    #: Total instances ever constructed in this process.
    constructed: int = 0

    def __init__(self, label: str) -> None:
        type(self).constructed += 1
        self.label = label
        self._lock = threading.Lock()
        self._writes: dict[int, list[tuple[int, int]]] = {}
        self._completions: list[int] = []

    # -- worker-side hooks (called concurrently, lock-guarded) -----------

    def record_write(self, worker: int, lo: int, hi: int) -> None:
        """Record that ``worker`` is writing rating rows ``[lo, hi)``."""
        with self._lock:
            self._writes.setdefault(worker, []).append((lo, hi))

    def record_completion(self, worker: int) -> None:
        """Record that ``worker`` finished its run of blocks."""
        with self._lock:
            self._completions.append(worker)

    # -- engine-side orchestration ----------------------------------------

    def begin_pass(
        self,
        state: ArrayState,
        workspaces: list[Workspace],
        worker_stats: list[ArrayState],
    ) -> None:
        """Reset the recorders and validate the pass preconditions."""
        with self._lock:
            self._writes = {}
            self._completions = []
        check_state(state)
        self.assert_private_buffers(workspaces, worker_stats)

    def snapshot_partials(self, worker_stats: list[ArrayState]) -> list[ArrayState]:
        """Deep-copy every worker's partial statistics (pre-reduce)."""
        return [
            {name: array.copy() for name, array in stats.items()}
            for stats in worker_stats
        ]

    def end_pass(
        self,
        total: ArrayState,
        partials: list[ArrayState],
        num_ratings: int,
    ) -> None:
        """Validate the pass postconditions after the fixed-order reduce."""
        self.assert_disjoint_writes()
        self.assert_covers(num_ratings)
        self.verify_fixed_order_reduce(total, partials)
        for name, array in total.items():
            check_finite(f"stats[{name}]", array)

    # -- the individual assertions ----------------------------------------

    def assert_private_buffers(
        self, workspaces: list[Workspace], worker_stats: list[ArrayState]
    ) -> None:
        """Raise if any buffer object is shared between two workers."""
        owners: dict[int, int] = {}
        per_worker: list[dict[str, object]] = [
            {**dict(ws), **stats} for ws, stats in zip(workspaces, worker_stats)
        ]
        for worker, buffers in enumerate(per_worker):
            for name, buffer in buffers.items():
                owner = owners.get(id(buffer))
                if owner is not None and owner != worker:
                    raise SanitizerError(
                        f"sanitizer[{self.label}]: buffer '{name}' of worker "
                        f"{worker} aliases a buffer of worker {owner}"
                    )
                owners[id(buffer)] = worker

    def assert_disjoint_writes(self) -> None:
        """Raise if two workers recorded overlapping write intervals."""
        with self._lock:
            intervals = sorted(
                (lo, hi, worker)
                for worker, spans in self._writes.items()
                for lo, hi in spans
            )
        for (lo_a, hi_a, worker_a), (lo_b, _hi_b, worker_b) in zip(
            intervals, intervals[1:]
        ):
            if lo_b < hi_a:
                raise SanitizerError(
                    f"sanitizer[{self.label}]: workers {worker_a} and "
                    f"{worker_b} both wrote rows "
                    f"[{lo_b}, {min(hi_a, _hi_b)}) — overlapping writes"
                )

    def assert_covers(self, num_ratings: int) -> None:
        """Raise unless the recorded intervals exactly tile the dataset."""
        with self._lock:
            intervals = sorted(
                (lo, hi)
                for spans in self._writes.values()
                for lo, hi in spans
            )
        if not intervals:
            raise SanitizerError(
                f"sanitizer[{self.label}]: no write intervals were recorded"
            )
        cursor = 0
        for lo, hi in intervals:
            if lo > cursor:
                raise SanitizerError(
                    f"sanitizer[{self.label}]: rows [{cursor}, {lo}) were "
                    "never written — the block grid has a gap"
                )
            cursor = max(cursor, hi)
        if cursor != num_ratings:
            raise SanitizerError(
                f"sanitizer[{self.label}]: writes cover rows [0, {cursor}) "
                f"but the dataset has {num_ratings} rows"
            )

    def verify_fixed_order_reduce(
        self, total: ArrayState, partials: list[ArrayState]
    ) -> None:
        """Raise unless ``total`` equals the worker-order fold, bitwise.

        The partial snapshots are taken after every worker joined, so the
        fold below is a pure function of the worker partition — if the
        engine's in-place reduce matches it bit-for-bit, the result is
        provably independent of worker completion order.
        """
        if not partials:
            raise SanitizerError(
                f"sanitizer[{self.label}]: no partial snapshots to verify"
            )
        expected = {
            name: array.copy() for name, array in partials[0].items()
        }
        for stats in partials[1:]:
            for name, array in expected.items():
                array += stats[name]
        for name, array in expected.items():
            if not np.array_equal(total[name], array, equal_nan=True):
                raise SanitizerError(
                    f"sanitizer[{self.label}]: reduced stats['{name}'] is "
                    "not the fixed worker-order fold of the partials — the "
                    "reduce depends on completion order"
                )
