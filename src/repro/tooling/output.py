"""Shared CLI surface for the tcam static-analysis tools.

``tcam lint`` (TCAM001–005), ``tcam analyze`` (TCAM010–013) and
``tcam audit`` (TCAM020–025) are three independent rule engines with one
reporting contract: the same ``Finding`` record, the same suppression
comment, and — through this module — the same command line.  Every tool
accepts::

    <tool> [paths...] [--list-rules] [--format {text,json}]
           [--select CODES] [--ignore CODES]

``--format json`` emits a stable-sorted JSON array (sorted by path,
line, rule, message; fields ``path``/``line``/``col``/``rule``/
``message``) so CI can turn any tool's findings into GitHub annotations
from one schema.  ``--select``/``--ignore`` take comma-separated rule
codes and filter the findings before rendering (``--select`` keeps only
the listed rules; ``--ignore`` then drops its rules).

The module deliberately imports nothing from the rule engines at
runtime — each engine passes its own collector callable into
:func:`run_cli` — so the three tools stay independently importable.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .lint import Finding

__all__ = [
    "filter_findings",
    "parse_codes",
    "render_json",
    "run_cli",
]


def parse_codes(raw: str) -> frozenset[str]:
    """Parse a comma-separated ``--select``/``--ignore`` code list."""

    return frozenset(code.strip().upper() for code in raw.split(",") if code.strip())


def filter_findings(
    findings: Sequence["Finding"], select: str = "", ignore: str = ""
) -> list["Finding"]:
    """Apply ``--select`` (keep only) then ``--ignore`` (drop) filters."""

    keep = parse_codes(select)
    drop = parse_codes(ignore)
    return [
        finding
        for finding in findings
        if (not keep or finding.rule in keep) and finding.rule not in drop
    ]


def render_json(findings: Sequence["Finding"]) -> str:
    """Render findings as the shared JSON schema, stable-sorted.

    The sort key is ``(path, line, rule, message)`` so two runs over the
    same tree always serialize identically, which lets CI diff or cache
    the output.
    """

    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))
    return json.dumps(
        [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule": f.rule,
                "message": f.message,
            }
            for f in ordered
        ],
        indent=2,
    )


def run_cli(
    prog: str,
    description: str,
    rules: Mapping[str, str],
    collect: Callable[[Sequence[str]], list["Finding"]],
    argv: Sequence[str] | None = None,
    default_paths: Sequence[str] = ("src/repro",),
) -> int:
    """Run one analysis tool's CLI; returns the shell exit status.

    ``collect`` maps the positional paths to a findings list; everything
    else (rule listing, filtering, text/JSON rendering, exit status) is
    identical across the three tools and lives here.
    """

    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(default_paths),
        help=f"files or directories (default: {' '.join(default_paths)})",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="format_",
        help="findings output: compiler-style text (default) or the "
        "shared stable-sorted JSON schema",
    )
    parser.add_argument(
        "--select",
        default="",
        help="comma-separated rule codes to keep (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default="",
        help="comma-separated rule codes to drop",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, summary in sorted(rules.items()):
            print(f"{code}  {summary}")
        return 0

    findings = filter_findings(collect(args.paths), args.select, args.ignore)
    if args.format_ == "json":
        print(render_json(findings))
    else:
        for finding in findings:
            print(finding.render())
    if findings:
        print(f"{prog}: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0
