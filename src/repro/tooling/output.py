"""Shared CLI surface for the tcam static-analysis tools.

``tcam lint`` (TCAM001–005), ``tcam analyze`` (TCAM010–013), ``tcam
audit`` (TCAM020–025) and ``tcam prove`` (TCAM030–035) are four
independent rule engines with one reporting contract: the same
``Finding`` record, the same suppression comment, and — through this
module — the same command line.  Every tool accepts::

    <tool> [paths...] [--list-rules] [--format {text,json,sarif}]
           [--select CODES] [--ignore CODES]
           [--baseline FILE] [--write-baseline FILE]

``--format json`` emits a stable-sorted JSON array (sorted by path,
line, rule, message; fields ``path``/``line``/``col``/``rule``/
``message``) so CI can turn any tool's findings into GitHub annotations
from one schema.  ``--format sarif`` emits a SARIF 2.1.0 log (one run,
rule metadata from the shared registry) for the GitHub code-scanning
UI.  ``--select``/``--ignore`` take comma-separated rule codes and
filter the findings before rendering (``--select`` keeps only the
listed rules; ``--ignore`` then drops its rules).

``--write-baseline FILE`` records the current findings (after
filtering) and exits 0; a later run with ``--baseline FILE`` reports —
and fails on — only findings *not* in the recorded set.  Baseline
matching is by ``(path, rule, message)`` with multiplicity, deliberately
ignoring line numbers so unrelated edits do not invalidate the
baseline.  This is the incremental-adoption path for new rules: record,
burn the debt down over time, delete the file.

The module deliberately imports nothing from the rule engines at
runtime — each engine passes its own collector callable into
:func:`run_cli` — so the four tools stay independently importable (the
shared rule registry is metadata, not an engine).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from .registry import REGISTRY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .lint import Finding

__all__ = [
    "apply_baseline",
    "baseline_key",
    "filter_findings",
    "load_baseline",
    "parse_codes",
    "render_json",
    "render_sarif",
    "run_cli",
    "write_baseline",
]

#: ``$schema`` URL stamped into every SARIF log (the canonical 2.1.0 one).
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"


def parse_codes(raw: str) -> frozenset[str]:
    """Parse a comma-separated ``--select``/``--ignore`` code list."""

    return frozenset(code.strip().upper() for code in raw.split(",") if code.strip())


def filter_findings(
    findings: Sequence["Finding"], select: str = "", ignore: str = ""
) -> list["Finding"]:
    """Apply ``--select`` (keep only) then ``--ignore`` (drop) filters."""

    keep = parse_codes(select)
    drop = parse_codes(ignore)
    return [
        finding
        for finding in findings
        if (not keep or finding.rule in keep) and finding.rule not in drop
    ]


def _sorted_findings(findings: Sequence["Finding"]) -> list["Finding"]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))


def render_json(findings: Sequence["Finding"]) -> str:
    """Render findings as the shared JSON schema, stable-sorted.

    The sort key is ``(path, line, rule, message)`` so two runs over the
    same tree always serialize identically, which lets CI diff or cache
    the output.
    """

    return json.dumps(
        [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule": f.rule,
                "message": f.message,
            }
            for f in _sorted_findings(findings)
        ],
        indent=2,
    )


def render_sarif(findings: Sequence["Finding"], prog: str) -> str:
    """Render findings as a SARIF 2.1.0 log for code-scanning upload.

    One ``run`` whose driver is the invoking tool; the rule metadata
    (short description, help URI into ``docs/static-analysis.md``) comes
    from the shared registry, so every rule that *fired* is described in
    the log.  Findings keep the shared stable sort, columns are
    converted from 0-based to SARIF's 1-based convention, and paths are
    normalised to forward slashes as relative ``artifactLocation`` URIs.
    """

    ordered = _sorted_findings(findings)
    fired = sorted({f.rule for f in ordered})
    rules = []
    for code in fired:
        spec = REGISTRY.get(code)
        rule: dict[str, object] = {"id": code}
        if spec is not None:
            rule["shortDescription"] = {"text": spec.summary}
            rule["helpUri"] = spec.doc_url
            rule["properties"] = {"ruleClass": spec.rule_class, "tool": spec.tool}
        rules.append(rule)
    rule_index = {code: position for position, code in enumerate(fired)}
    results = [
        {
            "ruleId": f.rule,
            "ruleIndex": rule_index[f.rule],
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(f.line, 1),
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in ordered
    ]
    log = {
        "$schema": SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": prog,
                        "informationUri": "docs/static-analysis.md",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)


# -- baselines ---------------------------------------------------------------


def baseline_key(path: str, rule: str, message: str) -> tuple[str, str, str]:
    """The identity a baseline entry matches on (line numbers excluded)."""

    return (path.replace("\\", "/"), rule, message)


def write_baseline(findings: Sequence["Finding"], file: Path) -> None:
    """Record the findings to ``file`` in the shared JSON schema."""

    file.write_text(render_json(findings) + "\n", encoding="utf-8")


def load_baseline(file: Path) -> Counter[tuple[str, str, str]]:
    """Load a recorded baseline as a multiset of finding keys."""

    entries = json.loads(file.read_text(encoding="utf-8"))
    if not isinstance(entries, list):
        raise ValueError(f"baseline {file} is not a JSON array")
    keys: Counter[tuple[str, str, str]] = Counter()
    for entry in entries:
        keys[baseline_key(entry["path"], entry["rule"], entry["message"])] += 1
    return keys


def apply_baseline(
    findings: Sequence["Finding"], baseline: Counter[tuple[str, str, str]]
) -> list["Finding"]:
    """Drop findings recorded in the baseline; keep only *new* ones.

    Matching is by ``(path, rule, message)`` with multiplicity: a
    baseline recording one occurrence of a finding still reports a
    second identical occurrence as new.
    """

    budget = Counter(baseline)
    fresh: list["Finding"] = []
    for finding in _sorted_findings(findings):
        key = baseline_key(finding.path, finding.rule, finding.message)
        if budget[key] > 0:
            budget[key] -= 1
        else:
            fresh.append(finding)
    return fresh


def run_cli(
    prog: str,
    description: str,
    rules: Mapping[str, str],
    collect: Callable[[Sequence[str]], list["Finding"]],
    argv: Sequence[str] | None = None,
    default_paths: Sequence[str] = ("src/repro",),
) -> int:
    """Run one analysis tool's CLI; returns the shell exit status.

    ``collect`` maps the positional paths to a findings list; everything
    else (rule listing, filtering, baselines, text/JSON/SARIF rendering,
    exit status) is identical across the four tools and lives here.
    """

    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(default_paths),
        help=f"files or directories (default: {' '.join(default_paths)})",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        dest="format_",
        help="findings output: compiler-style text (default), the shared "
        "stable-sorted JSON schema, or a SARIF 2.1.0 log",
    )
    parser.add_argument(
        "--select",
        default="",
        help="comma-separated rule codes to keep (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default="",
        help="comma-separated rule codes to drop",
    )
    parser.add_argument(
        "--baseline",
        default="",
        metavar="FILE",
        help="recorded-findings file; only findings not in it are reported",
    )
    parser.add_argument(
        "--write-baseline",
        default="",
        metavar="FILE",
        help="record the current findings to FILE and exit 0",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, summary in sorted(rules.items()):
            print(f"{code}  {summary}")
        return 0

    findings = filter_findings(collect(args.paths), args.select, args.ignore)
    if args.write_baseline:
        write_baseline(findings, Path(args.write_baseline))
        print(
            f"{prog}: recorded {len(findings)} finding(s) to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0
    if args.baseline:
        baseline_file = Path(args.baseline)
        if not baseline_file.is_file():
            print(f"{prog}: baseline {args.baseline} not found", file=sys.stderr)
            return 2
        findings = apply_baseline(findings, load_baseline(baseline_file))
    if args.format_ == "json":
        print(render_json(findings))
    elif args.format_ == "sarif":
        print(render_sarif(findings, prog))
    else:
        for finding in findings:
            print(finding.render())
    if findings:
        print(f"{prog}: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0
