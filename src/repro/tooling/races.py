"""Static concurrency-race analyzer for the TCAM stack (``tcam analyze``).

PRs 2–3 made the hot paths concurrent: the blocked E-step fans worker
callables out on a :class:`~concurrent.futures.ThreadPoolExecutor` with
shared workspace/statistic buffer lists, and the serving layer answers
``recommend_batch`` traffic through shared LRU caches. The domain linter
(:mod:`repro.tooling.lint`) checks single-function properties only; this
module adds the *interprocedural* pass that protects the concurrency
invariants. It builds a call graph rooted at every callable submitted to
a thread pool, classifies how each value a worker can reach is shared
(worker-local, unique-per-worker index, per-worker slot of a shared
container, or fully shared), and follows calls to module-local functions
and methods so writes buried one or more frames below the submitted
callable are still attributed to the worker. PR 8's serving service adds
a second root kind: ``Process(target=...)`` worker entrypoints (their
``args=`` / ``kwargs=`` packs classify exactly like submit arguments),
and widens the serving-layer scope to the ``serving_service`` package.

========  ==================================================================
TCAM010   Write to shared mutable state from a pooled worker or a
          spawned process entrypoint without block-disjoint indexing
          (``self.total += x`` or ``shared[key] = v`` inside a worker;
          ``buffer[worker]`` slots are exempt).
TCAM011   Two workers handed aliasing workspace/stat buffers — a write
          through an argument every worker receives, or buffer-list
          construction that replicates one object (``[buf] * n``,
          ``[buf for _ in range(n)]``).
TCAM012   Cache/dict mutation reachable from the concurrent serving layer
          without a lock or a documented single-writer contract (scoped
          to ``recommend/serving.py`` / ``recommend/recommender.py`` and
          the ``serving_service`` package).
TCAM013   Reduction over worker results whose order is not statically
          fixed (``for f in as_completed(...)`` accumulation), breaking
          the fixed-order-reduce bit-determinism guarantee.
========  ==================================================================

Suppression reuses the linter's comment syntax: append
``# tcam-lint: disable=TCAM010`` to the offending line (the meta-test
keeps the real tree at zero findings, so every suppression is visible in
review). Lambdas submitted to pools are not descended into — submit a
named function so the analyzer can see it.

Run as ``tcam analyze [paths...]`` or ``python -m repro.tooling.races``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, replace
from enum import IntEnum
from typing import Iterator, Sequence

from .lint import (
    Finding,
    _attr_chain,
    _call_leaf,
    _Emitter,
    _iter_python_files,
    _keyword,
    _target_names,
)
from .registry import rules_for_tool

__all__ = [
    "RULES",
    "analyze_source",
    "analyze_paths",
    "main",
]

#: Rule code -> one-line summary, derived from the shared registry
#: (:mod:`repro.tooling.registry`).
RULES: dict[str, str] = rules_for_tool("analyze")

#: Interprocedural descent budget below the submitted callable.
_MAX_DEPTH = 4

#: Method calls that mutate their receiver in place.
_WORKER_MUTATORS = frozenset(
    {
        "fill",
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "setdefault",
        "sort",
        "reverse",
        "move_to_end",
        "resize",
        "itemset",
    }
)

#: Dict/cache mutators checked by TCAM012 in the serving layer. The
#: counted ``get``/``put``/``discard`` cache API is deliberately absent:
#: those entry points carry the lock themselves.
_DICT_MUTATORS = frozenset(
    {"pop", "popitem", "update", "setdefault", "move_to_end", "clear", "append", "extend"}
)

#: Files whose classes serve concurrent traffic: the recommend layer's
#: ``recommend_batch`` engine plus the multi-process serving service's
#: front-end, batching, worker and shared-memory modules.
_SERVING_PATH_SUFFIXES = (
    "recommend/serving.py",
    "recommend/recommender.py",
    "serving_service/service.py",
    "serving_service/batching.py",
    "serving_service/worker.py",
    "serving_service/shared.py",
    "serving_service/client.py",
)

#: Docstring phrases accepted as a documented concurrency contract.
_CONTRACT_RE = re.compile(
    r"single[\s-]writer|not\s+(?:thread[\s-]?safe|safe\s+for\s+concurrent)",
    re.IGNORECASE,
)


class _Share(IntEnum):
    """How a value is shared across pooled workers (ordered by risk)."""

    LOCAL = 0  # worker-private (fresh object, literal, arithmetic result)
    UNIQUE = 1  # scalar index distinct per worker (``for w in range(n)``)
    DISJOINT = 2  # per-worker slot of a shared container (``bufs[w]``)
    SHARED = 3  # the same object is visible to every worker


#: (share class, origin) — origin is where the root object came from:
#: ``"param"`` (handed in through the submit call), ``"self"`` (reached
#: through the bound instance), ``"global"`` (closure/module binding), or
#: ``"local"`` (created inside the worker).
_Binding = tuple[_Share, str]

_LOCAL: _Binding = (_Share.LOCAL, "local")


class _FunctionIndex:
    """Bare-name index of every ``def`` in one module (methods included).

    Resolution is by final attribute name, so ``self.kernel.accumulate``
    descends into *every* ``accumulate`` defined in the module — an
    over-approximation that matches how the kernel classes are actually
    dispatched.
    """

    def __init__(self, tree: ast.Module) -> None:
        self._defs: dict[str, list[ast.FunctionDef | ast.AsyncFunctionDef]] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._defs.setdefault(node.name, []).append(node)

    def resolve(self, name: str) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
        """Every function/method in the module with this bare name."""
        return self._defs.get(name, [])


@dataclass
class _Ctx:
    """State threaded through one worker's interprocedural analysis."""

    index: _FunctionIndex
    emit: _Emitter
    func: str
    depth: int
    visited: set[tuple[int, tuple[tuple[str, int], ...]]]


# -- shared-ness classification ----------------------------------------------


def _classify_expr(node: ast.AST, env: dict[str, _Binding]) -> _Binding:
    """Classify how the value of ``node`` is shared across workers."""
    if isinstance(node, ast.Constant):
        return _LOCAL
    if isinstance(node, ast.Name):
        if node.id == "self":
            return env.get("self", (_Share.SHARED, "self"))
        return env.get(node.id, (_Share.SHARED, "global"))
    if isinstance(node, ast.Attribute):
        share, origin = _classify_expr(node.value, env)
        if share in (_Share.LOCAL, _Share.UNIQUE):
            return (_Share.LOCAL, origin)
        return (share, origin)
    if isinstance(node, ast.Subscript):
        share, origin = _classify_expr(node.value, env)
        if share is _Share.SHARED and _index_is_unique(node.slice, env):
            return (_Share.DISJOINT, origin)
        if share in (_Share.LOCAL, _Share.UNIQUE):
            return (_Share.LOCAL, origin)
        return (share, origin)
    if isinstance(node, (ast.BoolOp, ast.IfExp)):
        operands: list[ast.expr]
        if isinstance(node, ast.BoolOp):
            operands = node.values
        else:
            operands = [node.body, node.orelse]
        best = _LOCAL
        for operand in operands:
            binding = _classify_expr(operand, env)
            if binding[0] > best[0]:
                best = binding
        return best
    if isinstance(node, ast.Starred):
        return _classify_expr(node.value, env)
    if isinstance(node, ast.NamedExpr):
        return _classify_expr(node.value, env)
    # Calls, arithmetic, comparisons and container displays produce fresh
    # objects; anything unrecognised is treated as local rather than
    # flooding the rule with false positives.
    return _LOCAL


def _index_is_unique(index: ast.AST, env: dict[str, _Binding]) -> bool:
    """True when a subscript index involves a per-worker-unique name."""
    for sub in ast.walk(index):
        if isinstance(sub, ast.Name):
            binding = env.get(sub.id)
            if binding is not None and binding[0] is _Share.UNIQUE:
                return True
    return False


def _element_binding(iter_expr: ast.AST, env: dict[str, _Binding]) -> _Binding:
    """Classify the *elements* produced by iterating ``iter_expr``.

    Inside a worker, ``range(n)`` yields the same values in every worker
    (local, not unique); ``container.values()`` yields objects as shared
    as the container; wrapping iterators (``enumerate``/``zip``/
    ``sorted``/...) inherit the most-shared class of their arguments.
    """
    if isinstance(iter_expr, ast.Call):
        leaf = _call_leaf(iter_expr.func)
        if leaf == "range":
            return _LOCAL
        if isinstance(iter_expr.func, ast.Attribute) and leaf in (
            "values",
            "items",
            "keys",
        ):
            return _classify_expr(iter_expr.func.value, env)
        if leaf in ("enumerate", "zip", "sorted", "reversed", "list", "tuple", "map", "filter"):
            best = _LOCAL
            for arg in iter_expr.args:
                binding = _element_binding(arg, env)
                if binding[0] > best[0]:
                    best = binding
            return best
        return _LOCAL
    binding = _classify_expr(iter_expr, env)
    if binding[0] is _Share.UNIQUE:
        return _LOCAL
    return binding


# -- submit-site discovery ---------------------------------------------------


def _submit_loop_bindings(
    target: ast.AST, iter_expr: ast.AST
) -> dict[str, _Share]:
    """Loop-variable classes at a submit site's enclosing loop.

    ``range`` targets are unique per worker; ``enumerate`` yields a
    unique index plus distinct (disjoint) elements; iterating any other
    container hands each worker a distinct element.
    """
    leaf = _call_leaf(iter_expr.func) if isinstance(iter_expr, ast.Call) else ""
    bindings: dict[str, _Share] = {}
    if leaf == "range":
        for name in _target_names(target):
            bindings[name] = _Share.UNIQUE
        return bindings
    if leaf == "enumerate" and isinstance(target, (ast.Tuple, ast.List)) and target.elts:
        for name in _target_names(target.elts[0]):
            bindings[name] = _Share.UNIQUE
        for element in target.elts[1:]:
            for name in _target_names(element):
                bindings[name] = _Share.DISJOINT
        return bindings
    for name in _target_names(target):
        bindings[name] = _Share.DISJOINT
    return bindings


def _spawn_target(call: ast.Call) -> ast.expr | None:
    """The ``target=`` callable of a ``Process(...)`` construction.

    Matches both the bare name (``Process(target=fn, ...)``) and the
    context-object form (``ctx.Process(target=fn, ...)``). Returns
    ``None`` for anything that is not a process spawn with a target.
    """
    callee = call.func
    if isinstance(callee, ast.Name):
        name = callee.id
    elif isinstance(callee, ast.Attribute):
        name = callee.attr
    else:
        return None
    if name != "Process":
        return None
    for kw in call.keywords:
        if kw.arg == "target":
            return kw.value
    return None


def _spawn_arg_exprs(
    call: ast.Call,
) -> tuple[list[ast.expr], dict[str, ast.expr]]:
    """The entrypoint's argument expressions from ``args=`` / ``kwargs=``.

    Only literal tuple/list (and literal dict with string keys) forms
    are unpacked; a dynamically built argument pack cannot be classified
    statically and contributes nothing.
    """
    positional: list[ast.expr] = []
    keywords: dict[str, ast.expr] = {}
    for kw in call.keywords:
        if kw.arg == "args" and isinstance(kw.value, (ast.Tuple, ast.List)):
            positional = list(kw.value.elts)
        elif kw.arg == "kwargs" and isinstance(kw.value, ast.Dict):
            for key, value in zip(kw.value.keys, kw.value.values):
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keywords[key.value] = value
    return positional, keywords


def _iter_worker_roots(
    tree: ast.Module,
) -> Iterator[tuple[ast.Call, dict[str, _Share]]]:
    """Yield every worker root call with its loop-variable env.

    A root is either a ``pool.submit(...)`` call or a
    ``Process(target=...)`` spawn — the two ways this codebase hands a
    callable to a concurrent worker.
    """

    def scan(
        node: ast.AST, loopvars: dict[str, _Share]
    ) -> Iterator[tuple[ast.Call, dict[str, _Share]]]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield from scan(node.iter, loopvars)
            inner = dict(loopvars)
            inner.update(_submit_loop_bindings(node.target, node.iter))
            for stmt in [*node.body, *node.orelse]:
                yield from scan(stmt, inner)
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            inner = dict(loopvars)
            for gen in node.generators:
                yield from scan(gen.iter, inner)
                inner.update(_submit_loop_bindings(gen.target, gen.iter))
                for cond in gen.ifs:
                    yield from scan(cond, inner)
            if isinstance(node, ast.DictComp):
                yield from scan(node.key, inner)
                yield from scan(node.value, inner)
            else:
                yield from scan(node.elt, inner)
            return
        if isinstance(node, ast.Call) and (
            (isinstance(node.func, ast.Attribute) and node.func.attr == "submit")
            or _spawn_target(node) is not None
        ):
            yield node, dict(loopvars)
        for child in ast.iter_child_nodes(node):
            yield from scan(child, loopvars)

    yield from scan(tree, {})


def _classify_submit_arg(arg: ast.AST, loopvars: dict[str, _Share]) -> _Binding:
    """Classify one argument of a ``pool.submit(fn, ...)`` call.

    The classification is from the worker's point of view: loop variables
    carry their per-worker class, fresh calls are disjoint across
    workers, and everything else is the *same* object handed to every
    worker (origin ``"param"``).
    """
    if isinstance(arg, ast.Constant):
        return _LOCAL
    if isinstance(arg, ast.Name):
        share = loopvars.get(arg.id)
        if share is not None:
            return (share, "param")
        return (_Share.SHARED, "param")
    if isinstance(arg, ast.Subscript):
        env = {name: (share, "param") for name, share in loopvars.items()}
        if _index_is_unique(arg.slice, env):
            return (_Share.DISJOINT, "param")
        return (_Share.SHARED, "param")
    if isinstance(arg, ast.Call):
        return (_Share.DISJOINT, "param")
    if isinstance(arg, ast.Starred):
        return _classify_submit_arg(arg.value, loopvars)
    return (_Share.SHARED, "param")


# -- the interprocedural worker pass (TCAM010 / TCAM011 writes) --------------


def _child_env(
    defn: ast.FunctionDef | ast.AsyncFunctionDef,
    arg_bindings: Sequence[_Binding],
    kw_bindings: dict[str, _Binding],
    self_binding: _Binding | None,
) -> dict[str, _Binding]:
    """Bind a callee's parameters from the classified call arguments."""
    params = [a.arg for a in defn.args.posonlyargs] + [a.arg for a in defn.args.args]
    env: dict[str, _Binding] = {}
    start = 0
    if params and params[0] in ("self", "cls") and self_binding is not None:
        env[params[0]] = self_binding
        start = 1
    for name, binding in zip(params[start:], arg_bindings):
        env[name] = binding
    for name in [a.arg for a in defn.args.kwonlyargs] + params[start:]:
        if name in kw_bindings:
            env[name] = kw_bindings[name]
        env.setdefault(name, _LOCAL)
    if defn.args.vararg is not None:
        env[defn.args.vararg.arg] = _LOCAL
    if defn.args.kwarg is not None:
        env[defn.args.kwarg.arg] = _LOCAL
    return env


def _flag_worker_write(node: ast.AST, desc: str, origin: str, ctx: _Ctx) -> None:
    if origin == "param":
        ctx.emit(
            node,
            "TCAM011",
            f"worker '{ctx.func}' writes to '{desc}', an object every "
            "worker was handed; give each worker a disjoint buffer "
            "(e.g. buffers[worker])",
        )
    else:
        where = "self" if origin == "self" else "enclosing-scope"
        ctx.emit(
            node,
            "TCAM010",
            f"worker '{ctx.func}' writes to shared {where} state '{desc}' "
            "without block-disjoint indexing; give each worker its own "
            "slot and reduce in fixed order after the join",
        )


def _describe(node: ast.AST) -> str:
    chain = _attr_chain(node)
    if chain:
        return ".".join(chain)
    try:
        return ast.unparse(node)  # pragma: no cover - exotic targets only
    except Exception:  # pragma: no cover - defensive
        return "<expression>"


def _check_store_target(
    target: ast.AST, env: dict[str, _Binding], ctx: _Ctx
) -> None:
    """Flag a subscript/attribute store whose base is shared."""
    if isinstance(target, ast.Subscript):
        share, origin = _classify_expr(target.value, env)
        if share is _Share.SHARED and not _index_is_unique(target.slice, env):
            _flag_worker_write(target, _describe(target.value), origin, ctx)
    elif isinstance(target, ast.Attribute):
        share, origin = _classify_expr(target.value, env)
        if share is _Share.SHARED:
            _flag_worker_write(target, _describe(target), origin, ctx)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _check_store_target(element, env, ctx)
    elif isinstance(target, ast.Starred):
        _check_store_target(target.value, env, ctx)


def _check_expr(expr: ast.AST, env: dict[str, _Binding], ctx: _Ctx) -> None:
    """Check every call inside ``expr``: mutators, ``out=``, descent."""
    for node in ast.walk(expr):
        if not isinstance(node, ast.Call):
            continue
        leaf = _call_leaf(node.func)
        if isinstance(node.func, ast.Attribute):
            base_chain = _attr_chain(node.func.value)
            is_numpy = bool(base_chain) and base_chain[0] in ("np", "numpy")
            # numpy ufuncs (np.add, np.clip, ...) do not mutate the module
            # they hang off; their writes surface through the out= check.
            if node.func.attr in _WORKER_MUTATORS and not is_numpy:
                share, origin = _classify_expr(node.func.value, env)
                if share is _Share.SHARED:
                    _flag_worker_write(
                        node, _describe(node.func.value), origin, ctx
                    )
        out = _keyword(node, "out")
        if out is not None:
            share, origin = _classify_expr(out, env)
            if share is _Share.SHARED:
                _flag_worker_write(node, _describe(out), origin, ctx)
        if leaf:
            _descend_call(node, leaf, env, ctx)


def _descend_call(
    call: ast.Call, leaf: str, env: dict[str, _Binding], ctx: _Ctx
) -> None:
    """Follow a call into module-local definitions with mapped bindings."""
    defs = ctx.index.resolve(leaf)
    if not defs or ctx.depth >= _MAX_DEPTH:
        return
    arg_bindings = [_classify_expr(arg, env) for arg in call.args]
    kw_bindings = {
        kw.arg: _classify_expr(kw.value, env)
        for kw in call.keywords
        if kw.arg is not None
    }
    self_binding: _Binding | None = None
    if isinstance(call.func, ast.Attribute):
        self_binding = _classify_expr(call.func.value, env)
    for defn in defs:
        child = _child_env(defn, arg_bindings, kw_bindings, self_binding)
        _analyze_function(defn, child, ctx)


def _analyze_function(
    defn: ast.FunctionDef | ast.AsyncFunctionDef,
    env: dict[str, _Binding],
    ctx: _Ctx,
) -> None:
    """Analyze one function body reached from a pooled worker."""
    key = (
        id(defn),
        tuple(sorted((name, int(share)) for name, (share, _) in env.items())),
    )
    if key in ctx.visited:
        return
    ctx.visited.add(key)
    inner = replace(ctx, func=defn.name, depth=ctx.depth + 1)
    _process_body(defn.body, dict(env), inner)


def _process_body(
    body: Sequence[ast.stmt], env: dict[str, _Binding], ctx: _Ctx
) -> None:
    for stmt in body:
        _process_stmt(stmt, env, ctx)


def _bind_target(
    target: ast.AST, binding: _Binding, value: ast.AST | None, env: dict[str, _Binding]
) -> None:
    """Record what an assignment target now refers to."""
    if isinstance(target, ast.Name):
        env[target.id] = binding
    elif isinstance(target, (ast.Tuple, ast.List)):
        if (
            value is not None
            and isinstance(value, (ast.Tuple, ast.List))
            and len(value.elts) == len(target.elts)
        ):
            for element, sub_value in zip(target.elts, value.elts):
                _bind_target(element, _classify_expr(sub_value, env), sub_value, env)
        else:
            for element in target.elts:
                _bind_target(element, binding, None, env)
    elif isinstance(target, ast.Starred):
        _bind_target(target.value, binding, None, env)


def _process_stmt(stmt: ast.stmt, env: dict[str, _Binding], ctx: _Ctx) -> None:
    """Process one worker statement: bind names, check writes, descend."""
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        env[stmt.name] = _LOCAL
        return
    if isinstance(stmt, ast.Assign):
        _check_expr(stmt.value, env, ctx)
        binding = _classify_expr(stmt.value, env)
        for target in stmt.targets:
            _check_store_target(target, env, ctx)
            _bind_target(target, binding, stmt.value, env)
        return
    if isinstance(stmt, ast.AnnAssign):
        if stmt.value is not None:
            _check_expr(stmt.value, env, ctx)
            _check_store_target(stmt.target, env, ctx)
            _bind_target(stmt.target, _classify_expr(stmt.value, env), stmt.value, env)
        return
    if isinstance(stmt, ast.AugAssign):
        _check_expr(stmt.value, env, ctx)
        if isinstance(stmt.target, ast.Name):
            binding = env.get(stmt.target.id)
            if binding is not None and binding[0] is _Share.SHARED:
                _flag_worker_write(stmt.target, stmt.target.id, binding[1], ctx)
        else:
            _check_store_target(stmt.target, env, ctx)
        return
    if isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            _check_store_target(target, env, ctx)
        return
    if isinstance(stmt, ast.Expr):
        _check_expr(stmt.value, env, ctx)
        return
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        _check_expr(stmt.iter, env, ctx)
        _bind_target(stmt.target, _element_binding(stmt.iter, env), None, env)
        _process_body(stmt.body, env, ctx)
        _process_body(stmt.orelse, env, ctx)
        return
    if isinstance(stmt, ast.While):
        _check_expr(stmt.test, env, ctx)
        _process_body(stmt.body, env, ctx)
        _process_body(stmt.orelse, env, ctx)
        return
    if isinstance(stmt, ast.If):
        _check_expr(stmt.test, env, ctx)
        _process_body(stmt.body, env, ctx)
        _process_body(stmt.orelse, env, ctx)
        return
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            _check_expr(item.context_expr, env, ctx)
            if item.optional_vars is not None:
                _bind_target(
                    item.optional_vars,
                    _classify_expr(item.context_expr, env),
                    None,
                    env,
                )
        _process_body(stmt.body, env, ctx)
        return
    if isinstance(stmt, ast.Try):
        _process_body(stmt.body, env, ctx)
        for handler in stmt.handlers:
            if handler.name is not None:
                env[handler.name] = _LOCAL
            _process_body(handler.body, env, ctx)
        _process_body(stmt.orelse, env, ctx)
        _process_body(stmt.finalbody, env, ctx)
        return
    if isinstance(stmt, ast.Return) and stmt.value is not None:
        _check_expr(stmt.value, env, ctx)
        return
    if isinstance(stmt, ast.Raise):
        if stmt.exc is not None:
            _check_expr(stmt.exc, env, ctx)
        return
    if isinstance(stmt, ast.Assert):
        _check_expr(stmt.test, env, ctx)
        return


def _check_workers(tree: ast.Module, emit: _Emitter) -> None:
    """TCAM010/TCAM011: analyze every pooled callable or process entrypoint."""
    index = _FunctionIndex(tree)
    for call, loopvars in _iter_worker_roots(tree):
        spawn_callable = _spawn_target(call)
        if spawn_callable is not None:
            callable_expr = spawn_callable
            arg_exprs, kw_exprs = _spawn_arg_exprs(call)
        elif call.args:
            callable_expr = call.args[0]
            arg_exprs = list(call.args[1:])
            kw_exprs = {
                kw.arg: kw.value for kw in call.keywords if kw.arg is not None
            }
        else:
            continue
        leaf = _call_leaf(callable_expr)
        if not leaf:
            continue  # lambdas/partials: not descended into (see module doc)
        defs = index.resolve(leaf)
        if not defs:
            continue
        arg_bindings = [
            _classify_submit_arg(arg, loopvars) for arg in arg_exprs
        ]
        kw_bindings = {
            name: _classify_submit_arg(value, loopvars)
            for name, value in kw_exprs.items()
        }
        self_binding: _Binding | None = None
        if isinstance(callable_expr, ast.Attribute):
            chain = _attr_chain(callable_expr.value)
            origin = "self" if chain and chain[0] == "self" else "param"
            self_binding = (_Share.SHARED, origin)
        ctx = _Ctx(index=index, emit=emit, func=leaf, depth=0, visited=set())
        for defn in defs:
            child = _child_env(defn, arg_bindings, kw_bindings, self_binding)
            _analyze_function(defn, child, ctx)


# -- TCAM011: aliasing buffer-list construction ------------------------------


def _module_uses_pool(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "submit":
                return True
        if isinstance(node, ast.Name) and node.id in ("ThreadPoolExecutor", "Process"):
            return True
        if isinstance(node, ast.Attribute) and node.attr in (
            "ThreadPoolExecutor",
            "Process",
        ):
            return True
    return False


def _is_replicating_operand(node: ast.AST) -> bool:
    """A list/tuple display containing object references (not literals)."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return False
    return any(
        isinstance(element, (ast.Name, ast.Attribute)) for element in node.elts
    )


def _check_replicated_buffers(tree: ast.Module, emit: _Emitter) -> None:
    """TCAM011: ``[buf] * n`` / ``[buf for _ in ...]`` alias one object."""
    if not _module_uses_pool(tree):
        return
    message = (
        "replicating one object across a worker buffer list aliases every "
        "worker's workspace; construct a fresh buffer per worker"
    )
    for node in ast.walk(tree):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
            if _is_replicating_operand(node.left) or _is_replicating_operand(node.right):
                emit(node, "TCAM011", message)
        elif isinstance(node, ast.ListComp):
            if not isinstance(node.elt, (ast.Name, ast.Attribute)):
                continue
            chain = _attr_chain(node.elt)
            root = chain[0] if chain else ""
            bound: set[str] = set()
            for gen in node.generators:
                bound.update(_target_names(gen.target))
            if root and root not in bound:
                emit(node.elt, "TCAM011", message)


# -- TCAM012: unlocked serving-layer mutation --------------------------------


def _is_serving_path(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return normalized.endswith(_SERVING_PATH_SUFFIXES)


def _is_lock_guard(item: ast.withitem) -> bool:
    for sub in ast.walk(item.context_expr):
        if isinstance(sub, ast.Name) and "lock" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "lock" in sub.attr.lower():
            return True
    return False


def _self_rooted(node: ast.AST) -> bool:
    chain = _attr_chain(node)
    return bool(chain) and chain[0] == "self"


def _scan_serving_stmts(
    stmts: Sequence[ast.stmt], method: str, emit: _Emitter
) -> None:
    """Flag unlocked self-rooted container mutation in serving methods."""

    def flag(node: ast.AST, desc: str) -> None:
        emit(
            node,
            "TCAM012",
            f"'{method}' mutates shared serving state '{desc}' without a "
            "lock; guard it with the instance lock or document a "
            "single-writer contract in the class docstring",
        )

    def check_stmt(stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript) and _self_rooted(target.value):
                    flag(target, _describe(target.value))
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Attribute) and _self_rooted(stmt.target):
                flag(stmt.target, _describe(stmt.target))
            elif isinstance(stmt.target, ast.Subscript) and _self_rooted(
                stmt.target.value
            ):
                flag(stmt.target, _describe(stmt.target.value))
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript) and _self_rooted(target.value):
                    flag(target, _describe(target.value))
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _DICT_MUTATORS
                and _self_rooted(node.func.value)
            ):
                flag(node, _describe(node.func.value))

    def scan(body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                if any(_is_lock_guard(item) for item in stmt.items):
                    continue  # everything under the lock is accounted for
                scan(stmt.body)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                check_stmt(stmt)
                scan(stmt.body)
                scan(stmt.orelse)
                continue
            if isinstance(stmt, ast.If):
                check_stmt(stmt)
                scan(stmt.body)
                scan(stmt.orelse)
                continue
            if isinstance(stmt, ast.Try):
                scan(stmt.body)
                for handler in stmt.handlers:
                    scan(handler.body)
                scan(stmt.orelse)
                scan(stmt.finalbody)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scan(stmt.body)
                continue
            check_stmt(stmt)

    scan(stmts)


def _check_serving_mutation(tree: ast.Module, path: str, emit: _Emitter) -> None:
    """TCAM012: serving-layer classes must lock or document their writes."""
    if not _is_serving_path(path):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        class_doc = ast.get_docstring(node)
        if class_doc and _CONTRACT_RE.search(class_doc):
            continue
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue  # construction happens-before any sharing
            method_doc = ast.get_docstring(method)
            if method_doc and _CONTRACT_RE.search(method_doc):
                continue
            _scan_serving_stmts(
                method.body, f"{node.name}.{method.name}", emit
            )


# -- TCAM013: completion-order reductions ------------------------------------


def _mentions_as_completed(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "as_completed":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "as_completed":
            return True
    return False


_ACCUMULATORS = frozenset({"append", "extend", "add", "update", "insert"})


def _body_accumulates(body: Sequence[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ACCUMULATORS
            ):
                return True
    return False


def _check_unordered_reduce(tree: ast.Module, emit: _Emitter) -> None:
    """TCAM013: accumulating over ``as_completed`` depends on scheduling."""
    message = (
        "reduction over as_completed(...) folds worker results in "
        "completion order, which thread scheduling can permute; collect "
        "by index and reduce in fixed worker order instead"
    )
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _mentions_as_completed(node.iter) and _body_accumulates(node.body):
                emit(node.iter, "TCAM013", message)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                if _mentions_as_completed(gen.iter):
                    emit(gen.iter, "TCAM013", message)


# -- driver ------------------------------------------------------------------


def analyze_source(source: str, path: str = "<string>") -> list[Finding]:
    """Analyze a single module's source text and return its findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path, exc.lineno or 0, exc.offset or 0, "TCAM000", f"syntax error: {exc.msg}"
            )
        ]
    emit = _Emitter(path, source)
    _check_workers(tree, emit)
    _check_replicated_buffers(tree, emit)
    _check_serving_mutation(tree, path, emit)
    _check_unordered_reduce(tree, emit)
    unique = sorted(set(emit.findings), key=lambda f: (f.line, f.col, f.rule, f.message))
    return unique


def analyze_paths(paths: Sequence[str]) -> list[Finding]:
    """Analyze every ``.py`` file under the given files/directories."""
    findings: list[Finding] = []
    for file_path in _iter_python_files(paths):
        findings.extend(
            analyze_source(file_path.read_text(encoding="utf-8"), str(file_path))
        )
    return findings


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a shell exit status (0 clean, 1 findings)."""
    from .output import run_cli

    return run_cli(
        prog="tcam analyze",
        description="Static concurrency-race analyzer for the threaded EM "
        "engine and serving layer (rules TCAM010-TCAM013).",
        rules=RULES,
        collect=analyze_paths,
        argv=argv,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
