"""Static determinism & dtype-flow verifier (``tcam prove``).

Every layer built since PR 1 stakes its correctness on *bitwise*
contracts: checkpoint/resume identity, the fixed-order blocked
reduction, quantized selection equal to the float64 path, micro-batch
split invariance, WAL replay determinism.  The linter checks local
idioms, the race analyzer checks sharing discipline, the auditor checks
resource lifecycles — this fourth layer verifies the *determinism and
dtype discipline* of the numerical core itself.

The analyzer is rooted at functions carrying the zero-cost
:func:`repro.typing.bit_deterministic` marker and propagates through
their call graphs: any module-local function reachable (by bare-name
resolution, like the race analyzer's descent) from a marked function is
checked under the same contract.  ``@hot_path`` functions additionally
get the dtype-flow rule — a silent upcast is a hidden allocation there.

========  ==================================================================
TCAM030   Unordered iteration on a deterministic path.  Iterating a
          ``set``/``frozenset`` (literal, constructor, or a local bound
          to one), ``os.listdir``/``os.scandir``/``glob``/``iterdir``
          results, or ``as_completed`` — where the loop accumulates or
          emits a sequence, or where the unordered value feeds
          ``sum``/``list``/``tuple``/``join`` or a list/generator/dict
          comprehension.  Wrap the source in ``sorted(...)``.  (Dict
          iteration is insertion-ordered in Python ≥3.7 and exempt.)
TCAM031   Scheduling/machine-dependent float reduction order: folding
          worker results in ``as_completed``/``imap_unordered`` order,
          or deriving chunk/worker counts from ``cpu_count()`` inside
          the deterministic region (operand grouping then depends on
          the machine).  The blessed pattern is the engine's: a fixed
          block grid, partials collected in submission order
          (``[f.result() for f in futures]``), reduced in worker order.
TCAM032   ``np.argsort``/``np.sort`` without ``kind="stable"`` (or
          ``"mergesort"``).  numpy's default introsort permutes equal
          keys unpredictably across platforms, so any downstream order
          built from a sort of possibly-tied keys must pin the kind.
          ``sorted``/``list.sort``/``np.lexsort`` are stable by
          specification and exempt.
TCAM033   Dtype-flow: silent float64↔float32/float16 mixing in marked
          or ``@hot_path`` code.  Mixed-dtype binary ops upcast — a
          hidden allocation plus precision drift — and narrowing casts
          (``.astype(np.float32)``, ``np.float16(...)``) are only
          allowed through the blessed quantized-selection entry points
          (``recommend/quantize.py``) or an explicit suppression.
TCAM034   Wall-clock or unseeded entropy reaching deterministic state:
          ``time.time``/``time_ns``, ``datetime.now``, ``uuid1/4``,
          ``os.urandom``, ``secrets``, the ``random`` module, a
          zero-argument ``default_rng()``, and builtin ``hash()``
          (``PYTHONHASHSEED``-dependent for str/bytes).  Monotonic
          duration clocks (``perf_counter``/``monotonic``/
          ``process_time``) are diagnostics-only by contract and exempt.
TCAM035   Coverage: the documented contract functions (``run_em``, the
          blocked E-step, batch serving, the micro-batch worker loop,
          WAL replay, streaming fold-in/resume) must carry
          ``@bit_deterministic`` so the analyzer's roots cannot rot.
========  ==================================================================

Suppression reuses the linter's comment syntax: append
``# tcam-lint: disable=TCAM030`` (comma-separate several codes) to the
offending line; the real-tree meta-test keeps the tree at zero findings
so every suppression is visible in review.

Run as ``tcam prove [paths...]`` or ``python -m repro.tooling.determinism``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from .lint import (
    Finding,
    _attr_chain,
    _call_leaf,
    _decorator_names,
    _Emitter,
    _is_set_expr,
    _iter_python_files,
    _keyword,
    _target_names,
    _walk_own,
)
from .races import _FunctionIndex
from .registry import rules_for_tool

__all__ = [
    "RULES",
    "prove_source",
    "prove_paths",
    "main",
]

#: Rule code -> one-line summary, derived from the shared registry
#: (:mod:`repro.tooling.registry`).
RULES: dict[str, str] = rules_for_tool("prove")

#: Interprocedural descent budget below a ``@bit_deterministic`` root.
_MAX_DEPTH = 4

#: Call leaves whose results have no reproducible order (TCAM030).
_UNORDERED_PRODUCERS = frozenset(
    {"listdir", "scandir", "glob", "iglob", "rglob", "iterdir", "as_completed"}
)

#: Call leaves that impose a stable order on their argument.
_ORDERING_WRAPPERS = frozenset({"sorted", "lexsort"})

#: Order-sensitive consumers of an iterable's element order.
_ORDER_SENSITIVE_CALLS = frozenset({"sum", "list", "tuple", "fsum"})

#: Iterators whose element order follows completion, not submission.
_COMPLETION_ORDER_ITERS = frozenset({"as_completed", "imap_unordered"})

#: Mutating calls that make a loop body order-sensitive.
_ACCUMULATORS = frozenset({"append", "extend", "insert", "appendleft", "write"})

#: Float dtypes the dtype-flow rule tracks, by canonical name.
_FLOAT_DTYPES = frozenset({"float16", "float32", "float64"})

#: Narrow float dtypes — casting down to these needs a blessed route.
_NARROW_DTYPES = frozenset({"float16", "float32"})

#: Files allowed to narrow dtypes: the proven-margin quantized-selection
#: layer narrows by design (its error bound is the whole point).
_BLESSED_NARROWING_SUFFIXES = ("recommend/quantize.py",)

#: numpy binary ufuncs checked for mixed-dtype operands (TCAM033).
_BINARY_UFUNCS = frozenset(
    {"add", "subtract", "multiply", "divide", "true_divide", "dot", "matmul"}
)

#: Monotonic duration clocks: diagnostics-only by contract, exempt from
#: TCAM034 (they never reach persisted or served state).
_DURATION_CLOCKS = frozenset({"perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns", "process_time"})

#: Wall-clock / entropy call leaves flagged by TCAM034 when the chain
#: confirms the module (``time.time`` yes, ``self.time`` no).
_WALL_CLOCK_LEAVES = frozenset({"time", "time_ns", "ctime", "asctime"})
_DATETIME_LEAVES = frozenset({"now", "utcnow", "today"})
_ENTROPY_LEAVES = frozenset({"uuid1", "uuid4", "urandom", "getrandbits", "token_bytes", "token_hex", "token_urlsafe"})

#: The documented bitwise-contract functions (TCAM035): path suffix ->
#: qualified names that must carry ``@bit_deterministic``.  This is the
#: table that keeps the analyzer's roots honest — moving or renaming a
#: contract function without updating it fails the real-tree meta-test.
_CONTRACTS: dict[str, tuple[str, ...]] = {
    "core/em.py": ("run_em",),
    "core/engine.py": ("BlockedEStep.compute",),
    "recommend/recommender.py": ("TemporalRecommender.recommend_batch_with_status",),
    "serving_service/worker.py": ("serve_requests",),
    "streaming/wal.py": ("EventLog.read",),
    "streaming/ingestor.py": ("StreamIngestor.run", "StreamIngestor._try_resume"),
    "extensions/online.py": ("OnlineTTCAM.fold_in_user", "OnlineTTCAM.fold_in_interval"),
    "extensions/social.py": ("build_homophilous_graph",),
    "analysis/topics.py": ("match_topics",),
}


# -- scope collection and call-graph propagation ------------------------------


class _Scope:
    """One function definition plus its determinism/hot classification."""

    def __init__(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        deterministic: bool,
        hot: bool,
    ) -> None:
        self.node = node
        self.qualname = qualname
        self.deterministic = deterministic
        self.hot = hot
        #: Root qualname this scope's contract flows from (for messages).
        self.root = qualname if deterministic else ""


def _collect_scopes(tree: ast.Module) -> list[_Scope]:
    """Qualify every function and classify marker-decorated ones.

    ``deterministic``/``hot`` here reflect only the *lexical* evidence
    (decorator or enclosing marked function); call-graph reachability is
    layered on by :func:`_propagate`.
    """

    scopes: list[_Scope] = []

    def visit(node: ast.AST, prefix: str, det: bool, hot: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}" if prefix else child.name
                decorators = _decorator_names(child)
                child_det = det or "bit_deterministic" in decorators
                child_hot = hot or "hot_path" in decorators
                scopes.append(_Scope(child, qualname, child_det, child_hot))
                visit(child, f"{qualname}.<locals>.", child_det, child_hot)
            elif isinstance(child, ast.ClassDef):
                class_prefix = f"{prefix}{child.name}." if prefix else f"{child.name}."
                visit(child, class_prefix, det, hot)
            else:
                visit(child, prefix, det, hot)

    visit(tree, "", False, False)
    return scopes


def _propagate(scopes: list[_Scope], index: _FunctionIndex) -> None:
    """Mark every scope reachable from a deterministic root, breadth-first.

    Resolution is by bare callee name within the module (the race
    analyzer's over-approximation): ``self.kernel.accumulate(...)``
    descends into every ``accumulate`` defined in the file.  Cross-module
    calls are not followed — each module's contract functions carry
    their own marker (TCAM035 pins the documented ones).
    """

    by_node = {id(scope.node): scope for scope in scopes}
    frontier = [
        (scope, 0) for scope in scopes if scope.deterministic
    ]
    while frontier:
        scope, depth = frontier.pop()
        if depth >= _MAX_DEPTH:
            continue
        for node in _walk_own(scope.node):
            if not isinstance(node, ast.Call):
                continue
            leaf = _call_leaf(node.func)
            if not leaf:
                continue
            for defn in index.resolve(leaf):
                callee = by_node.get(id(defn))
                if callee is None or callee.deterministic:
                    continue
                callee.deterministic = True
                callee.root = scope.root or scope.qualname
                frontier.append((callee, depth + 1))


# -- small predicates ---------------------------------------------------------


def _is_unordered_expr(node: ast.AST, unordered_locals: set[str]) -> bool:
    """True when iterating ``node`` has no reproducible element order."""

    if _is_set_expr(node):
        return True
    if isinstance(node, ast.Name):
        return node.id in unordered_locals
    if isinstance(node, ast.Call):
        leaf = _call_leaf(node.func)
        if leaf in _ORDERING_WRAPPERS:
            return False
        if leaf in _UNORDERED_PRODUCERS:
            return True
        # ``set(...)``/``frozenset(...)`` are set exprs, handled above;
        # wrapping iterators propagate their argument's orderedness.
        if leaf in ("enumerate", "reversed", "iter", "list", "tuple"):
            return any(
                _is_unordered_expr(arg, unordered_locals) for arg in node.args
            )
    return False


def _unordered_locals(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound to a set or an unordered producer inside ``func``."""

    names: set[str] = set()
    for node in _walk_own(func):
        if isinstance(node, ast.Assign) and _is_unordered_expr(node.value, names):
            for target in node.targets:
                names.update(_target_names(target))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if _is_unordered_expr(node.value, names) and isinstance(
                node.target, ast.Name
            ):
                names.add(node.target.id)
    return names


def _accumulates_or_emits(body: Sequence[ast.stmt]) -> bool:
    """True when a loop body's effect depends on iteration order."""

    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign):
                return True
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ACCUMULATORS
            ):
                return True
    return False


def _iter_comprehension_sites(
    node: ast.AST,
) -> Iterator[tuple[ast.expr, str]]:
    """(iter expr, kind) for comprehensions that emit an ordered sequence.

    Set comprehensions are excluded (set in, set out — no order gained
    or lost); dict comprehensions are included because the resulting
    dict's insertion order *is* the unordered iteration order, which
    every later loop over it inherits.
    """

    if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
        kind = "list" if isinstance(node, ast.ListComp) else "generator"
        for gen in node.generators:
            yield gen.iter, kind
    elif isinstance(node, ast.DictComp):
        for gen in node.generators:
            yield gen.iter, "dict"


# -- TCAM030: unordered iteration ---------------------------------------------


def _check_unordered_iteration(scope: _Scope, emit: _Emitter) -> None:
    unordered = _unordered_locals(scope.node)
    where = f"deterministic path rooted at '{scope.root or scope.qualname}'"
    for node in _walk_own(scope.node):
        # Completion-order iterators (as_completed/imap_unordered) are
        # TCAM031's job — the scheduling-dependent-reduction rule gives
        # the precise fix — so they are skipped here to avoid dual flags.
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _mentions_completion_iter(node.iter):
                continue
            if _is_unordered_expr(node.iter, unordered) and _accumulates_or_emits(
                node.body
            ):
                emit(
                    node.iter,
                    "TCAM030",
                    f"iteration order of this set/directory listing is not "
                    f"reproducible and the loop accumulates ({where}); wrap "
                    "the source in sorted(...)",
                )
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for iter_expr, kind in _iter_comprehension_sites(node):
                if _mentions_completion_iter(iter_expr):
                    continue
                if _is_unordered_expr(iter_expr, unordered):
                    emit(
                        iter_expr,
                        "TCAM030",
                        f"{kind} comprehension over an unordered source emits "
                        f"a nondeterministic sequence ({where}); wrap the "
                        "source in sorted(...)",
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            leaf = _call_leaf(func)
            if (
                isinstance(func, ast.Name)
                and leaf in _ORDER_SENSITIVE_CALLS
                and node.args
                and not _mentions_completion_iter(node.args[0])
                and _is_unordered_expr(node.args[0], unordered)
            ):
                emit(
                    node.args[0],
                    "TCAM030",
                    f"{leaf}() over an unordered source folds elements in an "
                    f"unreproducible order ({where}); wrap the source in "
                    "sorted(...)",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "join"
                and node.args
                and _is_unordered_expr(node.args[0], unordered)
            ):
                emit(
                    node.args[0],
                    "TCAM030",
                    f"str.join over an unordered source emits a "
                    f"nondeterministic sequence ({where}); wrap the source "
                    "in sorted(...)",
                )


# -- TCAM031: scheduling-dependent reductions ---------------------------------


def _mentions_completion_iter(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and _call_leaf(sub.func) in _COMPLETION_ORDER_ITERS:
            return True
    return False


def _check_reduction_order(scope: _Scope, emit: _Emitter) -> None:
    where = f"deterministic path rooted at '{scope.root or scope.qualname}'"
    for node in _walk_own(scope.node):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _mentions_completion_iter(node.iter) and _accumulates_or_emits(
                node.body
            ):
                emit(
                    node.iter,
                    "TCAM031",
                    f"folding worker results in completion order makes the "
                    f"reduction depend on thread scheduling ({where}); "
                    "collect partials in submission order "
                    "([f.result() for f in futures]) and reduce in fixed "
                    "worker order",
                )
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                if _mentions_completion_iter(gen.iter):
                    emit(
                        gen.iter,
                        "TCAM031",
                        f"collecting worker results in completion order emits "
                        f"a scheduling-dependent sequence ({where}); iterate "
                        "the futures list in submission order instead",
                    )
        elif isinstance(node, ast.Call):
            leaf = _call_leaf(node.func)
            if (
                isinstance(node.func, ast.Name)
                and leaf in _ORDER_SENSITIVE_CALLS
                and node.args
                and _mentions_completion_iter(node.args[0])
            ):
                emit(
                    node.args[0],
                    "TCAM031",
                    f"{leaf}() over completion-ordered worker results depends "
                    f"on thread scheduling ({where}); collect partials in "
                    "submission order and reduce in fixed worker order",
                )
            elif leaf == "cpu_count":
                emit(
                    node,
                    "TCAM031",
                    f"cpu_count() inside the deterministic region makes the "
                    f"chunk/worker grid — and therefore the float reduction "
                    f"grouping — machine-dependent ({where}); resolve worker "
                    "counts in configuration, outside the marked boundary",
                )


# -- TCAM032: unstable sorts --------------------------------------------------


def _sort_kind_is_stable(call: ast.Call) -> bool:
    kind = _keyword(call, "kind")
    return isinstance(kind, ast.Constant) and kind.value in ("stable", "mergesort")


def _check_stable_sorts(scope: _Scope, emit: _Emitter) -> None:
    where = f"deterministic path rooted at '{scope.root or scope.qualname}'"
    for node in _walk_own(scope.node):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        leaf = _call_leaf(node.func)
        is_np_sort = (
            len(chain) == 2 and chain[0] in ("np", "numpy") and chain[1] == "sort"
        )
        is_argsort = leaf == "argsort"
        if (is_argsort or is_np_sort) and not _sort_kind_is_stable(node):
            name = "np.sort" if is_np_sort else "argsort"
            emit(
                node,
                "TCAM032",
                f"{name} without kind=\"stable\" permutes tied keys "
                f"unpredictably across platforms ({where}); pass "
                'kind="stable" so downstream order is contract-bearing',
            )


# -- TCAM033: dtype-flow ------------------------------------------------------


def _const_float_dtype(node: ast.AST | None) -> str | None:
    """Canonical float dtype named by an expression, if statically visible."""

    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value if node.value in _FLOAT_DTYPES else None
    chain = _attr_chain(node)
    if chain:
        leaf = chain[-1]
        if leaf in _FLOAT_DTYPES:
            return leaf
    return None


def _astype_dtype(call: ast.Call) -> str | None:
    """The target dtype of an ``.astype(...)`` call, if constant."""

    if not (isinstance(call.func, ast.Attribute) and call.func.attr == "astype"):
        return None
    target = call.args[0] if call.args else _keyword(call, "dtype")
    return _const_float_dtype(target)


def _call_result_dtype(node: ast.AST) -> str | None:
    """Float dtype of a call result, when the call spells it out."""

    if not isinstance(node, ast.Call):
        return None
    cast = _astype_dtype(node)
    if cast is not None:
        return cast
    chain = _attr_chain(node.func)
    if chain and chain[-1] in _FLOAT_DTYPES:
        return chain[-1]  # np.float32(x) constructor casts
    dtype_kw = _keyword(node, "dtype")
    return _const_float_dtype(dtype_kw)


#: Annotation names mapped to dtypes (the shared typing vocabulary).
_ANNOTATION_DTYPES = {"FloatArray": "float64"}


def _param_dtypes(func: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, str]:
    env: dict[str, str] = {}
    params = (
        list(func.args.posonlyargs) + list(func.args.args) + list(func.args.kwonlyargs)
    )
    for arg in params:
        if arg.annotation is None:
            continue
        chain = _attr_chain(arg.annotation)
        leaf = chain[-1] if chain else ""
        dtype = _ANNOTATION_DTYPES.get(leaf)
        if dtype is not None:
            env[arg.arg] = dtype
    return env


def _local_dtypes(func: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, str]:
    """Flow-insensitive name -> float dtype map for one function body.

    A name assigned two different visible dtypes is dropped (unknown),
    matching the flow-lite philosophy: only report what is certain.
    """

    env = _param_dtypes(func)
    poisoned: set[str] = set()
    for node in _walk_own(func):
        if not isinstance(node, ast.Assign):
            continue
        dtype = _call_result_dtype(node.value)
        for target in node.targets:
            for name in _target_names(target):
                if dtype is None:
                    continue
                if name in env and env[name] != dtype:
                    poisoned.add(name)
                env[name] = dtype
    for name in poisoned:
        env.pop(name, None)
    return env


def _expr_dtype(node: ast.AST, env: dict[str, str]) -> str | None:
    if isinstance(node, ast.Name):
        return env.get(node.id)
    result = _call_result_dtype(node)
    if result is not None:
        return result
    return None


def _check_dtype_flow(scope: _Scope, path: str, emit: _Emitter) -> None:
    normalized = path.replace("\\", "/")
    blessed_file = normalized.endswith(_BLESSED_NARROWING_SUFFIXES)
    env = _local_dtypes(scope.node)
    kind = "hot path" if scope.hot and not scope.deterministic else "deterministic path"
    where = f"{kind} '{scope.qualname}'"
    for node in _walk_own(scope.node):
        if not isinstance(node, (ast.Call, ast.BinOp)):
            continue
        if isinstance(node, ast.BinOp):
            left = _expr_dtype(node.left, env)
            right = _expr_dtype(node.right, env)
            if left is not None and right is not None and left != right:
                emit(
                    node,
                    "TCAM033",
                    f"mixed float dtypes ({left} vs {right}) in a binary op "
                    f"silently upcast — hidden allocation plus precision "
                    f"drift on the {where}; align the dtypes explicitly",
                )
            continue
        cast = _astype_dtype(node)
        chain = _attr_chain(node.func)
        ctor = chain[-1] if chain and chain[-1] in _NARROW_DTYPES else None
        if (cast in _NARROW_DTYPES or ctor is not None) and not blessed_file:
            narrow = cast if cast in _NARROW_DTYPES else ctor
            emit(
                node,
                "TCAM033",
                f"narrowing cast to {narrow} on the {where} is not routed "
                "through the blessed quantized-selection entry points "
                "(repro.recommend.quantize); use the proven-margin path or "
                "suppress with a visible justification",
            )
            continue
        leaf = _call_leaf(node.func)
        if (
            leaf in _BINARY_UFUNCS
            and chain
            and chain[0] in ("np", "numpy")
            and len(node.args) >= 2
        ):
            first = _expr_dtype(node.args[0], env)
            second = _expr_dtype(node.args[1], env)
            if first is not None and second is not None and first != second:
                emit(
                    node,
                    "TCAM033",
                    f"np.{leaf} over mixed float dtypes ({first} vs {second}) "
                    f"silently upcasts on the {where}; align the dtypes "
                    "explicitly",
                )


# -- TCAM034: wall-clock / entropy --------------------------------------------


def _entropy_violation(call: ast.Call) -> str | None:
    """Describe the wall-clock/entropy source ``call`` taps, if any."""

    chain = _attr_chain(call.func)
    leaf = chain[-1] if chain else ""
    if isinstance(call.func, ast.Name):
        if call.func.id == "hash":
            return "builtin hash() is PYTHONHASHSEED-dependent for str/bytes"
        if call.func.id == "default_rng" and not call.args and not call.keywords:
            return "default_rng() without a seed draws OS entropy"
        return None
    if not chain or len(chain) < 2:
        return None
    root = chain[0]
    if leaf in _DURATION_CLOCKS:
        return None
    if root == "time" and leaf in _WALL_CLOCK_LEAVES:
        return f"time.{leaf}() reads the wall clock"
    if leaf in _DATETIME_LEAVES and any("date" in part for part in chain[:-1]):
        return f"{'.'.join(chain)}() reads the wall clock"
    if root == "uuid" and leaf in _ENTROPY_LEAVES:
        return f"uuid.{leaf}() draws wall-clock/OS entropy"
    if root == "os" and leaf == "urandom":
        return "os.urandom() draws OS entropy"
    if root == "secrets":
        return f"secrets.{leaf}() draws OS entropy"
    if root == "random" and len(chain) == 2:
        return f"random.{leaf}() uses the process-global unseeded RNG"
    if leaf == "default_rng" and not call.args and not call.keywords:
        return "default_rng() without a seed draws OS entropy"
    return None


def _check_entropy(scope: _Scope, emit: _Emitter) -> None:
    where = f"deterministic path rooted at '{scope.root or scope.qualname}'"
    for node in _walk_own(scope.node):
        if not isinstance(node, ast.Call):
            continue
        reason = _entropy_violation(node)
        if reason is not None:
            emit(
                node,
                "TCAM034",
                f"{reason}, so its value differs between bit-identical "
                f"replays ({where}); thread seeds/timestamps in from "
                "outside the deterministic boundary",
            )


# -- TCAM035: contract coverage -----------------------------------------------


def _contracts_for(path: str) -> tuple[str, ...]:
    normalized = path.replace("\\", "/")
    for suffix, qualnames in _CONTRACTS.items():
        if normalized.endswith(suffix):
            return qualnames
    return ()


def _check_coverage(
    tree: ast.Module, scopes: list[_Scope], path: str, emit: _Emitter
) -> None:
    required = _contracts_for(path)
    if not required:
        return
    by_qualname = {scope.qualname: scope for scope in scopes}
    for qualname in required:
        scope = by_qualname.get(qualname)
        if scope is None:
            emit(
                tree,
                "TCAM035",
                f"documented contract function '{qualname}' not found in "
                "this module; update the analyzer's contract table "
                "(repro.tooling.determinism._CONTRACTS) if it moved",
            )
        elif "bit_deterministic" not in _decorator_names(scope.node):
            emit(
                scope.node,
                "TCAM035",
                f"contract function '{qualname}' must carry "
                "@bit_deterministic — it anchors the bitwise-reproducibility "
                "contract the determinism analyzer is rooted at",
            )


# -- driver ------------------------------------------------------------------


def prove_source(source: str, path: str = "<string>") -> list[Finding]:
    """Verify a single module's source text and return its findings."""

    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path, exc.lineno or 0, exc.offset or 0, "TCAM000", f"syntax error: {exc.msg}"
            )
        ]
    emit = _Emitter(path, source)
    scopes = _collect_scopes(tree)
    _propagate(scopes, _FunctionIndex(tree))
    for scope in scopes:
        if scope.deterministic:
            _check_unordered_iteration(scope, emit)
            _check_reduction_order(scope, emit)
            _check_stable_sorts(scope, emit)
            _check_entropy(scope, emit)
        if scope.deterministic or scope.hot:
            _check_dtype_flow(scope, path, emit)
    _check_coverage(tree, scopes, path, emit)
    unique = sorted(set(emit.findings), key=lambda f: (f.line, f.col, f.rule, f.message))
    return unique


def prove_paths(paths: Sequence[str]) -> list[Finding]:
    """Verify every ``.py`` file under the given files/directories."""

    findings: list[Finding] = []
    for file_path in _iter_python_files(paths):
        findings.extend(
            prove_source(file_path.read_text(encoding="utf-8"), str(file_path))
        )
    return findings


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a shell exit status (0 clean, 1 findings)."""

    from .output import run_cli

    return run_cli(
        prog="tcam prove",
        description="Static determinism & dtype-flow verifier for the "
        "bitwise contracts (rules TCAM030-TCAM035).",
        rules=RULES,
        collect=prove_paths,
        argv=argv,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
