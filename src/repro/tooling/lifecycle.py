"""Static resource-lifecycle & crash-consistency analyzer (``tcam audit``).

PRs 6–8 made the TCAM reproduction a process that owns real OS state:
WAL segments and checkpoint renames (:mod:`repro.streaming.wal`,
:mod:`repro.robustness.checkpoint`), mmap ``ParamStore`` sidecars
(:mod:`repro.recommend.paramstore`), packed ``shared_memory`` snapshot
segments (:mod:`repro.serving_service.shared`), client sockets, and
spawned worker processes with duplex pipes.  The linter checks
in-process numerics and the race analyzer checks concurrent access;
this third layer checks that every acquired resource is *released* and
that the durability protocols the crash-safety tests assume are
actually followed at every publish site.

========  ==================================================================
TCAM020   Resource leak.  Every ``open``/``os.open``/``mmap``/``socket``/
          ``SharedMemory``/``Pipe``/``Pool`` acquisition must reach a
          release: a ``with`` block, a later ``close()``-family call, a
          ``finally``/``except`` release, or escape to an owner (returned,
          yielded, passed to a call, stored in a container, or assigned to
          a ``self.`` attribute of a class that verifiably releases that
          attribute in some method).  Constructors get a stricter ordering
          check: a call that can raise *between* an acquisition and the end
          of ``__init__`` must be protected by a handler that releases the
          already-acquired resources, or a failed construction leaks them
          (no owner object exists yet for anyone to close).
TCAM021   Atomic-publish protocol.  In durability-scoped modules an
          ``os.replace``/``os.rename`` publish must be preceded by an
          ``os.fsync`` of the written temp file in the same function, and
          followed by a directory fsync where the module's contract
          requires it — otherwise a crash can publish a truncated file.
TCAM022   Commit-record ordering.  In durability-scoped modules, writes to
          manifest/checksum/generation files must post-date a payload
          ``os.fsync`` in the call order: the commit record goes durable
          *after* the data it describes.
TCAM023   Shared-memory unlink ownership.  Only the creating side of a
          ``SharedMemory`` segment may ``unlink()``; attachers (opened via
          ``SharedMemory(name=...)`` or an ``attach*`` helper) may only
          ``close()`` — the resource-tracker contract from
          ``serving_service.shared``.
TCAM024   Process lifecycle.  Every spawned/started ``Process``/``Popen``
          must reach ``join()``/``wait()``/``communicate()`` (directly, in
          a ``finally``, or via a releasing owner class), and a process
          that is ``kill()``-ed or ``terminate()``-d must still be reaped
          afterwards in the same function, or it stays a zombie with its
          pipes open.
TCAM025   mmap use-after-close.  Arrays served off a ``ParamStore`` /
          ``SharedDerivedStore`` / ``np.load(..., mmap_mode=...)`` store
          must not be used after — or returned past — the store's
          ``close()``: the views die with the mapping.
========  ==================================================================

The analysis is deliberately *flow-lite*, like the race analyzer: it
reasons over statement order and block structure rather than a full
dataflow lattice.  Outside constructors, a release **anywhere later in
the same function** is accepted (the tree's error paths all use
``with``/``finally`` anyway); inside ``__init__`` the ordering check
above closes the constructor-failure hole the flow-insensitive pass
would miss.  Escape transfers ownership: once a resource is returned,
yielded, passed to another callable, stored in a container, or captured
by a nested function, the receiver is assumed responsible for it —
except ``self.`` attributes, whose owning class is checked for a
release of that exact attribute.

Suppression reuses the linter's comment syntax: append
``# tcam-lint: disable=TCAM020`` (comma-separate several codes) to the
offending line.

Run as ``tcam audit [paths...]`` or ``python -m repro.tooling.lifecycle``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from .lint import (
    Finding,
    _attr_chain,
    _call_leaf,
    _Emitter,
    _iter_python_files,
    _keyword,
    _target_names,
)
from .registry import rules_for_tool

__all__ = [
    "RULES",
    "audit_source",
    "audit_paths",
    "main",
]

#: Rule code -> one-line summary, derived from the shared registry
#: (:mod:`repro.tooling.registry`).
RULES: dict[str, str] = rules_for_tool("audit")

# -- rule configuration ------------------------------------------------------

#: Modules whose contract promises crash-safe publishes (TCAM021/022).
#: Matched as path suffixes after normalising ``\\`` to ``/``.
_DURABLE_SUFFIXES = (
    "robustness/checkpoint.py",
    "streaming/wal.py",
    "streaming/publisher.py",
    "recommend/paramstore.py",
    "core/serialize.py",
    "analysis/benchjson.py",
)

#: Durable modules whose contract additionally requires a directory
#: fsync after the rename (multi-file stores: the rename itself must be
#: durable before readers may rely on the directory entry).
_DIR_FSYNC_SUFFIXES = ("recommend/paramstore.py",)

#: Identifier substrings that mark a write target as a commit record.
_COMMIT_TOKENS = ("manifest", "checksum", "generation")

#: Release method names accepted per resource kind (TCAM020/024).
_RELEASERS: dict[str, frozenset[str]] = {
    "file": frozenset({"close"}),
    "fd": frozenset(),  # released via os.close(fd)
    "socket": frozenset({"close", "detach"}),
    "shm": frozenset({"close", "unlink"}),
    "mmap": frozenset({"close"}),
    "pipe": frozenset({"close"}),
    "pool": frozenset({"shutdown", "close", "terminate", "join"}),
    "process": frozenset({"join", "wait", "communicate"}),
}

#: Every method name that releases *some* tracked kind — used when
#: verifying that an owning class releases a ``self.`` attribute, where
#: the attribute's exact kind is already known from the acquisition.
_ALL_RELEASERS = frozenset().union(*_RELEASERS.values()) | {
    "terminate",
    "kill",
    "stop",
    "release",
    "__exit__",
}

#: Human-readable label per kind, used in messages.
_KIND_LABEL = {
    "file": "file handle",
    "fd": "file descriptor",
    "socket": "socket",
    "shm": "shared-memory segment",
    "mmap": "memory map",
    "pipe": "pipe connection",
    "pool": "worker pool",
    "process": "process",
}

#: Callables that construct lifecycle-tracked store objects (TCAM025).
_STORE_CONSTRUCTORS = frozenset(
    {"ParamStore", "SharedDerivedStore", "for_snapshot", "attach"}
)

#: Receivers whose ``kill``/``terminate`` is not a process handle.
_KILL_EXEMPT_ROOTS = frozenset({"os", "signal"})


def _rule_for(kind: str) -> str:
    return "TCAM024" if kind == "process" else "TCAM020"


# -- acquisition classification ---------------------------------------------


def _acquisition_kind(call: ast.Call) -> str | None:
    """Classify a call as a resource acquisition, or ``None``.

    ``Process(...)`` constructors are classified ``"process"`` but the
    leak pass only tracks them once ``.start()`` runs — an unstarted
    ``multiprocessing.Process`` holds no OS resources.  ``Popen`` spawns
    at construction and is live immediately.
    """

    func = call.func
    chain = _attr_chain(func)
    leaf = chain[-1] if chain else ""
    if isinstance(func, ast.Name):
        name = func.id
        if name == "open":
            return "file"
        if name in {"create_connection", "socket"}:
            return "socket"
        if name == "SharedMemory":
            return "shm"
        if name in {"Popen", "Process"}:
            return "process"
        if name in {"Pool", "ThreadPoolExecutor", "ProcessPoolExecutor"}:
            return "pool"
        if name == "Pipe":
            return "pipe"
        return None
    if len(chain) < 2:
        return None
    if chain[:2] == ["os", "open"]:
        return "fd"
    if leaf == "open":
        return "file"
    if leaf in {"create_connection", "socket"} and chain[0] == "socket":
        return "socket"
    if leaf == "SharedMemory":
        return "shm"
    if leaf == "mmap" and chain[0] == "mmap":
        return "mmap"
    if leaf in {"Process", "Popen"}:
        return "process"
    if leaf in {"Pool", "ThreadPoolExecutor", "ProcessPoolExecutor"}:
        return "pool"
    if leaf == "Pipe":
        return "pipe"
    return None


def _is_inert_process_ctor(call: ast.Call) -> bool:
    """``Process(...)`` (not ``Popen``) — no OS resource until started."""

    leaf = _call_leaf(call.func) or (
        call.func.id if isinstance(call.func, ast.Name) else ""
    )
    return leaf == "Process"


def _self_attr_targets(target: ast.AST) -> Iterator[str]:
    """Yield ``attr`` for each ``self.attr`` bound by an assignment target."""

    if isinstance(target, ast.Attribute):
        if isinstance(target.value, ast.Name) and target.value.id == "self":
            yield target.attr
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _self_attr_targets(element)


def _walk_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested defs or classes."""

    stack: list[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _nested_defs(root: ast.AST) -> Iterator[ast.AST]:
    """Yield the function/lambda definitions nested directly in ``root``'s scope."""

    stack: list[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            yield node
            continue
        if isinstance(node, ast.ClassDef):
            continue
        stack.extend(ast.iter_child_nodes(node))


# -- module index ------------------------------------------------------------


@dataclass
class _Scope:
    """One analysed scope: a function/method, or the module top level."""

    node: ast.AST  # FunctionDef | AsyncFunctionDef | Module
    qualname: str
    cls: ast.ClassDef | None = None

    @property
    def is_init(self) -> bool:
        return isinstance(self.node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
            self.node.name == "__init__"
        )


class _ModuleIndex:
    """Parent links, scope list, and per-class release facts for one module."""

    def __init__(self, tree: ast.Module) -> None:
        self.tree = tree
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self.scopes: list[_Scope] = [_Scope(tree, "<module>")]
        self._collect(tree, "", None)
        #: class node -> attribute names some method verifiably releases.
        self.released_attrs: dict[ast.ClassDef, set[str]] = {}
        #: class node -> attribute names assigned from attach-origin values.
        self.attach_attrs: dict[ast.ClassDef, set[str]] = {}
        for scope in self.scopes:
            if scope.cls is None:
                continue
            released = self.released_attrs.setdefault(scope.cls, set())
            for node in _walk_scope(scope.node):
                if not isinstance(node, ast.Call):
                    continue
                chain = _attr_chain(node.func)
                if len(chain) == 3 and chain[0] == "self" and chain[2] in _ALL_RELEASERS:
                    released.add(chain[1])
                elif chain[:2] == ["os", "close"] and node.args:
                    arg_chain = _attr_chain(node.args[0])
                    if len(arg_chain) == 2 and arg_chain[0] == "self":
                        released.add(arg_chain[1])

    def _collect(self, node: ast.AST, prefix: str, cls: ast.ClassDef | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}" if prefix else child.name
                self.scopes.append(_Scope(child, qualname, cls))
                self._collect(child, f"{qualname}.<locals>.", None)
            elif isinstance(child, ast.ClassDef):
                class_prefix = f"{prefix}{child.name}." if prefix else f"{child.name}."
                self._collect(child, class_prefix, child)
            else:
                self._collect(child, prefix, cls)


# -- TCAM020 / TCAM024: resource leaks ---------------------------------------


def _binding_of(call: ast.Call, index: _ModuleIndex) -> tuple[str, tuple[str, ...], tuple[str, ...]]:
    """How an acquisition's result is consumed.

    Returns ``(mode, names, self_attrs)`` where mode is one of ``with``
    (context-managed), ``escape`` (ownership handed off), ``bound``
    (assigned to locals / ``self.`` attributes), ``drop`` (discarded
    expression statement), or ``temp`` (a method is called on the fresh
    resource and only that result is kept).
    """

    node: ast.AST = call
    through_call = False
    through_attr = False
    while True:
        parent = index.parents.get(node)
        if parent is None:
            return "escape", (), ()
        if isinstance(parent, ast.withitem):
            return "with", (), ()
        if isinstance(parent, ast.Call):
            if node is not parent.func:
                through_call = True
            node = parent
            continue
        if isinstance(parent, ast.Attribute):
            through_attr = True
            node = parent
            continue
        if isinstance(parent, (ast.Tuple, ast.List, ast.Set, ast.Dict, ast.Starred)):
            # Stored into a container literal: the container owns it.
            through_call = True
            node = parent
            continue
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom, ast.Await)):
            return "escape", (), ()
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            if through_attr:
                return "temp", (), ()
            if through_call:
                return "escape", (), ()
            targets = (
                parent.targets if isinstance(parent, ast.Assign) else [parent.target]
            )
            names: list[str] = []
            attrs: list[str] = []
            for target in targets:
                names.extend(_target_names(target))
                attrs.extend(_self_attr_targets(target))
            if names or attrs:
                return "bound", tuple(names), tuple(attrs)
            return "escape", (), ()
        if isinstance(parent, ast.Expr):
            if through_call:
                return "escape", (), ()
            return "temp" if through_attr else "drop", (), ()
        if isinstance(parent, ast.comprehension):
            return "escape", (), ()
        node = parent


@dataclass
class _Tracked:
    """One acquisition bound to a local name within a scope."""

    name: str
    kind: str
    node: ast.Call
    released: bool = False
    escaped: bool = False
    self_attrs: set[str] = field(default_factory=set)


def _receiver_of(chain: list[str]) -> str:
    """``["self", "_sock", "makefile"]`` -> ``"self._sock"``."""

    return ".".join(chain[:-1])


def _release_targets(node: ast.AST) -> Iterator[tuple[str, str]]:
    """Yield ``(receiver, method)`` for release-shaped calls under ``node``."""

    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        chain = _attr_chain(sub.func)
        if len(chain) >= 2 and chain[-1] in _ALL_RELEASERS:
            yield _receiver_of(chain), chain[-1]
        elif chain[:2] == ["os", "close"] and sub.args:
            arg = ".".join(_attr_chain(sub.args[0]))
            if arg:
                yield arg, "close"


def _escaping_names(expr: ast.expr) -> Iterator[str]:
    """Names whose *object* flows out of ``expr`` structurally.

    ``return handle`` escapes the handle; ``return handle.read().hex()``
    does not — the call result is new data and the handle still needs a
    release. Call arguments are deliberately excluded here: the generic
    call-argument branch of the fate scan already marks them escaped.
    """

    if isinstance(expr, ast.Name):
        yield expr.id
    elif isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        for elt in expr.elts:
            yield from _escaping_names(elt)
    elif isinstance(expr, ast.Dict):
        for part in (*expr.keys, *expr.values):
            if part is not None:
                yield from _escaping_names(part)
    elif isinstance(expr, ast.Starred):
        yield from _escaping_names(expr.value)
    elif isinstance(expr, ast.IfExp):
        yield from _escaping_names(expr.body)
        yield from _escaping_names(expr.orelse)
    elif isinstance(expr, ast.BoolOp):
        for value in expr.values:
            yield from _escaping_names(value)
    elif isinstance(expr, (ast.NamedExpr, ast.Await)):
        yield from _escaping_names(expr.value)


def _scan_name_fates(scope: _Scope, tracked: list[_Tracked]) -> None:
    """Flow-lite fate scan: mark each tracked local released or escaped."""

    by_name: dict[str, list[_Tracked]] = {}
    for item in tracked:
        by_name.setdefault(item.name, []).append(item)
    if not by_name:
        return

    def mark(name: str, attr: str) -> None:
        for item in by_name.get(name, ()):
            setattr(item, attr, True)

    for node in _walk_scope(scope.node):
        if isinstance(node, ast.withitem):
            ctx = node.context_expr
            if isinstance(ctx, ast.Name):
                mark(ctx.id, "released")
            elif isinstance(ctx, ast.Call):
                for arg in ctx.args:
                    if isinstance(arg, ast.Name):
                        mark(arg.id, "escaped")
        elif isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if len(chain) == 2 and chain[0] in by_name:
                kinds = {item.kind for item in by_name[chain[0]]}
                releasers = frozenset().union(
                    *(_RELEASERS[kind] for kind in kinds)
                ) | {"terminate", "kill"}
                if chain[1] in releasers:
                    mark(chain[0], "released")
                    continue
            if chain[:2] == ["os", "close"] and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Name):
                    mark(arg.id, "released")
                    continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Name) and sub.id in by_name:
                        mark(sub.id, "escaped")
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = node.value
            if value is not None:
                for name in _escaping_names(value):
                    if name in by_name:
                        mark(name, "escaped")
        elif isinstance(node, ast.Assign):
            value_names = set(_escaping_names(node.value))
            hits = value_names & by_name.keys()
            if not hits:
                continue
            for target in node.targets:
                attrs = list(_self_attr_targets(target))
                if attrs:
                    for name in hits:
                        for item in by_name[name]:
                            item.self_attrs.update(attrs)
                elif isinstance(target, (ast.Attribute, ast.Subscript)):
                    for name in hits:
                        mark(name, "escaped")
                elif isinstance(target, ast.Name) and target.id not in by_name:
                    # Aliased to another local; treat as a handoff.
                    for name in hits:
                        mark(name, "escaped")

    # A nested def capturing the name may own its release (callbacks).
    for nested in _nested_defs(scope.node):
        for sub in ast.walk(nested):
            if isinstance(sub, ast.Name) and sub.id in by_name:
                mark(sub.id, "escaped")


def _started_process_names(scope: _Scope) -> set[str]:
    """Receivers (``proc`` / ``self.process``) seeing a ``.start()`` call."""

    started: set[str] = set()
    for node in _walk_scope(scope.node):
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if len(chain) >= 2 and chain[-1] == "start":
                started.add(_receiver_of(chain))
    return started


def _ownership_ok(index: _ModuleIndex, scope: _Scope, attr: str) -> bool:
    """True when ``self.attr`` is released by some method of the class."""

    if scope.cls is None:
        return True  # not a method; cannot resolve the owner — assume handoff
    return attr in index.released_attrs.get(scope.cls, set())


def _check_leaks(index: _ModuleIndex, emit: _Emitter) -> None:
    """TCAM020/TCAM024: every acquisition reaches a release or an owner."""

    for scope in index.scopes:
        tracked: list[_Tracked] = []
        started = _started_process_names(scope)
        for node in _walk_scope(scope.node):
            if not isinstance(node, ast.Call):
                continue
            kind = _acquisition_kind(node)
            if kind is None:
                continue
            mode, names, attrs = _binding_of(node, index)
            inert = kind == "process" and _is_inert_process_ctor(node)
            if mode in {"with", "escape"}:
                continue
            if mode in {"drop", "temp"}:
                if inert:
                    continue
                emit(
                    node,
                    _rule_for(kind),
                    f"{_KIND_LABEL[kind]} acquired and discarded without a "
                    "release; bind it and close it, or use a with block",
                )
                continue
            for name in names:
                if inert and name not in started:
                    continue  # constructed but never started: no OS resource
                tracked.append(_Tracked(name, kind, node))
            for attr in attrs:
                if inert and f"self.{attr}" not in started:
                    continue
                if not _ownership_ok(index, scope, attr):
                    cls_name = scope.cls.name if scope.cls is not None else "?"
                    emit(
                        node,
                        _rule_for(kind),
                        f"self.{attr} holds a {_KIND_LABEL[kind]} but no "
                        f"method of {cls_name} ever releases it; close/join "
                        "it in close()/shutdown()",
                    )
        _scan_name_fates(scope, tracked)
        for item in tracked:
            if item.released or item.escaped:
                continue
            if item.self_attrs:
                missing = [
                    attr
                    for attr in sorted(item.self_attrs)
                    if not _ownership_ok(index, scope, attr)
                ]
                if not missing:
                    continue
                cls_name = scope.cls.name if scope.cls is not None else "?"
                emit(
                    item.node,
                    _rule_for(item.kind),
                    f"'{item.name}' ({_KIND_LABEL[item.kind]}) is stored on "
                    f"self.{missing[0]} but no method of {cls_name} ever "
                    "releases it; close/join it in close()/shutdown()",
                )
                continue
            verb = "join() or terminate()" if item.kind == "process" else "close()"
            emit(
                item.node,
                _rule_for(item.kind),
                f"'{item.name}' ({_KIND_LABEL[item.kind]}) is never released "
                f"on any path; call {verb}, use a with block, or hand it to "
                "an owning object",
            )
        if scope.is_init:
            _check_init_ordering(index, scope, emit)


# -- constructor-failure ordering (part of TCAM020/024) ----------------------


def _check_init_ordering(index: _ModuleIndex, scope: _Scope, emit: _Emitter) -> None:
    """Flag fallible calls between an acquisition and ``__init__``'s end.

    ``__init__`` is the one place the flow-insensitive pass is blind: if
    construction fails after an acquisition, the half-built object is
    never returned, so the class's own ``close()`` can never run.  A
    *risky* call (a further acquisition, a ``.start()``, or any method
    on an already-acquired resource that is not itself a release) must
    therefore be wrapped in a ``try`` whose handler or ``finally``
    releases the live resources.
    """

    assert isinstance(scope.node, (ast.FunctionDef, ast.AsyncFunctionDef))
    live: dict[str, tuple[str, ast.Call]] = {}  # identifier -> (kind, acq site)
    #: identifier -> the set of identifiers aliasing the same resource
    #: (``self.conn = parent_conn`` makes the two share protection/release).
    groups: dict[str, set[str]] = {}
    flagged: set[str] = set()

    def covered(identifier: str, receivers: frozenset[str] | set[str]) -> bool:
        return any(alias in receivers for alias in groups.get(identifier, {identifier}))

    def releases_in(stmts: Sequence[ast.stmt]) -> set[str]:
        receivers: set[str] = set()
        for stmt in stmts:
            for receiver, _method in _release_targets(stmt):
                receivers.add(receiver)
        return receivers

    def scan_statement(stmt: ast.stmt, protected: frozenset[str]) -> None:
        if isinstance(stmt, ast.Try):
            shielded = releases_in(
                [s for handler in stmt.handlers for s in handler.body]
            ) | releases_in(stmt.finalbody)
            for sub in stmt.body + stmt.orelse:
                scan_statement(sub, protected | frozenset(shielded))
            for handler in stmt.handlers:
                for sub in handler.body:
                    scan_statement(sub, protected)
            for sub in stmt.finalbody:
                scan_statement(sub, protected)
            return
        calls = [node for node in _walk_scope(stmt) if isinstance(node, ast.Call)]
        # 1. risky calls endanger everything live and unprotected.
        for call in calls:
            chain = _attr_chain(call.func)
            leaf = chain[-1] if chain else (
                call.func.id if isinstance(call.func, ast.Name) else ""
            )
            receiver = _receiver_of(chain) if len(chain) >= 2 else ""
            risky = (
                _acquisition_kind(call) is not None
                or leaf == "start"
                or (receiver in live and leaf not in _ALL_RELEASERS)
            )
            if not risky:
                continue
            for identifier, (kind, acq) in list(live.items()):
                if covered(identifier, protected) or identifier in flagged:
                    continue
                emit(
                    call,
                    _rule_for(kind),
                    f"if this call raises, {identifier} "
                    f"({_KIND_LABEL[kind]} acquired at line {acq.lineno}) "
                    "leaks — the object is never constructed, so close() "
                    "can never run; release it in an except/finally",
                )
                flagged.add(identifier)
        # 2. then this statement's own acquisitions go live.
        for call in calls:
            kind = _acquisition_kind(call)
            if kind is None:
                continue
            mode, names, attrs = _binding_of(call, index)
            if mode != "bound":
                continue
            inert = kind == "process" and _is_inert_process_ctor(call)
            if inert:
                continue  # goes live at .start(), handled below
            bound = [*names, *(f"self.{attr}" for attr in attrs)]
            group = set(bound)
            for identifier in bound:
                live[identifier] = (kind, call)
                groups[identifier] = group
        # 3. a .start() makes the constructed process live.
        for call in calls:
            chain = _attr_chain(call.func)
            if len(chain) >= 2 and chain[-1] == "start":
                receiver = _receiver_of(chain)
                if receiver not in live:
                    live[receiver] = ("process", call)
                    groups[receiver] = {receiver}
        # 4. releases retire live entries (every alias of the receiver).
        for receiver, _method in _release_targets(stmt):
            for alias in groups.get(receiver, {receiver}):
                live.pop(alias, None)
        # 5. a self-assignment aliases a live local onto the instance.
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Name):
            source = stmt.value.id
            if source in live:
                for target in stmt.targets:
                    for attr in _self_attr_targets(target):
                        identifier = f"self.{attr}"
                        live[identifier] = live[source]
                        group = groups.setdefault(source, {source})
                        group.add(identifier)
                        groups[identifier] = group

    for stmt in scope.node.body:
        scan_statement(stmt, frozenset())


# -- TCAM024: kill without reap ----------------------------------------------


def _check_kill_reap(index: _ModuleIndex, emit: _Emitter) -> None:
    """A killed/terminated process must still be waited on afterwards."""

    for scope in index.scopes:
        kills: list[tuple[str, ast.Call]] = []
        reaps: list[tuple[str, int]] = []
        for node in _walk_scope(scope.node):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if len(chain) < 2 or chain[0] in _KILL_EXEMPT_ROOTS:
                continue
            receiver, leaf = _receiver_of(chain), chain[-1]
            if leaf in {"kill", "terminate"}:
                kills.append((receiver, node))
            elif leaf in {"wait", "join", "communicate"}:
                reaps.append((receiver, node.lineno))
        for receiver, call in kills:
            if any(r == receiver and line >= call.lineno for r, line in reaps):
                continue
            emit(
                call,
                "TCAM024",
                f"{receiver}.{_call_leaf(call.func)}() is never followed by "
                "a wait()/join()/communicate() on this path; the killed "
                "process stays a zombie and its pipes stay open",
            )


# -- TCAM021 / TCAM022: durability protocols ---------------------------------


def _is_durable(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(normalized.endswith(suffix) for suffix in _DURABLE_SUFFIXES)


def _needs_dir_fsync(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(normalized.endswith(suffix) for suffix in _DIR_FSYNC_SUFFIXES)


def _check_atomic_publish(index: _ModuleIndex, path: str, emit: _Emitter) -> None:
    """TCAM021: fsync before rename; directory fsync after where required."""

    if not _is_durable(path):
        return
    for scope in index.scopes:
        renames: list[ast.Call] = []
        fsync_lines: list[int] = []
        dir_fsync_lines: list[int] = []
        for node in _walk_scope(scope.node):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            leaf = chain[-1] if chain else (
                node.func.id if isinstance(node.func, ast.Name) else ""
            )
            if chain[:1] == ["os"] and leaf in {"replace", "rename"}:
                renames.append(node)
            elif chain[:2] == ["os", "fsync"]:
                fsync_lines.append(node.lineno)
            elif "fsync" in leaf and "dir" in leaf:
                dir_fsync_lines.append(node.lineno)
        for rename in renames:
            leaf = _call_leaf(rename.func)
            if not any(line < rename.lineno for line in fsync_lines):
                emit(
                    rename,
                    "TCAM021",
                    f"os.{leaf}() publishes a file that was never fsynced in "
                    f"'{scope.qualname}'; flush+os.fsync the temp handle "
                    "before the rename or a crash can publish a truncated "
                    "file",
                )
            if _needs_dir_fsync(path) and not any(
                line > rename.lineno for line in dir_fsync_lines
            ):
                emit(
                    rename,
                    "TCAM021",
                    f"os.{leaf}() in '{scope.qualname}' is not followed by a "
                    "directory fsync; this module's contract requires the "
                    "rename itself to be durable (fsync the parent directory)",
                )


def _mentions_commit_token(expr: ast.AST) -> str | None:
    """The commit-record token an expression's names mention, if any."""

    for sub in ast.walk(expr):
        words: list[str] = []
        if isinstance(sub, ast.Name):
            words.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            words.append(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            words.append(sub.value)
        for word in words:
            lowered = word.lower()
            for token in _COMMIT_TOKENS:
                if token in lowered:
                    return token
    return None


def _check_commit_order(index: _ModuleIndex, path: str, emit: _Emitter) -> None:
    """TCAM022: the commit record goes durable after the payload fsync."""

    if not _is_durable(path):
        return
    for scope in index.scopes:
        fsync_lines: list[int] = []
        commit_writes: list[tuple[ast.Call, str]] = []
        for node in _walk_scope(scope.node):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            leaf = chain[-1] if chain else (
                node.func.id if isinstance(node.func, ast.Name) else ""
            )
            if chain[:2] == ["os", "fsync"]:
                fsync_lines.append(node.lineno)
                continue
            target: ast.AST | None = None
            if leaf == "open" and node.args:
                # Only *writes* are commit records; reading a manifest back
                # carries no ordering obligation.
                mode = node.args[1] if len(node.args) > 1 else _keyword(node, "mode")
                if (
                    isinstance(mode, ast.Constant)
                    and isinstance(mode.value, str)
                    and any(flag in mode.value for flag in ("w", "a", "+", "x"))
                ):
                    target = node.args[0]
            elif leaf in {"write_text", "write_bytes"} and isinstance(
                node.func, ast.Attribute
            ):
                target = node.func.value
            if target is None:
                continue
            token = _mentions_commit_token(target)
            if token is not None:
                commit_writes.append((node, token))
        for node, token in commit_writes:
            if not any(line < node.lineno for line in fsync_lines):
                emit(
                    node,
                    "TCAM022",
                    f"the {token} commit record is written before any payload "
                    f"os.fsync in '{scope.qualname}'; fsync the data files "
                    "first so a crash never publishes a record describing "
                    "unsynced payload",
                )


# -- TCAM023: shared-memory unlink ownership ---------------------------------


def _is_attach_call(call: ast.Call) -> bool:
    """An attach-form acquisition: names an existing segment, or ``attach*``."""

    chain = _attr_chain(call.func)
    leaf = chain[-1] if chain else (
        call.func.id if isinstance(call.func, ast.Name) else ""
    )
    if leaf == "SharedMemory":
        create = _keyword(call, "create")
        if isinstance(create, ast.Constant) and create.value:
            return False
        return _keyword(call, "name") is not None
    return "attach" in leaf.lower()


def _collect_attach_attrs(index: _ModuleIndex) -> None:
    """Fill ``index.attach_attrs``: self attributes holding attached segments."""

    for scope in index.scopes:
        if scope.cls is None:
            continue
        attach_locals: set[str] = set()
        for node in _walk_scope(scope.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if _is_attach_call(node.value):
                    for target in node.targets:
                        attach_locals.update(_target_names(target))
        attrs = index.attach_attrs.setdefault(scope.cls, set())
        for node in _walk_scope(scope.node):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            attach_origin = (
                isinstance(value, ast.Call) and _is_attach_call(value)
            ) or (isinstance(value, ast.Name) and value.id in attach_locals)
            if not attach_origin:
                continue
            for target in node.targets:
                attrs.update(_self_attr_targets(target))


def _check_unlink_ownership(index: _ModuleIndex, emit: _Emitter) -> None:
    """TCAM023: attachers close; only the creating side unlinks."""

    _collect_attach_attrs(index)
    message = (
        "unlink() from the attaching side destroys the segment under the "
        "creator and every sibling attacher; attachers may only close() — "
        "the creating side owns the unlink"
    )
    for scope in index.scopes:
        attach_locals: set[str] = set()
        for node in _walk_scope(scope.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if _is_attach_call(node.value):
                    for target in node.targets:
                        attach_locals.update(_target_names(target))
        class_attrs = (
            index.attach_attrs.get(scope.cls, set()) if scope.cls is not None else set()
        )
        for node in _walk_scope(scope.node):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if not chain or chain[-1] != "unlink":
                continue
            if len(chain) == 2 and chain[0] in attach_locals:
                emit(node, "TCAM023", message)
            elif len(chain) == 3 and chain[0] == "self" and chain[1] in class_attrs:
                emit(node, "TCAM023", message)


# -- TCAM025: mmap use-after-close -------------------------------------------


def _is_store_call(call: ast.Call) -> bool:
    chain = _attr_chain(call.func)
    leaf = chain[-1] if chain else (
        call.func.id if isinstance(call.func, ast.Name) else ""
    )
    if leaf in _STORE_CONSTRUCTORS:
        return True
    if leaf == "load" and chain[:1] in (["np"], ["numpy"]):
        mmap_mode = _keyword(call, "mmap_mode")
        return mmap_mode is not None and not (
            isinstance(mmap_mode, ast.Constant) and mmap_mode.value is None
        )
    return False


def _view_roots(expr: ast.expr) -> Iterator[str]:
    """Names whose mmap pages may back the value of ``expr``.

    ``store.item_topic(k)`` and ``archive["theta"]`` hand out views onto
    the store's mapping, so the store is a root of both. A call whose
    receiver is *not* the store — ``np.array(store.item_topic(k))`` —
    returns fresh data: the copy idiom, deliberately not a view root.
    (Caveat: ``np.asarray`` may alias rather than copy; flow-lite treats
    any non-store-rooted call as a copy.)
    """

    if isinstance(expr, ast.Name):
        yield expr.id
    elif isinstance(expr, (ast.Attribute, ast.Subscript)):
        yield from _view_roots(expr.value)
    elif isinstance(expr, ast.Call):
        chain = _attr_chain(expr.func)
        if len(chain) >= 2:
            yield chain[0]
    elif isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        for elt in expr.elts:
            yield from _view_roots(elt)
    elif isinstance(expr, ast.IfExp):
        yield from _view_roots(expr.body)
        yield from _view_roots(expr.orelse)
    elif isinstance(expr, ast.BoolOp):
        for value in expr.values:
            yield from _view_roots(value)
    elif isinstance(expr, (ast.NamedExpr, ast.Await, ast.Starred)):
        yield from _view_roots(expr.value)


def _check_use_after_close(index: _ModuleIndex, emit: _Emitter) -> None:
    """TCAM025: mmap-backed views must not outlive their store."""

    for scope in index.scopes:
        stores: set[str] = set()
        derived: dict[str, str] = {}  # derived name -> owning store
        for node in _walk_scope(scope.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if _is_store_call(node.value):
                    for target in node.targets:
                        stores.update(_target_names(target))
            elif isinstance(node, ast.withitem):
                ctx = node.context_expr
                if (
                    isinstance(ctx, ast.Call)
                    and _is_store_call(ctx)
                    and isinstance(node.optional_vars, ast.Name)
                ):
                    stores.add(node.optional_vars.id)
        if not stores:
            continue
        for node in _walk_scope(scope.node):
            if not isinstance(node, ast.Assign):
                continue
            owners = set(_view_roots(node.value)) & stores
            if not owners:
                continue
            for target in node.targets:
                for name in _target_names(target):
                    if name not in stores:
                        derived[name] = sorted(owners)[0]

        close_lines: dict[str, int] = {}
        for node in _walk_scope(scope.node):
            if isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if len(chain) == 2 and chain[0] in stores and chain[1] == "close":
                    line = close_lines.get(chain[0])
                    close_lines[chain[0]] = (
                        node.lineno if line is None else min(line, node.lineno)
                    )

        # (a) statement-order use after close().
        for node in _walk_scope(scope.node):
            if not isinstance(node, ast.Name) or not isinstance(node.ctx, ast.Load):
                continue
            store = node.id if node.id in stores else derived.get(node.id)
            if store is None or store not in close_lines:
                continue
            if node.lineno > close_lines[store]:
                emit(
                    node,
                    "TCAM025",
                    f"'{node.id}' is backed by '{store}', which was closed at "
                    f"line {close_lines[store]}; the mmap views die with the "
                    "store — copy what you need before close()",
                )

        # (b) returning a view out of a scope whose finally/with closes it.
        def _flag_escaping_returns(body: Sequence[ast.stmt], store: str) -> None:
            for stmt in body:
                # _walk_scope yields children only, so include the statement
                # itself — a bare ``return view`` is the common violation.
                for sub in (stmt, *_walk_scope(stmt)):
                    if not isinstance(sub, ast.Return) or sub.value is None:
                        continue
                    for name in _view_roots(sub.value):
                        if name == store or derived.get(name) == store:
                            emit(
                                sub,
                                "TCAM025",
                                f"returning '{name}' escapes the scope "
                                f"that closes '{store}'; the caller receives "
                                "views onto an unmapped store — return a copy",
                            )
                            break

        for node in _walk_scope(scope.node):
            if isinstance(node, ast.Try):
                for receiver, method in _release_targets(
                    ast.Module(body=list(node.finalbody), type_ignores=[])
                ):
                    if method == "close" and receiver in stores:
                        _flag_escaping_returns(node.body, receiver)
            elif isinstance(node, ast.With):
                for item in node.items:
                    ctx = item.context_expr
                    store_name: str | None = None
                    if isinstance(ctx, ast.Name) and ctx.id in stores:
                        store_name = ctx.id
                    elif isinstance(ctx, ast.Call):
                        for arg in ctx.args:
                            if isinstance(arg, ast.Name) and arg.id in stores:
                                store_name = arg.id
                    if store_name is not None:
                        _flag_escaping_returns(node.body, store_name)


# -- driver ------------------------------------------------------------------


def audit_source(source: str, path: str = "<string>") -> list[Finding]:
    """Audit a single module's source text and return its findings."""

    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path, exc.lineno or 0, exc.offset or 0, "TCAM000", f"syntax error: {exc.msg}"
            )
        ]
    emit = _Emitter(path, source)
    index = _ModuleIndex(tree)
    _check_leaks(index, emit)
    _check_kill_reap(index, emit)
    _check_atomic_publish(index, path, emit)
    _check_commit_order(index, path, emit)
    _check_unlink_ownership(index, emit)
    _check_use_after_close(index, emit)
    return sorted(set(emit.findings), key=lambda f: (f.line, f.col, f.rule, f.message))


def audit_paths(paths: Sequence[str]) -> list[Finding]:
    """Audit every ``.py`` file under the given files/directories."""

    findings: list[Finding] = []
    for file_path in _iter_python_files(paths):
        findings.extend(
            audit_source(file_path.read_text(encoding="utf-8"), str(file_path))
        )
    return findings


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a shell exit status (0 clean, 1 findings)."""

    from .output import run_cli

    return run_cli(
        prog="tcam audit",
        description="Static resource-lifecycle and crash-consistency "
        "analyzer (rules TCAM020-TCAM025).",
        rules=RULES,
        collect=audit_paths,
        argv=argv,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
