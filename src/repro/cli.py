"""Command-line interface: ``tcam <command>``.

Covers the full offline/online loop from a shell:

* ``tcam generate`` — write a synthetic dataset profile to CSV;
* ``tcam info``     — Table-2 style statistics of a ratings file;
* ``tcam fit``      — train a TCAM variant and snapshot it to .npz;
* ``tcam recommend``— serve temporal top-k from a snapshot;
* ``tcam evaluate`` — run the paper's evaluation protocol on a file;
* ``tcam report``   — render a topic/influence report card for a
  snapshot against its training data;
* ``tcam lint``     — run the domain-aware linter (rules
  TCAM001–TCAM005, see ``docs/static-analysis.md``);
* ``tcam analyze``  — run the static concurrency-race analyzer (rules
  TCAM010–TCAM013, see ``docs/static-analysis.md``);
* ``tcam audit``    — run the resource-lifecycle and crash-consistency
  auditor (rules TCAM020–TCAM025, see ``docs/static-analysis.md``);
* ``tcam prove``    — run the static determinism & dtype-flow verifier
  for the bitwise contracts (rules TCAM030–TCAM035, see
  ``docs/static-analysis.md``);
* ``tcam stream``   — the crash-safe streaming loop
  (``docs/robustness.md``): ``append`` dense events to the durable
  event log, ``run`` the incremental ingestor against a snapshot, and
  inspect ``status`` of log and consumer checkpoints.

Every command works on plain CSV (``user,interval,item,score``), so the
CLI interoperates with any timestamped-rating export.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from .baselines import TimeTopicModel, UserTopicModel
from .core import ITCAM, TTCAM, EMEngineConfig, LoadedModel, save_params
from .data import generate, holdout_split, load_cuboid_csv, profile, save_cuboid_csv
from .data.profiles import PROFILES
from .evaluation import build_queries, evaluate_ranking
from .recommend import TemporalRecommender

_MODEL_CHOICES = ("ttcam", "itcam", "w-ttcam", "w-itcam", "ut", "tt")


def _build_model(
    name: str,
    k1: int,
    k2: int,
    iters: int,
    seed: int,
    engine: EMEngineConfig | None = None,
) -> TTCAM | ITCAM | UserTopicModel | TimeTopicModel:
    """Instantiate a model by CLI name."""
    if name == "ttcam":
        return TTCAM(k1, k2, max_iter=iters, seed=seed, engine=engine)
    if name == "w-ttcam":
        return TTCAM(k1, k2, max_iter=iters, weighted=True, seed=seed, engine=engine)
    if name == "itcam":
        return ITCAM(k1, max_iter=iters, seed=seed, engine=engine)
    if name == "w-itcam":
        return ITCAM(k1, max_iter=iters, weighted=True, seed=seed, engine=engine)
    if name == "ut":
        return UserTopicModel(num_topics=k1, max_iter=iters, seed=seed, engine=engine)
    if name == "tt":
        return TimeTopicModel(num_topics=k2, max_iter=iters, seed=seed, engine=engine)
    raise ValueError(f"unknown model {name!r}")


def _engine_config(args: argparse.Namespace) -> EMEngineConfig | None:
    """Build the blocked-engine config from ``--block-size``/``--threads``/``--sanitize``."""
    block_size = getattr(args, "block_size", None)
    threads = getattr(args, "threads", 1)
    sanitize = bool(getattr(args, "sanitize", False))
    if block_size is None and threads == 1 and not sanitize:
        return None
    return EMEngineConfig(block_size=block_size, threads=threads, sanitize=sanitize)


def cmd_generate(args: argparse.Namespace) -> int:
    """Write a synthetic dataset profile to CSV."""
    config = profile(args.profile, scale=args.scale, seed=args.seed)
    cuboid, _truth = generate(config)
    rows = save_cuboid_csv(cuboid, args.output)
    print(
        f"wrote {rows} ratings ({cuboid.num_users} users, "
        f"{cuboid.num_items} items, {cuboid.num_intervals} intervals) "
        f"to {args.output}"
    )
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    """Print Table-2 style statistics of a ratings CSV."""
    cuboid = load_cuboid_csv(args.input)
    print(f"users:     {cuboid.num_users}")
    print(f"items:     {cuboid.num_items}")
    print(f"intervals: {cuboid.num_intervals}")
    print(f"ratings:   {cuboid.nnz}")
    print(f"density:   {cuboid.density():.5f}")
    activity = cuboid.user_activity()
    print(f"ratings/user: mean {activity.mean():.1f}, median {np.median(activity):.0f}")
    return 0


def cmd_fit(args: argparse.Namespace) -> int:
    """Train a TCAM variant and snapshot it to .npz."""
    from .robustness import CheckpointManager

    if args.model in ("ut", "tt"):
        print("fit snapshots support the TCAM variants only", file=sys.stderr)
        return 2
    cuboid = load_cuboid_csv(args.input)
    model = _build_model(
        args.model, args.k1, args.k2, args.iters, args.seed, _engine_config(args)
    )
    checkpoint = resume_from = None
    if args.checkpoint_dir is not None:
        checkpoint = CheckpointManager(
            args.checkpoint_dir, every=args.checkpoint_every
        )
        if args.resume:
            resume_from = checkpoint
    elif args.resume:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    model.fit(
        cuboid,
        checkpoint=checkpoint,
        resume_from=resume_from,
        monitor=True if args.health_guard else None,
    )
    trace = model.trace_
    params = model.params_
    assert trace is not None and params is not None  # fit() always sets both
    path = save_params(params, args.output, mmap_layout=args.mmap_layout)
    lam = params.lambda_u
    print(
        f"fitted {model.name} in {trace.iterations} EM iterations "
        f"(log-likelihood {trace.final_log_likelihood:.1f})"
    )
    print(f"mean personal-interest influence λ̄ = {lam.mean():.3f}")
    print(f"snapshot written to {path}")
    if args.mmap_layout:
        from .recommend.paramstore import store_dir

        print(f"mmap sidecar written to {store_dir(path)}")
    return 0


def cmd_recommend(args: argparse.Namespace) -> int:
    """Serve temporal top-k from a snapshot, degrading to popularity."""
    from .robustness import ServingUnavailableError, SnapshotCorruptError

    fallbacks = []
    if args.fallback_input is not None:
        from .baselines import GlobalPopularity

        fallbacks.append(GlobalPopularity().fit(load_cuboid_csv(args.fallback_input)))
    try:
        recommender = TemporalRecommender.from_snapshot(
            args.model, method=args.engine, fallbacks=fallbacks, mmap=args.mmap
        )
    except SnapshotCorruptError as exc:
        print(f"snapshot unusable and no fallback given: {exc}", file=sys.stderr)
        return 2
    if args.batch_file is not None:
        return _recommend_batch_file(recommender, args)
    if args.serve_dtype != "float64":
        print(
            f"--select-dtype {args.serve_dtype} applies to --batch-file mode "
            "only; single queries always score in exact float64",
            file=sys.stderr,
        )
        return 2
    if args.user is None or args.interval is None:
        print(
            "either --batch-file or both --user and --interval are required",
            file=sys.stderr,
        )
        return 2
    if not fallbacks and recommender.model is not None:
        params = recommender.model.params_
        if not 0 <= args.user < params.num_users:
            print(
                f"user {args.user} out of range [0, {params.num_users})",
                file=sys.stderr,
            )
            return 2
        if not 0 <= args.interval < params.num_intervals:
            print(
                f"interval {args.interval} out of range "
                f"[0, {params.num_intervals})",
                file=sys.stderr,
            )
            return 2
    try:
        result, status = recommender.recommend_with_status(
            args.user, args.interval, k=args.k
        )
    except ServingUnavailableError as exc:
        print(f"serving unavailable: {exc}", file=sys.stderr)
        return 2
    for rank, rec in enumerate(result.recommendations, start=1):
        print(f"{rank:3d}. item {rec.item:6d}  score {rec.score:.6f}")
    if status.degraded:
        print(f"[DEGRADED: served by {status.served_by} — {status.reason}]")
    else:
        print(
            f"[{args.engine}: fully scored {result.items_scored} of "
            f"{recommender.model.params_.num_items} items]"
        )
    return 0


def _recommend_batch_file(recommender: TemporalRecommender, args: argparse.Namespace) -> int:
    """Serve a file of ``user,interval`` queries as one batch."""
    from .robustness import ServingUnavailableError

    if args.batch_file == "-":
        source, text = "<stdin>", sys.stdin.read()
    else:
        source, text = args.batch_file, Path(args.batch_file).read_text()
    queries: list[tuple[int, int]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            user, interval = line.split(",")[:2]
            queries.append((int(user), int(interval)))
        except ValueError:
            print(
                f"{source}:{lineno}: expected 'user,interval' with "
                f"integer fields, got {line!r}",
                file=sys.stderr,
            )
            return 2
    if not queries:
        print(f"no queries in {source}", file=sys.stderr)
        return 2
    try:
        results, statuses = recommender.recommend_batch_with_status(
            queries, k=args.k, dtype=args.serve_dtype, row_block=args.batch_size
        )
    except ServingUnavailableError as exc:
        print(f"serving unavailable: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"invalid batch request: {exc}", file=sys.stderr)
        return 2
    degraded = 0
    for (user, interval), result, status in zip(queries, results, statuses):
        items = " ".join(
            f"{rec.item}:{rec.score:.6f}" for rec in result.recommendations
        )
        tag = f"  [degraded: {status.served_by} — {status.reason}]" if status.degraded else ""
        print(f"({user},{interval}) {items}{tag}")
        degraded += int(status.degraded)
    cache = statuses[-1].cache
    print(
        f"[batch: {len(queries)} queries ({degraded} degraded), "
        f"dtype {args.serve_dtype}, cache hit-rate {cache.hit_rate:.2f}]"
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the process-parallel serving service until SIGTERM/SIGINT."""
    from .serving_service import ServiceConfig, run_service

    if args.workers < 1:
        print("--workers must be at least 1", file=sys.stderr)
        return 2
    if args.batch_deadline < 0:
        print("--batch-deadline must be >= 0 (milliseconds)", file=sys.stderr)
        return 2
    config = ServiceConfig(
        snapshot=args.model,
        host=args.host,
        port=args.port,
        workers=args.workers,
        mmap=args.mmap,
        serve_dtype=args.serve_dtype,
        max_batch=args.max_batch,
        batch_deadline_s=args.batch_deadline / 1000.0,
        generation_file=args.generation_file,
    )
    return run_service(config)


def cmd_evaluate(args: argparse.Namespace) -> int:
    """Run the holdout evaluation protocol on a ratings CSV."""
    cuboid = load_cuboid_csv(args.input)
    split = holdout_split(cuboid, seed=args.seed)
    queries = build_queries(split, max_queries=args.max_queries, seed=args.seed)
    model = _build_model(args.model, args.k1, args.k2, args.iters, args.seed)
    model.fit(split.train)
    ks = tuple(int(k) for k in args.ks.split(","))
    report = evaluate_ranking(model, queries, ks=ks)
    print(f"model: {model.name}; {report.num_queries} temporal queries")
    header = "metric    " + "".join(f"@{k:<7d}" for k in report.ks)
    print(header)
    for metric in ("precision", "ndcg", "f1"):
        row = f"{metric:10s}" + "".join(
            f"{report.at(metric, k):<8.4f}" for k in report.ks
        )
        print(row)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Render a topic/influence report card for a snapshot."""
    from .analysis.report import model_report
    from .core.params import TTCAMParameters
    from .data.cuboid import RatingCuboid

    model = LoadedModel.from_file(args.model)
    if not isinstance(model.params_, TTCAMParameters):
        print("report currently supports TTCAM snapshots only", file=sys.stderr)
        return 2
    cuboid = load_cuboid_csv(args.input)
    params = model.params_
    if (
        cuboid.num_items > params.num_items
        or cuboid.num_intervals > params.num_intervals
    ):
        print("ratings file exceeds the snapshot's dimensions", file=sys.stderr)
        return 2
    if (
        cuboid.num_items < params.num_items
        or cuboid.num_intervals < params.num_intervals
    ):
        # A CSV only names the items/intervals that appear in it; pad the
        # dimensions back to the snapshot's catalogue.
        cuboid = RatingCuboid(
            users=cuboid.users,
            intervals=cuboid.intervals,
            items=cuboid.items,
            scores=cuboid.scores,
            num_users=max(cuboid.num_users, params.num_users),
            num_intervals=params.num_intervals,
            num_items=params.num_items,
            user_index=cuboid.user_index,
            item_index=cuboid.item_index,
        )
    print(model_report(params, cuboid, max_topics=args.max_topics))
    return 0


def _tool_argv(args: argparse.Namespace) -> list[str]:
    """Re-assemble the shared static-analysis flags into a tool argv."""
    argv = list(args.paths)
    if args.list_rules:
        argv.append("--list-rules")
    if args.format != "text":
        argv.extend(["--format", args.format])
    if args.select:
        argv.extend(["--select", args.select])
    if args.ignore:
        argv.extend(["--ignore", args.ignore])
    if args.baseline:
        argv.extend(["--baseline", args.baseline])
    if args.write_baseline:
        argv.extend(["--write-baseline", args.write_baseline])
    return argv


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the domain-aware linter (rules TCAM001–TCAM005)."""
    from .tooling.lint import main as lint_main

    return lint_main(_tool_argv(args))


def cmd_analyze(args: argparse.Namespace) -> int:
    """Run the static concurrency-race analyzer (rules TCAM010–TCAM013)."""
    from .tooling.races import main as analyze_main

    return analyze_main(_tool_argv(args))


def cmd_audit(args: argparse.Namespace) -> int:
    """Run the resource-lifecycle auditor (rules TCAM020–TCAM025)."""
    from .tooling.lifecycle import main as audit_main

    return audit_main(_tool_argv(args))


def cmd_prove(args: argparse.Namespace) -> int:
    """Run the determinism & dtype-flow verifier (rules TCAM030–TCAM035)."""
    from .tooling.determinism import main as prove_main

    return prove_main(_tool_argv(args))


def _read_dense_events(path: Path) -> list[tuple[int, int, int, float]]:
    """Read dense ``user,interval,item[,score]`` rows from a CSV file."""
    import csv

    events: list[tuple[int, int, int, float]] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"user", "interval", "item"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            missing = sorted(required - set(reader.fieldnames or ()))
            raise SystemExit(f"error: {path} is missing columns {missing}")
        for row in reader:
            score = float(row["score"]) if row.get("score") else 1.0
            events.append(
                (int(row["user"]), int(row["interval"]), int(row["item"]), score)
            )
    return events


def cmd_stream_append(args: argparse.Namespace) -> int:
    """Durably append dense CSV events to a streaming event log."""
    from .streaming import EventLog, StreamEvent

    rows = _read_dense_events(Path(args.input))
    with EventLog(args.log, segment_events=args.segment_events) as log:
        before = log.next_offset
        offset = log.append(
            StreamEvent(user=u, interval=t, item=i, score=s) for u, t, i, s in rows
        )
    print(f"appended {offset - before} events; log now holds {offset}")
    return 0


def cmd_stream_run(args: argparse.Namespace) -> int:
    """Fold durable events into a fitted snapshot, crash-safely."""
    from .streaming import EventLog, StreamIngestor

    loaded = LoadedModel.from_file(args.snapshot)
    params = loaded.params_
    if not hasattr(params, "phi_time"):
        raise SystemExit("error: streaming ingestion needs a TTCAM snapshot")
    with EventLog(args.log) as log:
        ingestor = StreamIngestor(
            log,
            params,
            args.checkpoints,
            batch_events=args.batch_events,
            drift_threshold=args.drift_threshold,
            checkpoint_every=args.checkpoint_every,
        )
        report = ingestor.run(max_batches=args.max_batches)
        if report.batches:
            ingestor.checkpoint()
        if args.output is not None:
            final = save_params(ingestor.params, args.output)
            print(f"wrote folded snapshot to {final}")
    print(
        f"applied {report.applied} events in {report.batches} micro-batches "
        f"(skipped {report.skipped}, boundaries {report.boundaries}); "
        f"consumer offset {report.offset}"
    )
    return 0


def cmd_stream_status(args: argparse.Namespace) -> int:
    """Show the durable state of an event log and its consumer."""
    from .robustness import CheckpointManager
    from .streaming import EventLog

    with EventLog(args.log) as log:
        print(f"log: {log.next_offset} durable events in {len(log.segment_paths)} segment(s)")
    if args.checkpoints is not None:
        manager = CheckpointManager(args.checkpoints, prefix="stream")
        checkpoint = manager.latest()
        if checkpoint is None:
            print("consumer: no checkpoint yet (offset 0)")
        else:
            offset = checkpoint.meta.get("offset", 0)
            print(
                f"consumer: offset {offset} after {checkpoint.iteration} "
                f"micro-batches ({checkpoint.path})"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``tcam`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="tcam",
        description="Temporal context-aware user behavior modeling (SIGMOD 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="write a synthetic dataset to CSV")
    p_gen.add_argument("--profile", choices=sorted(PROFILES), default="digg")
    p_gen.add_argument("--scale", type=float, default=0.5)
    p_gen.add_argument("--seed", type=int, default=None)
    p_gen.add_argument("--output", required=True)
    p_gen.set_defaults(func=cmd_generate)

    p_info = sub.add_parser("info", help="statistics of a ratings CSV")
    p_info.add_argument("--input", required=True)
    p_info.set_defaults(func=cmd_info)

    p_fit = sub.add_parser("fit", help="train a model and snapshot it")
    p_fit.add_argument("--input", required=True)
    p_fit.add_argument("--model", choices=_MODEL_CHOICES, default="ttcam")
    p_fit.add_argument("--k1", type=int, default=10, help="user-oriented topics")
    p_fit.add_argument("--k2", type=int, default=10, help="time-oriented topics")
    p_fit.add_argument("--iters", type=int, default=60)
    p_fit.add_argument("--seed", type=int, default=0)
    p_fit.add_argument("--output", required=True)
    p_fit.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for periodic EM checkpoints",
    )
    p_fit.add_argument(
        "--checkpoint-every",
        type=int,
        default=5,
        help="checkpoint every N EM iterations",
    )
    p_fit.add_argument(
        "--resume",
        action="store_true",
        help="resume from the latest checkpoint in --checkpoint-dir",
    )
    p_fit.add_argument(
        "--health-guard",
        action="store_true",
        help="validate numerical invariants each iteration and roll back on violation",
    )
    p_fit.add_argument(
        "--block-size",
        type=int,
        default=None,
        help="run EM through the blocked engine with this many ratings per block",
    )
    p_fit.add_argument(
        "--threads",
        type=int,
        default=1,
        help="E-step worker threads for the blocked engine (implies it when > 1)",
    )
    p_fit.add_argument(
        "--sanitize",
        action="store_true",
        help="run the EM engine under the runtime sanitizer "
        "(write-disjointness, simplex and reduce-order checks)",
    )
    p_fit.add_argument(
        "--mmap-layout",
        action="store_true",
        help="also publish the memory-mapped sidecar layout "
        "(<output>.arrays/) so `tcam recommend --mmap` can page "
        "parameters instead of loading them eagerly",
    )
    p_fit.set_defaults(func=cmd_fit)

    p_rec = sub.add_parser("recommend", help="serve top-k from a snapshot")
    p_rec.add_argument("--model", required=True)
    p_rec.add_argument(
        "--user", type=int, default=None, help="querying user (single-query mode)"
    )
    p_rec.add_argument(
        "--interval", type=int, default=None, help="queried interval (single-query mode)"
    )
    p_rec.add_argument("-k", type=int, default=10)
    p_rec.add_argument(
        "--engine", choices=("ta", "batched-ta", "bf", "classic-ta"), default="ta"
    )
    p_rec.add_argument(
        "--fallback-input",
        default=None,
        help="ratings CSV used to fit a popularity fallback for degraded serving",
    )
    p_rec.add_argument(
        "--batch-file",
        default=None,
        help="CSV of user,interval pairs served as one batch via the GEMM "
        "engine; '-' reads the queries from stdin",
    )
    p_rec.add_argument(
        "--batch-size",
        type=int,
        default=64,
        help="queries scored per GEMM block in batch mode",
    )
    p_rec.add_argument(
        "--select-dtype",
        "--serve-dtype",
        dest="serve_dtype",
        choices=("float64", "float32", "float16", "int8"),
        default="float64",
        help="batch candidate-selection dtype: float64 is exact; float32 uses a "
        "fixed wider margin; float16/int8 quantize selection with a proven "
        "margin and stay bitwise identical to float64 (batch mode only)",
    )
    p_rec.add_argument(
        "--mmap",
        action="store_true",
        help="serve from the snapshot's memory-mapped sidecar layout "
        "(written by `tcam fit --mmap-layout`); parameters page in on "
        "demand instead of loading eagerly",
    )
    p_rec.set_defaults(func=cmd_recommend)

    p_serve = sub.add_parser(
        "serve",
        help="run the process-parallel TCP serving service on a snapshot",
    )
    p_serve.add_argument("--model", required=True, help="snapshot every worker opens")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7315, help="TCP port (0 picks a free port)"
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, help="worker process count (= user shards)"
    )
    p_serve.add_argument(
        "--batch-deadline",
        type=float,
        default=2.0,
        help="micro-batch flush deadline in milliseconds",
    )
    p_serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="micro-batch flush size in queries, per worker",
    )
    p_serve.add_argument(
        "--select-dtype",
        "--serve-dtype",
        dest="serve_dtype",
        choices=("float64", "float32", "float16", "int8"),
        default="float64",
        help="candidate-selection dtype workers score with",
    )
    p_serve.add_argument(
        "--mmap",
        action="store_true",
        help="serve through the snapshot's memory-mapped sidecar layout; "
        "workers then share one kernel page cache instead of per-process "
        "parameter copies",
    )
    p_serve.add_argument(
        "--generation-file",
        default=None,
        help="durable hot-swap record (default: <snapshot>.generation.json)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_eval = sub.add_parser("evaluate", help="run the evaluation protocol")
    p_eval.add_argument("--input", required=True)
    p_eval.add_argument("--model", choices=_MODEL_CHOICES, default="ttcam")
    p_eval.add_argument("--k1", type=int, default=10)
    p_eval.add_argument("--k2", type=int, default=10)
    p_eval.add_argument("--iters", type=int, default=60)
    p_eval.add_argument("--ks", default="1,5,10")
    p_eval.add_argument("--max-queries", type=int, default=300)
    p_eval.add_argument("--seed", type=int, default=0)
    p_eval.set_defaults(func=cmd_evaluate)

    p_report = sub.add_parser("report", help="topic/influence report card")
    p_report.add_argument("--model", required=True)
    p_report.add_argument("--input", required=True, help="training ratings CSV")
    p_report.add_argument("--max-topics", type=int, default=None)
    p_report.set_defaults(func=cmd_report)

    def _add_tool_parser(name: str, help_text: str, func) -> None:
        tool = sub.add_parser(name, help=help_text)
        tool.add_argument(
            "paths",
            nargs="*",
            default=[],
            help="files or directories (default: src/repro)",
        )
        tool.add_argument(
            "--list-rules",
            action="store_true",
            help="print the rule catalogue and exit",
        )
        tool.add_argument(
            "--format",
            choices=("text", "json", "sarif"),
            default="text",
            help="output format (json is stable-sorted for CI annotation; "
            "sarif is a 2.1.0 log for code-scanning upload)",
        )
        tool.add_argument(
            "--select", default="", help="comma-separated rule codes to keep"
        )
        tool.add_argument(
            "--ignore", default="", help="comma-separated rule codes to drop"
        )
        tool.add_argument(
            "--baseline",
            default="",
            metavar="FILE",
            help="recorded-findings file; only findings not in it are reported",
        )
        tool.add_argument(
            "--write-baseline",
            default="",
            metavar="FILE",
            help="record the current findings to FILE and exit 0",
        )
        tool.set_defaults(func=func)

    _add_tool_parser(
        "lint", "domain-aware lint (determinism/numerical-safety rules)", cmd_lint
    )
    _add_tool_parser(
        "analyze", "static concurrency-race analysis of the threaded layers", cmd_analyze
    )
    _add_tool_parser(
        "audit",
        "static resource-lifecycle and crash-consistency audit",
        cmd_audit,
    )
    _add_tool_parser(
        "prove",
        "static determinism & dtype-flow verification of the bitwise contracts",
        cmd_prove,
    )

    p_stream = sub.add_parser(
        "stream", help="crash-safe streaming ingestion (see docs/robustness.md)"
    )
    stream_sub = p_stream.add_subparsers(dest="stream_command", required=True)

    p_sa = stream_sub.add_parser(
        "append", help="durably append dense CSV events to the event log"
    )
    p_sa.add_argument("--log", required=True, help="event-log directory")
    p_sa.add_argument("--input", required=True, help="CSV with user,interval,item[,score]")
    p_sa.add_argument("--segment-events", type=int, default=4096)
    p_sa.set_defaults(func=cmd_stream_append)

    p_sr = stream_sub.add_parser(
        "run", help="fold durable events into a TTCAM snapshot"
    )
    p_sr.add_argument("--log", required=True, help="event-log directory")
    p_sr.add_argument("--snapshot", required=True, help="fitted TTCAM .npz snapshot")
    p_sr.add_argument("--checkpoints", required=True, help="consumer checkpoint directory")
    p_sr.add_argument("--output", default=None, help="write the folded snapshot here")
    p_sr.add_argument("--batch-events", type=int, default=256)
    p_sr.add_argument("--drift-threshold", type=float, default=0.85)
    p_sr.add_argument("--checkpoint-every", type=int, default=4)
    p_sr.add_argument("--max-batches", type=int, default=None)
    p_sr.set_defaults(func=cmd_stream_run)

    p_ss = stream_sub.add_parser(
        "status", help="durable event count and consumer offset"
    )
    p_ss.add_argument("--log", required=True, help="event-log directory")
    p_ss.add_argument("--checkpoints", default=None, help="consumer checkpoint directory")
    p_ss.set_defaults(func=cmd_stream_status)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
