"""User-Topic (UT) baseline — Section 5.2 of the paper.

An author-topic-style model (Michelson & Macskassy; Stoyanovich et al.)
that explains ratings purely from user interests, smoothed by a fixed
background item distribution:

``P(v | u) = λ_B · P(v | θ_B) + (1 − λ_B) · Σ_z P(z | θ_u) P(v | φ_z)``

The background ``θ_B`` is the empirical item frequency distribution and is
held fixed; ``λ_B`` is a hyper-parameter. Time is ignored entirely, which
is exactly why UT loses to TT on time-sensitive data (Digg) and wins on
taste-driven data (MovieLens) — the contrast Figure 6/7 highlights.
"""

from __future__ import annotations

import numpy as np

from ..core.em import (
    EPS,
    EMTrace,
    normalize_rows,
    prepare_fit_controls,
    random_stochastic,
    restore_state,
    run_em,
    scatter_sum,
)
from ..core.engine import BlockedEStep, EMEngineConfig, UserTopicKernel
from ..data.cuboid import RatingCuboid
from ..robustness.checkpoint import CheckpointManager
from ..robustness.health import HealthMonitor, rejitter_arrays

_STATE_KEYS = ("theta", "phi")


class UserTopicModel:
    """Topic model over user documents with background smoothing.

    Parameters
    ----------
    num_topics:
        Number of latent user-oriented topics.
    background_weight:
        ``λ_B``, the fixed probability of drawing from the background
        distribution instead of a user topic.
    max_iter, tol, smoothing, seed:
        EM controls matching the core models.
    engine:
        Optional :class:`~repro.core.engine.EMEngineConfig` running the
        E-step through the blocked execution engine, as in the core
        models.
    """

    def __init__(
        self,
        num_topics: int = 60,
        background_weight: float = 0.1,
        max_iter: int = 50,
        tol: float = 1e-5,
        smoothing: float = 1e-6,
        seed: int = 0,
        engine: EMEngineConfig | None = None,
    ) -> None:
        if num_topics <= 0:
            raise ValueError(f"num_topics must be positive, got {num_topics}")
        if not 0 <= background_weight < 1:
            raise ValueError(
                f"background_weight must be in [0, 1), got {background_weight}"
            )
        self.num_topics = num_topics
        self.background_weight = background_weight
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        self.seed = seed
        self.engine = engine
        self.theta_: np.ndarray | None = None  # (N, K)
        self.phi_: np.ndarray | None = None  # (K, V)
        self.background_: np.ndarray | None = None  # (V,)
        self.trace_: EMTrace | None = None

    @property
    def name(self) -> str:
        """Display name used in evaluation tables."""
        return "UT"

    def fit(
        self,
        cuboid: RatingCuboid,
        checkpoint: CheckpointManager | str | None = None,
        resume_from: CheckpointManager | str | None = None,
        monitor: HealthMonitor | bool | None = None,
    ) -> "UserTopicModel":
        """Fit user topics by EM over the (time-collapsed) cuboid.

        ``checkpoint``/``resume_from``/``monitor`` enable the same
        fault-tolerant runtime as :meth:`repro.core.ttcam.TTCAM.fit`.
        """
        if cuboid.nnz == 0:
            raise ValueError("cannot fit on an empty cuboid")
        n, _, v_dim = cuboid.shape
        k = self.num_topics
        u, v, c = cuboid.users, cuboid.items, cuboid.scores
        lam_b = self.background_weight

        popularity = cuboid.item_popularity()
        background = popularity / popularity.sum()

        meta = {"model": "ut", "k": k, "seed": self.seed}
        manager, restored, health = prepare_fit_controls(
            checkpoint, resume_from, monitor, self.default_monitor, meta
        )
        if restored is not None:
            state, start, trace = restore_state(restored, _STATE_KEYS)
        else:
            rng = np.random.default_rng(self.seed)
            state = {
                "theta": random_stochastic(rng, n, k),
                "phi": random_stochastic(rng, k, v_dim),
            }
            start, trace = 0, EMTrace()

        estep = (
            BlockedEStep(
                UserTopicKernel(
                    u,
                    cuboid.intervals,
                    v,
                    c,
                    cuboid.shape,
                    k,
                    background,
                    lam_b,
                    dtype=self.engine.dtype,
                ),
                self.engine,
            )
            if self.engine is not None
            else None
        )

        def engine_step(
            current: dict[str, np.ndarray],
        ) -> tuple[dict[str, np.ndarray], float]:
            """One EM iteration through the blocked execution engine."""
            stats, log_likelihood = estep.compute(current)
            updated = {
                "theta": normalize_rows(stats["theta_num"], self.smoothing),
                "phi": normalize_rows(stats["phi_num"].T, self.smoothing),
            }
            return updated, log_likelihood

        def step(
            current: dict[str, np.ndarray],
        ) -> tuple[dict[str, np.ndarray], float]:
            """One EM iteration over the time-collapsed cuboid."""
            theta, phi = current["theta"], current["phi"]
            joint = (1 - lam_b) * theta[u] * phi[:, v].T  # (R, K)
            p_topics = joint.sum(axis=1)
            denom = lam_b * background[v] + p_topics + EPS
            resp = joint / denom[:, None]
            log_likelihood = float(np.dot(c, np.log(denom)))
            c_resp = c[:, None] * resp
            updated = {
                "theta": normalize_rows(scatter_sum(u, c_resp, n), self.smoothing),
                "phi": normalize_rows(scatter_sum(v, c_resp, v_dim).T, self.smoothing),
            }
            return updated, log_likelihood

        state, trace = run_em(
            state,
            engine_step if estep is not None else step,
            max_iter=self.max_iter,
            tol=self.tol,
            trace=trace,
            start_iteration=start,
            checkpoints=manager,
            monitor=health,
            rejitter=self._rejitter,
        )

        self.theta_ = state["theta"]
        self.phi_ = state["phi"]
        self.background_ = background
        self.trace_ = trace
        return self

    def default_monitor(self) -> HealthMonitor:
        """The numerical-health invariants of a UT state."""
        return HealthMonitor(stochastic=_STATE_KEYS, no_collapse=("theta",))

    def _rejitter(
        self, state: dict[str, np.ndarray], recovery: int
    ) -> dict[str, np.ndarray]:
        """Seeded perturbation applied to a rolled-back state."""
        return rejitter_arrays(state, _STATE_KEYS, (), seed=self.seed + 7919 * recovery)

    def score_items(self, user: int, interval: int = 0) -> np.ndarray:
        """``P(v | u)`` for every item; the interval argument is ignored."""
        if self.theta_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        lam_b = self.background_weight
        return lam_b * self.background_ + (1 - lam_b) * (self.theta_[user] @ self.phi_)
