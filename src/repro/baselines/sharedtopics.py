"""Shared-topic-set TCAM variant (the TimeUserLDA-style design).

Section 2 of the paper criticises prior mixtures (TimeUserLDA, Diao et
al.; the social mixtures of Xu et al.) for using **one shared set of
topics** for both the user-interest and the temporal-context factors:
"the topics detected by their models look confusing and noisy since
they conflate both user interest and temporal context". TCAM's design
answer is two *distinct* topic sets (user-oriented φ and time-oriented
φ′).

This module implements the shared-set alternative so that design choice
becomes measurable: a mixture with the same ``s ~ Bernoulli(λ_u)``
switch, but both branches generate the item from a single topic set φ —
``s = 1``: ``z ~ θ_u``, ``s = 0``: ``z ~ θ′_t``, then ``v ~ φ_z``.

The ablation bench (`benchmarks/test_ablation_shared_topics.py`)
compares it against TTCAM on both accuracy and the temporal coherence
of the learned topics.
"""

from __future__ import annotations

import numpy as np

from ..core.em import EPS, EMTrace, normalize_rows, random_stochastic, scatter_sum, scatter_sum_1d
from ..data.cuboid import RatingCuboid


class SharedTopicsTCAM:
    """TCAM-style mixture with one topic set shared by both factors.

    Parameters
    ----------
    num_topics:
        Size of the single shared topic set.
    max_iter, tol, smoothing, seed:
        EM controls matching the core models.

    Attributes (after :meth:`fit`)
    ------------------------------
    theta_:
        ``(N, K)`` user interest over the shared topics.
    theta_time_:
        ``(T, K)`` temporal context over the same topics.
    phi_:
        ``(K, V)`` the shared topic–item distributions.
    lambda_:
        ``(N,)`` per-user mixing weights.
    """

    def __init__(
        self,
        num_topics: int = 60,
        max_iter: int = 50,
        tol: float = 1e-5,
        smoothing: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if num_topics <= 0:
            raise ValueError(f"num_topics must be positive, got {num_topics}")
        if max_iter <= 0:
            raise ValueError(f"max_iter must be positive, got {max_iter}")
        self.num_topics = num_topics
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        self.seed = seed
        self.theta_: np.ndarray | None = None
        self.theta_time_: np.ndarray | None = None
        self.phi_: np.ndarray | None = None
        self.lambda_: np.ndarray | None = None
        self.trace_: EMTrace | None = None

    @property
    def name(self) -> str:
        """Display name used in evaluation tables."""
        return "SharedTCAM"

    def fit(self, cuboid: RatingCuboid) -> "SharedTopicsTCAM":
        """Fit by EM; both branches' responsibilities update one φ."""
        if cuboid.nnz == 0:
            raise ValueError("cannot fit on an empty cuboid")
        rng = np.random.default_rng(self.seed)
        n, t_dim, v_dim = cuboid.shape
        k = self.num_topics
        u, t, v, c = cuboid.users, cuboid.intervals, cuboid.items, cuboid.scores

        theta = random_stochastic(rng, n, k)
        theta_time = random_stochastic(rng, t_dim, k)
        phi = random_stochastic(rng, k, v_dim)
        lam = np.full(n, 0.5)

        trace = EMTrace()
        user_mass = scatter_sum_1d(u, c, n)
        safe_user_mass = np.where(user_mass <= 0, 1.0, user_mass)

        for _ in range(self.max_iter):
            phi_v = phi[:, v].T  # (R, K), shared by both branches
            joint_interest = theta[u] * phi_v
            p_interest = joint_interest.sum(axis=1)
            joint_context = theta_time[t] * phi_v
            p_context = joint_context.sum(axis=1)
            lam_r = lam[u]
            denom = lam_r * p_interest + (1 - lam_r) * p_context + EPS
            ps1 = lam_r * p_interest / denom
            resp_interest = joint_interest * (ps1 / (p_interest + EPS))[:, None]
            resp_context = joint_context * ((1 - ps1) / (p_context + EPS))[:, None]

            log_likelihood = float(np.dot(c, np.log(denom)))
            if trace.record(log_likelihood, self.tol):
                break

            c_interest = c[:, None] * resp_interest
            c_context = c[:, None] * resp_context
            theta = normalize_rows(scatter_sum(u, c_interest, n), self.smoothing)
            theta_time = normalize_rows(scatter_sum(t, c_context, t_dim), self.smoothing)
            # The conflation: one φ absorbs both branches' counts.
            phi = normalize_rows(
                scatter_sum(v, c_interest + c_context, v_dim).T, self.smoothing
            )
            lam = np.clip(scatter_sum_1d(u, c * ps1, n) / safe_user_mass, 0.0, 1.0)

        self.theta_ = theta
        self.theta_time_ = theta_time
        self.phi_ = phi
        self.lambda_ = lam
        self.trace_ = trace
        return self

    def _require_fitted(self) -> None:
        if self.phi_ is None:
            raise RuntimeError("model is not fitted; call fit() first")

    def score_items(self, user: int, interval: int) -> np.ndarray:
        """Mixture likelihood over the shared topic set."""
        self._require_fitted()
        lam = self.lambda_[user]
        interest = self.theta_[user] @ self.phi_
        context = self.theta_time_[interval] @ self.phi_
        return lam * interest + (1 - lam) * context

    def query_space(self, user: int, interval: int) -> tuple[np.ndarray, np.ndarray]:
        """Expanded query: the shared topics appear once, with combined
        weights ``λ·θ_u + (1−λ)·θ′_t``."""
        self._require_fitted()
        lam = self.lambda_[user]
        weights = lam * self.theta_[user] + (1 - lam) * self.theta_time_[interval]
        return weights, self.phi_

    def matrix_cache_key(self, interval: int) -> str:
        """The shared φ is query-independent."""
        return "static"
