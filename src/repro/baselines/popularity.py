"""Popularity baselines: global and per-interval item popularity.

Not part of the paper's comparison table, but indispensable sanity
anchors: any latent model worth training should beat global popularity on
personalised queries, and per-interval ("recent") popularity is a strong
cheap proxy for the temporal context.
"""

from __future__ import annotations

import numpy as np

from ..data.cuboid import RatingCuboid


class GlobalPopularity:
    """Rank items by their overall score mass (time- and user-agnostic)."""

    def __init__(self) -> None:
        self.popularity_: np.ndarray | None = None

    @property
    def name(self) -> str:
        """Display name used in evaluation tables."""
        return "Popularity"

    def fit(self, cuboid: RatingCuboid) -> "GlobalPopularity":
        """Accumulate total score mass per item."""
        if cuboid.nnz == 0:
            raise ValueError("cannot fit on an empty cuboid")
        self.popularity_ = cuboid.item_popularity()
        return self

    def score_items(self, user: int = 0, interval: int = 0) -> np.ndarray:
        """Same score vector for every query."""
        if self.popularity_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self.popularity_.copy()


class RecentPopularity:
    """Rank items by their popularity within the queried interval.

    Blends in a small amount of global popularity so intervals with little
    traffic still produce a total order.
    """

    def __init__(self, global_blend: float = 0.05) -> None:
        if not 0 <= global_blend <= 1:
            raise ValueError(f"global_blend must be in [0, 1], got {global_blend}")
        self.global_blend = global_blend
        self.interval_popularity_: np.ndarray | None = None  # (T, V)
        self.global_popularity_: np.ndarray | None = None  # (V,)

    @property
    def name(self) -> str:
        """Display name used in evaluation tables."""
        return "RecentPopularity"

    def fit(self, cuboid: RatingCuboid) -> "RecentPopularity":
        """Accumulate per-interval and global score mass."""
        if cuboid.nnz == 0:
            raise ValueError("cannot fit on an empty cuboid")
        self.interval_popularity_ = cuboid.interval_item_matrix()
        self.global_popularity_ = cuboid.item_popularity()
        return self

    def score_items(self, user: int, interval: int) -> np.ndarray:
        """Interval popularity blended with a global prior."""
        if self.interval_popularity_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        local = self.interval_popularity_[interval]
        local_total = local.sum()
        global_total = self.global_popularity_.sum()
        local_dist = local / local_total if local_total > 0 else local
        global_dist = self.global_popularity_ / global_total
        return (1 - self.global_blend) * local_dist + self.global_blend * global_dist
