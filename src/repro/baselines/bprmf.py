"""BPRMF baseline: matrix factorisation trained with Bayesian
Personalized Ranking (Rendle et al., UAI 2009).

The paper uses MyMediaLite's BPRMF as the state-of-the-art non-temporal
top-k recommender. This is a from-scratch reimplementation: user/item
latent factors plus an item bias, optimised with mini-batch SGD on the
BPR pairwise objective

``Σ_{(u,i,j)} ln σ(x̂_ui − x̂_uj) − reg·‖Θ‖²``

where ``j`` is a uniformly sampled item the user has not rated. Time is
ignored, which is what makes BPRMF fast to train (Table 4) but weaker at
temporal top-k (Figures 6–7).
"""

from __future__ import annotations

import numpy as np

from ..data.cuboid import RatingCuboid


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    ex = np.exp(x[~positive])
    out[~positive] = ex / (1.0 + ex)
    return out


class BPRMF:
    """Matrix factorisation for item ranking, optimised with BPR.

    Parameters
    ----------
    num_factors:
        Latent dimensionality of user and item factors.
    learning_rate:
        SGD step size.
    regularization:
        L2 penalty applied to all updated parameters.
    num_epochs:
        Passes over the positive (user, item) pairs.
    batch_size:
        Mini-batch size for the vectorised SGD updates.
    seed:
        Seed for initialisation and triple sampling.
    """

    def __init__(
        self,
        num_factors: int = 32,
        learning_rate: float = 0.05,
        regularization: float = 0.0025,
        num_epochs: int = 30,
        batch_size: int = 1024,
        seed: int = 0,
    ) -> None:
        if num_factors <= 0:
            raise ValueError(f"num_factors must be positive, got {num_factors}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if num_epochs <= 0:
            raise ValueError(f"num_epochs must be positive, got {num_epochs}")
        self.num_factors = num_factors
        self.learning_rate = learning_rate
        self.regularization = regularization
        self.num_epochs = num_epochs
        self.batch_size = batch_size
        self.seed = seed
        self.user_factors_: np.ndarray | None = None  # (N, d)
        self.item_factors_: np.ndarray | None = None  # (V, d)
        self.item_bias_: np.ndarray | None = None  # (V,)
        self._num_items = 0

    @property
    def name(self) -> str:
        """Display name used in evaluation tables."""
        return "BPRMF"

    def fit(self, cuboid: RatingCuboid) -> "BPRMF":
        """Fit factors on the time-collapsed positive (user, item) pairs."""
        if cuboid.nnz == 0:
            raise ValueError("cannot fit on an empty cuboid")
        rng = np.random.default_rng(self.seed)
        n, _, v_dim = cuboid.shape
        self._num_items = v_dim

        # Distinct positive pairs; each epoch samples one negative per pair.
        pair_keys = np.unique(cuboid.users * v_dim + cuboid.items)
        pos_users = (pair_keys // v_dim).astype(np.int64)
        pos_items = (pair_keys % v_dim).astype(np.int64)
        positive_set = set(pair_keys.tolist())

        scale = 0.1
        user_factors = rng.normal(0, scale, (n, self.num_factors))
        item_factors = rng.normal(0, scale, (v_dim, self.num_factors))
        item_bias = np.zeros(v_dim)

        lr = self.learning_rate
        reg = self.regularization
        num_pairs = pos_users.size

        for _ in range(self.num_epochs):
            order = rng.permutation(num_pairs)
            for start in range(0, num_pairs, self.batch_size):
                batch = order[start : start + self.batch_size]
                u = pos_users[batch]
                i = pos_items[batch]
                j = self._sample_negatives(u, v_dim, positive_set, rng)

                pu = user_factors[u]
                qi = item_factors[i]
                qj = item_factors[j]
                x_uij = (pu * (qi - qj)).sum(axis=1) + item_bias[i] - item_bias[j]
                weight = (1.0 - _sigmoid(x_uij))[:, None]

                grad_u = weight * (qi - qj) - reg * pu
                grad_i = weight * pu - reg * qi
                grad_j = -weight * pu - reg * qj
                # add.at handles repeated users/items within a batch.
                np.add.at(user_factors, u, lr * grad_u)
                np.add.at(item_factors, i, lr * grad_i)
                np.add.at(item_factors, j, lr * grad_j)
                np.add.at(item_bias, i, lr * (weight[:, 0] - reg * item_bias[i]))
                np.add.at(item_bias, j, lr * (-weight[:, 0] - reg * item_bias[j]))

        self.user_factors_ = user_factors
        self.item_factors_ = item_factors
        self.item_bias_ = item_bias
        return self

    @staticmethod
    def _sample_negatives(
        users: np.ndarray,
        num_items: int,
        positive_set: set[int],
        rng: np.random.Generator,
        max_resample: int = 10,
    ) -> np.ndarray:
        """Uniformly sample one unrated item per user in the batch.

        Collisions with positives are re-sampled a bounded number of
        times; with realistic sparsity one round almost always suffices.
        """
        negatives = rng.integers(0, num_items, size=users.size)
        for _ in range(max_resample):
            keys = users * num_items + negatives
            collisions = np.fromiter(
                (key in positive_set for key in keys.tolist()),
                dtype=bool,
                count=keys.size,
            )
            if not collisions.any():
                break
            negatives[collisions] = rng.integers(0, num_items, collisions.sum())
        return negatives

    def score_items(self, user: int, interval: int = 0) -> np.ndarray:
        """Ranking scores ``x̂_uv`` for every item; interval is ignored."""
        if self.user_factors_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self.item_factors_ @ self.user_factors_[user] + self.item_bias_
