"""Competitor models from the paper's evaluation (Section 5.2) plus
sanity baselines: UT, TT, BPRMF, BPTF and popularity rankers."""

from .bprmf import BPRMF
from .bptf import BPTF
from .bptf_gibbs import GibbsBPTF
from .popularity import GlobalPopularity, RecentPopularity
from .sharedtopics import SharedTopicsTCAM
from .timetopic import TimeTopicModel
from .usertopic import UserTopicModel

__all__ = [
    "BPRMF",
    "BPTF",
    "GibbsBPTF",
    "GlobalPopularity",
    "RecentPopularity",
    "SharedTopicsTCAM",
    "TimeTopicModel",
    "UserTopicModel",
]
