"""Bayesian BPTF by Gibbs sampling (Xiong et al., SDM 2010) — the
faithful variant of the BPTF comparator.

:class:`~repro.baselines.bptf.BPTF` fits a MAP point estimate for speed;
this module implements the original's full Bayesian treatment:

* observation model ``R_utv ~ N(⟨U_u, T_t, V_v⟩, α⁻¹)``;
* Gaussian priors ``U_u ~ N(μ_U, Λ_U⁻¹)``, ``V_v ~ N(μ_V, Λ_V⁻¹)`` with
  Normal–Wishart hyperpriors on ``(μ, Λ)``;
* a random-walk prior chaining the time factors,
  ``T_t ~ N(T_{t−1}, Λ_T⁻¹)``, with a Wishart hyperprior on ``Λ_T``;
* block Gibbs sweeps over factors and hyperparameters, predictions
  averaged over post-burn-in samples.

For implicit-feedback ranking, a fixed set of sampled zero-target cells
is added once up front (the same contrast device the MAP variant uses).
"""

from __future__ import annotations

import numpy as np
from scipy.stats import wishart

from ..data.cuboid import RatingCuboid


def _sample_normal_wishart(
    factors: np.ndarray,
    rng: np.random.Generator,
    beta0: float = 2.0,
    df0: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Posterior draw of ``(μ, Λ)`` for a factor matrix's Gaussian prior.

    Standard Normal–Wishart conjugate update with a zero prior mean and
    identity scale (the BPMF/BPTF convention).
    """
    n, d = factors.shape
    df0 = float(d) if df0 is None else df0
    mean = factors.mean(axis=0)
    centered = factors - mean
    scatter = centered.T @ centered

    beta_n = beta0 + n
    df_n = df0 + n
    mean_n = (n * mean) / beta_n  # prior mean is zero
    scale_inv = (
        np.eye(d)
        + scatter
        + (beta0 * n / beta_n) * np.outer(mean, mean)
    )
    scale = np.linalg.inv(scale_inv)
    scale = (scale + scale.T) / 2  # symmetrise against float drift
    precision = wishart.rvs(df=df_n, scale=scale, random_state=rng)
    precision = np.atleast_2d(precision)
    chol = np.linalg.cholesky(np.linalg.inv(beta_n * precision))
    mu = mean_n + chol @ rng.standard_normal(d)
    return mu, precision


def _sample_gaussian(
    precision: np.ndarray, linear: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Draw from ``N(Λ⁻¹ b, Λ⁻¹)`` given precision ``Λ`` and ``b``."""
    chol = np.linalg.cholesky(precision)
    mean = np.linalg.solve(precision, linear)
    noise = np.linalg.solve(chol.T, rng.standard_normal(linear.shape[0]))
    return mean + noise


class GibbsBPTF:
    """Bayesian probabilistic tensor factorisation via Gibbs sampling.

    Parameters
    ----------
    num_factors:
        Latent dimensionality ``d``.
    num_samples:
        Post-burn-in Gibbs sweeps averaged for prediction.
    burn_in:
        Discarded initial sweeps.
    alpha:
        Observation precision of the Gaussian likelihood.
    negative_ratio:
        Sampled zero-target cells per observed entry (implicit-feedback
        contrast, drawn once before sampling).
    seed:
        RNG seed.

    Attributes (after :meth:`fit`)
    ------------------------------
    mean_user_, mean_item_, mean_time_:
        Posterior-mean factor matrices (used by :meth:`score_items`).
    """

    def __init__(
        self,
        num_factors: int = 16,
        num_samples: int = 30,
        burn_in: int = 10,
        alpha: float = 2.0,
        negative_ratio: int = 2,
        seed: int = 0,
    ) -> None:
        if num_factors <= 0:
            raise ValueError(f"num_factors must be positive, got {num_factors}")
        if num_samples <= 0:
            raise ValueError(f"num_samples must be positive, got {num_samples}")
        if burn_in < 0:
            raise ValueError(f"burn_in must be >= 0, got {burn_in}")
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.num_factors = num_factors
        self.num_samples = num_samples
        self.burn_in = burn_in
        self.alpha = alpha
        self.negative_ratio = negative_ratio
        self.seed = seed
        self.mean_user_: np.ndarray | None = None
        self.mean_item_: np.ndarray | None = None
        self.mean_time_: np.ndarray | None = None

    @property
    def name(self) -> str:
        """Display name used in evaluation tables."""
        return "BPTF(Gibbs)"

    def _training_cells(self, cuboid: RatingCuboid, rng: np.random.Generator):
        """Observed cells plus one-off sampled zero-target cells."""
        scale = float(max(np.percentile(cuboid.scores, 95), 1e-9))
        u = cuboid.users
        t = cuboid.intervals
        v = cuboid.items
        y = np.minimum(cuboid.scores / scale, 3.0)
        if self.negative_ratio:
            n_neg = cuboid.nnz * self.negative_ratio
            nu = rng.integers(0, cuboid.num_users, n_neg)
            nt = rng.integers(0, cuboid.num_intervals, n_neg)
            nv = rng.integers(0, cuboid.num_items, n_neg)
            u = np.concatenate([u, nu])
            t = np.concatenate([t, nt])
            v = np.concatenate([v, nv])
            y = np.concatenate([y, np.zeros(n_neg)])
        return u, t, v, y

    @staticmethod
    def _group(index: np.ndarray, size: int) -> list[np.ndarray]:
        """Row indices of the training cells grouped by ``index`` value."""
        order = np.argsort(index, kind="stable")
        sorted_index = index[order]
        boundaries = np.searchsorted(sorted_index, np.arange(size + 1))
        return [order[boundaries[i] : boundaries[i + 1]] for i in range(size)]

    def fit(self, cuboid: RatingCuboid) -> "GibbsBPTF":
        """Run the Gibbs sampler and store posterior-mean factors."""
        if cuboid.nnz == 0:
            raise ValueError("cannot fit on an empty cuboid")
        rng = np.random.default_rng(self.seed)
        n, t_dim, v_dim = cuboid.shape
        d = self.num_factors
        u, t, v, y = self._training_cells(cuboid, rng)

        by_user = self._group(u, n)
        by_item = self._group(v, v_dim)
        by_time = self._group(t, t_dim)

        scale = (1.0 / d) ** (1.0 / 3.0)
        user = rng.normal(0.3 * scale, scale, (n, d))
        item = rng.normal(0.3 * scale, scale, (v_dim, d))
        time = rng.normal(0.3 * scale, scale, (t_dim, d))

        accum_user = np.zeros_like(user)
        accum_item = np.zeros_like(item)
        accum_time = np.zeros_like(time)
        kept = 0

        for sweep in range(self.burn_in + self.num_samples):
            mu_u, lambda_u = _sample_normal_wishart(user, rng)
            mu_v, lambda_v = _sample_normal_wishart(item, rng)
            # Wishart posterior for the random-walk precision of T.
            diffs = np.diff(time, axis=0) if t_dim > 1 else time
            scatter = diffs.T @ diffs
            scale_inv = np.eye(d) + scatter
            lambda_t = wishart.rvs(
                df=d + max(t_dim - 1, 1),
                scale=np.linalg.inv((scale_inv + scale_inv.T) / 2),
                random_state=rng,
            )
            lambda_t = np.atleast_2d(lambda_t)

            # --- user factors -------------------------------------------
            for i in range(n):
                rows = by_user[i]
                precision = lambda_u.copy()
                linear = lambda_u @ mu_u
                if rows.size:
                    q = item[v[rows]] * time[t[rows]]
                    precision = precision + self.alpha * (q.T @ q)
                    linear = linear + self.alpha * (q.T @ y[rows])
                user[i] = _sample_gaussian(precision, linear, rng)

            # --- item factors -------------------------------------------
            for j in range(v_dim):
                rows = by_item[j]
                precision = lambda_v.copy()
                linear = lambda_v @ mu_v
                if rows.size:
                    q = user[u[rows]] * time[t[rows]]
                    precision = precision + self.alpha * (q.T @ q)
                    linear = linear + self.alpha * (q.T @ y[rows])
                item[j] = _sample_gaussian(precision, linear, rng)

            # --- time factors (random-walk chain) ------------------------
            for k in range(t_dim):
                rows = by_time[k]
                precision = np.zeros((d, d))
                linear = np.zeros(d)
                if k > 0:
                    precision += lambda_t
                    linear += lambda_t @ time[k - 1]
                else:
                    precision += np.eye(d)  # T_0 ~ N(0, I)
                if k + 1 < t_dim:
                    precision += lambda_t
                    linear += lambda_t @ time[k + 1]
                if rows.size:
                    q = user[u[rows]] * item[v[rows]]
                    precision += self.alpha * (q.T @ q)
                    linear += self.alpha * (q.T @ y[rows])
                time[k] = _sample_gaussian(precision, linear, rng)

            if sweep >= self.burn_in:
                accum_user += user
                accum_item += item
                accum_time += time
                kept += 1

        self.mean_user_ = accum_user / kept
        self.mean_item_ = accum_item / kept
        self.mean_time_ = accum_time / kept
        return self

    def score_items(self, user: int, interval: int) -> np.ndarray:
        """Posterior-mean trilinear scores for every item."""
        if self.mean_user_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        context = self.mean_user_[user] * self.mean_time_[interval]
        return self.mean_item_ @ context
