"""BPTF baseline: temporal tensor factorisation (Xiong et al., SDM 2010).

BPTF represents users, items and time intervals in a shared
``d``-dimensional space and predicts the score of ``(u, t, v)`` as the
three-way inner product ``Σ_d U[u,d]·V[v,d]·T[t,d]``.

**Substitution note (recorded in DESIGN.md):** the original uses full
Bayesian inference by Gibbs sampling. We fit a MAP point estimate with
mini-batch SGD under Gaussian priors — including the original's key
structural prior that consecutive time factors stay close
(``T_t ≈ T_{t−1}``). The paper under reproduction uses BPTF only as a
ranking-accuracy and efficiency comparator, and both roles depend on the
trilinear scoring form (shared by MAP and Bayesian variants), not on the
posterior being integrated out.

For implicit-feedback data, ranking needs contrast between observed and
unobserved cells, so training augments each batch with sampled
unobserved triples regressed toward zero — the standard weighted-
regularisation trick for one-class tensor data.
"""

from __future__ import annotations

import numpy as np

from ..data.cuboid import RatingCuboid


class BPTF:
    """MAP temporal tensor factorisation with a time-smoothness prior.

    Parameters
    ----------
    num_factors:
        Latent dimensionality ``d`` shared by user, item and time factors.
    learning_rate, regularization, num_epochs, batch_size, seed:
        SGD controls.
    time_smoothness:
        Strength of the ``‖T_t − T_{t−1}‖²`` prior tying consecutive time
        factors together (the random-walk prior of the original model).
    negative_ratio:
        Sampled unobserved triples per observed entry (implicit feedback
        contrast); set to 0 to train on observed cells only.
    """

    def __init__(
        self,
        num_factors: int = 32,
        learning_rate: float = 0.03,
        regularization: float = 0.02,
        num_epochs: int = 40,
        batch_size: int = 1024,
        time_smoothness: float = 0.1,
        negative_ratio: int = 2,
        seed: int = 0,
    ) -> None:
        if num_factors <= 0:
            raise ValueError(f"num_factors must be positive, got {num_factors}")
        if num_epochs <= 0:
            raise ValueError(f"num_epochs must be positive, got {num_epochs}")
        if negative_ratio < 0:
            raise ValueError(f"negative_ratio must be >= 0, got {negative_ratio}")
        self.num_factors = num_factors
        self.learning_rate = learning_rate
        self.regularization = regularization
        self.num_epochs = num_epochs
        self.batch_size = batch_size
        self.time_smoothness = time_smoothness
        self.negative_ratio = negative_ratio
        self.seed = seed
        self.user_factors_: np.ndarray | None = None  # (N, d)
        self.item_factors_: np.ndarray | None = None  # (V, d)
        self.time_factors_: np.ndarray | None = None  # (T, d)

    @property
    def name(self) -> str:
        """Display name used in evaluation tables."""
        return "BPTF"

    def fit(self, cuboid: RatingCuboid) -> "BPTF":
        """Fit MAP factors on the observed (plus sampled negative) cells."""
        if cuboid.nnz == 0:
            raise ValueError("cannot fit on an empty cuboid")
        rng = np.random.default_rng(self.seed)
        n, t_dim, v_dim = cuboid.shape

        # Normalise targets to ~[0, 1] so one learning rate fits both
        # explicit-score and count data. A robust scale (95th percentile)
        # keeps heavy-tailed engagement counts from crushing the typical
        # target toward zero.
        target_scale = float(max(np.percentile(cuboid.scores, 95), 1e-9))
        obs_u, obs_t, obs_v = cuboid.users, cuboid.intervals, cuboid.items
        # Clip outlier targets (heavy engagement counts) so a single huge
        # residual cannot blow up the SGD updates.
        obs_y = np.minimum(cuboid.scores / target_scale, 3.0)

        # Init so the trilinear product has usable magnitude: with factor
        # std s, E|Σ_d U·V·T| ≈ √d·s³; s = d^{-1/3} keeps predictions and
        # gradients O(1) instead of vanishing.
        scale = (1.0 / self.num_factors) ** (1.0 / 3.0)
        user_factors = rng.normal(0.3 * scale, scale, (n, self.num_factors))
        item_factors = rng.normal(0.3 * scale, scale, (v_dim, self.num_factors))
        time_factors = rng.normal(0.3 * scale, scale, (t_dim, self.num_factors))

        lr = self.learning_rate
        reg = self.regularization
        num_obs = obs_u.size

        for _ in range(self.num_epochs):
            order = rng.permutation(num_obs)
            for start in range(0, num_obs, self.batch_size):
                batch = order[start : start + self.batch_size]
                u, t, v, y = obs_u[batch], obs_t[batch], obs_v[batch], obs_y[batch]
                if self.negative_ratio:
                    neg = batch.size * self.negative_ratio
                    u = np.concatenate([u, rng.integers(0, n, neg)])
                    t = np.concatenate([t, rng.integers(0, t_dim, neg)])
                    v = np.concatenate([v, rng.integers(0, v_dim, neg)])
                    y = np.concatenate([y, np.zeros(neg)])

                pu = user_factors[u]
                qv = item_factors[v]
                wt = time_factors[t]
                predicted = (pu * qv * wt).sum(axis=1)
                err = (y - predicted)[:, None]

                np.add.at(user_factors, u, lr * (err * qv * wt - reg * pu))
                np.add.at(item_factors, v, lr * (err * pu * wt - reg * qv))
                np.add.at(time_factors, t, lr * (err * pu * qv - reg * wt))

            if self.time_smoothness and t_dim > 1:
                # Gradient step on the random-walk prior Σ‖T_t − T_{t−1}‖².
                diff = np.diff(time_factors, axis=0)
                grad = np.zeros_like(time_factors)
                grad[:-1] -= diff
                grad[1:] += diff
                time_factors -= lr * self.time_smoothness * grad

        self.user_factors_ = user_factors
        self.item_factors_ = item_factors
        self.time_factors_ = time_factors
        return self

    def score_items(self, user: int, interval: int) -> np.ndarray:
        """Trilinear ranking scores ``⟨U_u, V_v, T_t⟩`` for every item.

        Note this requires scanning all items — the scoring form has no
        per-topic monotone decomposition, so BPTF cannot use the Threshold
        Algorithm (the efficiency contrast in Figure 8).
        """
        if self.user_factors_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        context = self.user_factors_[user] * self.time_factors_[interval]
        return self.item_factors_ @ context
