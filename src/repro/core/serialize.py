"""Saving and loading fitted TCAM parameters.

A production recommender trains offline and serves online from a
snapshot. This module persists fitted parameter containers to a single
``.npz`` file (numpy's zipped archive) with a format tag, and restores
them with full validation — a loaded model scores identically to the
one that was saved, which the tests verify bit-for-bit.

Snapshots are crash- and corruption-safe: :func:`save_params` writes to
a temporary sibling and publishes it with :func:`os.replace` (no reader
ever sees a half-written archive) and embeds a SHA-256 content checksum;
:func:`load_params` verifies the checksum and wraps every decoding
failure — truncated file, bad zip, missing array, tampered parameters —
in :class:`~repro.robustness.errors.SnapshotCorruptError` instead of
leaking raw numpy/zipfile tracebacks.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path

import numpy as np

from ..robustness.checkpoint import digest_arrays
from ..robustness.errors import SnapshotCorruptError
from ..typing import FloatArray
from .params import ITCAMParameters, TTCAMParameters

_FORMAT_KEY = "tcam_format"
_CHECKSUM_KEY = "tcam_checksum"
_ITCAM_TAG = "itcam-v1"
_TTCAM_TAG = "ttcam-v1"

_TTCAM_FIELDS = ("theta", "phi", "theta_time", "phi_time", "lambda_u")
_ITCAM_FIELDS = ("theta", "phi", "theta_time", "lambda_u")


def save_params(
    params: ITCAMParameters | TTCAMParameters,
    path: str | Path,
    mmap_layout: bool = False,
) -> Path:
    """Persist fitted parameters to ``path`` (.npz), atomically.

    The variant is recorded in the archive, so :func:`load_params`
    reconstructs the right container without being told, and a SHA-256
    checksum over the parameter arrays lets it detect corruption. The
    archive is written to a temporary file and renamed into place, so a
    crash mid-save never leaves a truncated snapshot at ``path``.

    ``mmap_layout=True`` additionally publishes the memory-mapped
    sidecar directory ``<path>.arrays/`` (per-array ``.npy`` files plus
    derived serving arrays — see :mod:`repro.recommend.paramstore`), so
    serving processes can page parameters in instead of materialising
    them. The ``.npz`` remains the source of truth; the sidecar is
    derived and re-creatable.
    """
    path = Path(path)
    if isinstance(params, TTCAMParameters):
        tag, fields = _TTCAM_TAG, _TTCAM_FIELDS
    elif isinstance(params, ITCAMParameters):
        tag, fields = _ITCAM_TAG, _ITCAM_FIELDS
    else:
        raise TypeError(f"unsupported parameter type: {type(params).__name__}")
    arrays = {name: np.asarray(getattr(params, name)) for name in fields}
    # np.savez appends .npz when missing; resolve the real location first.
    final = path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")
    final.parent.mkdir(parents=True, exist_ok=True)
    tmp = final.parent / (final.name + ".tmp")
    with open(tmp, "wb") as handle:
        np.savez_compressed(
            handle,
            **{
                _FORMAT_KEY: np.array(tag),
                _CHECKSUM_KEY: np.array(digest_arrays(arrays)),
            },
            **arrays,
        )
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, final)
    if mmap_layout:
        # Imported lazily: core must stay importable without the
        # recommend package (and vice versa) at module-load time.
        from ..recommend.paramstore import write_store

        write_store(params, final)
    return final


def load_params(path: str | Path) -> ITCAMParameters | TTCAMParameters:
    """Load fitted parameters saved by :func:`save_params`.

    The embedded checksum is verified and the parameter containers
    re-validate their invariants on construction, so a truncated,
    bit-flipped or hand-edited archive raises
    :class:`~repro.robustness.errors.SnapshotCorruptError` (a
    :class:`ValueError` subclass) rather than serving nonsense.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            if _FORMAT_KEY not in archive:
                raise SnapshotCorruptError(f"{path} is not a TCAM parameter archive")
            tag = str(archive[_FORMAT_KEY])
            if tag == _TTCAM_TAG:
                cls, fields = TTCAMParameters, _TTCAM_FIELDS
            elif tag == _ITCAM_TAG:
                cls, fields = ITCAMParameters, _ITCAM_FIELDS
            else:
                raise SnapshotCorruptError(
                    f"unknown TCAM archive format {tag!r} in {path}"
                )
            missing = [name for name in fields if name not in archive]
            if missing:
                raise SnapshotCorruptError(f"{path} is missing arrays {missing}")
            arrays = {name: archive[name] for name in fields}
            if _CHECKSUM_KEY in archive:
                expected = str(archive[_CHECKSUM_KEY])
                actual = digest_arrays(arrays)
                if actual != expected:
                    raise SnapshotCorruptError(
                        f"{path} failed its checksum (stored {expected[:12]}…, "
                        f"recomputed {actual[:12]}…)"
                    )
            try:
                return cls(**arrays)
            except ValueError as exc:
                raise SnapshotCorruptError(
                    f"{path} holds invalid parameters: {exc}"
                ) from exc
    except (SnapshotCorruptError, FileNotFoundError):
        raise
    except Exception as exc:  # zipfile.BadZipFile, OSError, EOFError, ...
        raise SnapshotCorruptError(f"snapshot {path} is unreadable: {exc}") from exc


class LoadedModel:
    """Serving adapter around loaded parameters.

    Exposes the same prediction surface as a fitted model
    (``score_items`` / ``query_space`` / ``matrix_cache_key``) so a
    :class:`~repro.recommend.recommender.TemporalRecommender` can serve
    straight from a snapshot. When constructed from an mmap sidecar
    layout, :attr:`param_store` carries the open
    :class:`~repro.recommend.paramstore.ParamStore`, and the serving
    layer prefers its persisted derived arrays (rescore transpose,
    sorted lists, quantized selection forms) over rebuilding them.
    """

    def __init__(
        self,
        params: ITCAMParameters | TTCAMParameters,
        param_store: object | None = None,
    ) -> None:
        self.params_ = params
        self.param_store = param_store

    @classmethod
    def from_file(cls, path: str | Path, mmap: bool = False) -> "LoadedModel":
        """Load a snapshot and wrap it for serving.

        ``mmap=True`` serves from the sidecar store published by
        ``save_params(..., mmap_layout=True)``: parameters page in on
        demand and never fully materialise. A missing or damaged sidecar
        degrades to the eager checksummed load with a
        :class:`RuntimeWarning` — mmap is an optimisation, not a second
        source of truth.
        """
        if mmap:
            from ..recommend.paramstore import ParamStore

            try:
                store = ParamStore.for_snapshot(path)
                return cls(store.params(), param_store=store)
            except SnapshotCorruptError as exc:
                warnings.warn(
                    f"mmap sidecar for {path} unusable ({exc}); "
                    "falling back to eager snapshot load",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return cls(load_params(path))

    @property
    def name(self) -> str:
        """Display name used in evaluation tables."""
        kind = "TTCAM" if isinstance(self.params_, TTCAMParameters) else "ITCAM"
        return f"Loaded-{kind}"

    def score_items(self, user: int, interval: int) -> FloatArray:
        """Ranking scores for every item."""
        return self.params_.score_items(user, interval)

    def query_space(self, user: int, interval: int) -> tuple[FloatArray, FloatArray]:
        """Expanded query vector and topic–item matrix."""
        return self.params_.query_space(user, interval)

    def matrix_cache_key(self, interval: int) -> str | int:
        """TTCAM snapshots share one matrix; ITCAM's varies by interval."""
        if isinstance(self.params_, TTCAMParameters):
            return "static"
        return interval
