"""Saving and loading fitted TCAM parameters.

A production recommender trains offline and serves online from a
snapshot. This module persists fitted parameter containers to a single
``.npz`` file (numpy's zipped archive) with a format tag, and restores
them with full validation — a loaded model scores identically to the
one that was saved, which the tests verify bit-for-bit.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .params import ITCAMParameters, TTCAMParameters

_FORMAT_KEY = "tcam_format"
_ITCAM_TAG = "itcam-v1"
_TTCAM_TAG = "ttcam-v1"


def save_params(
    params: ITCAMParameters | TTCAMParameters, path: str | Path
) -> Path:
    """Persist fitted parameters to ``path`` (.npz).

    The variant is recorded in the archive, so :func:`load_params`
    reconstructs the right container without being told.
    """
    path = Path(path)
    if isinstance(params, TTCAMParameters):
        np.savez_compressed(
            path,
            **{_FORMAT_KEY: np.array(_TTCAM_TAG)},
            theta=params.theta,
            phi=params.phi,
            theta_time=params.theta_time,
            phi_time=params.phi_time,
            lambda_u=params.lambda_u,
        )
    elif isinstance(params, ITCAMParameters):
        np.savez_compressed(
            path,
            **{_FORMAT_KEY: np.array(_ITCAM_TAG)},
            theta=params.theta,
            phi=params.phi,
            theta_time=params.theta_time,
            lambda_u=params.lambda_u,
        )
    else:
        raise TypeError(f"unsupported parameter type: {type(params).__name__}")
    # np.savez appends .npz when missing; report the real location.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_params(path: str | Path) -> ITCAMParameters | TTCAMParameters:
    """Load fitted parameters saved by :func:`save_params`.

    Validation in the parameter containers runs on load, so a corrupted
    or hand-edited archive fails loudly rather than serving nonsense.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        if _FORMAT_KEY not in archive:
            raise ValueError(f"{path} is not a TCAM parameter archive")
        tag = str(archive[_FORMAT_KEY])
        if tag == _TTCAM_TAG:
            return TTCAMParameters(
                theta=archive["theta"],
                phi=archive["phi"],
                theta_time=archive["theta_time"],
                phi_time=archive["phi_time"],
                lambda_u=archive["lambda_u"],
            )
        if tag == _ITCAM_TAG:
            return ITCAMParameters(
                theta=archive["theta"],
                phi=archive["phi"],
                theta_time=archive["theta_time"],
                lambda_u=archive["lambda_u"],
            )
        raise ValueError(f"unknown TCAM archive format {tag!r} in {path}")


class LoadedModel:
    """Serving adapter around loaded parameters.

    Exposes the same prediction surface as a fitted model
    (``score_items`` / ``query_space`` / ``matrix_cache_key``) so a
    :class:`~repro.recommend.recommender.TemporalRecommender` can serve
    straight from a snapshot.
    """

    def __init__(self, params: ITCAMParameters | TTCAMParameters) -> None:
        self.params_ = params

    @classmethod
    def from_file(cls, path: str | Path) -> "LoadedModel":
        """Load a snapshot and wrap it for serving."""
        return cls(load_params(path))

    @property
    def name(self) -> str:
        """Display name used in evaluation tables."""
        kind = "TTCAM" if isinstance(self.params_, TTCAMParameters) else "ITCAM"
        return f"Loaded-{kind}"

    def score_items(self, user: int, interval: int) -> np.ndarray:
        """Ranking scores for every item."""
        return self.params_.score_items(user, interval)

    def query_space(self, user: int, interval: int):
        """Expanded query vector and topic–item matrix."""
        return self.params_.query_space(user, interval)

    def matrix_cache_key(self, interval: int):
        """TTCAM snapshots share one matrix; ITCAM's varies by interval."""
        if isinstance(self.params_, TTCAMParameters):
            return "static"
        return interval
