"""Core TCAM models: ITCAM, TTCAM, the item-weighting scheme, shared EM
machinery and fitted-parameter containers."""

from .em import (
    EMTrace,
    ScatterPlan,
    normalize_rows,
    random_stochastic,
    safe_divide,
    safe_log,
    scatter_sum,
    scatter_sum_1d,
)
from .engine import DEFAULT_BLOCK_SIZE, BlockedEStep, EMEngineConfig
from .gibbs import GibbsTTCAM
from .itcam import ITCAM
from .parallel import PartitionedTTCAM
from .params import ITCAMParameters, TTCAMParameters
from .serialize import LoadedModel, load_params, save_params
from .stochastic import StochasticTTCAM
from .ttcam import TTCAM
from .weighting import (
    ItemWeights,
    apply_item_weighting,
    bursty_degree,
    compute_item_weights,
    inverse_user_frequency,
)

__all__ = [
    "EMTrace",
    "ScatterPlan",
    "DEFAULT_BLOCK_SIZE",
    "BlockedEStep",
    "EMEngineConfig",
    "normalize_rows",
    "random_stochastic",
    "safe_divide",
    "safe_log",
    "scatter_sum",
    "scatter_sum_1d",
    "GibbsTTCAM",
    "ITCAM",
    "PartitionedTTCAM",
    "ITCAMParameters",
    "TTCAMParameters",
    "LoadedModel",
    "load_params",
    "save_params",
    "StochasticTTCAM",
    "TTCAM",
    "ItemWeights",
    "apply_item_weighting",
    "bursty_degree",
    "compute_item_weights",
    "inverse_user_frequency",
]
