"""Item-weighting scheme (Section 3.3, Equations 17–20).

Popular items crowd the top of every topic and convey little information
about either user interests or events. The scheme re-weights each cuboid
entry by

``w(v, t) = iuf(v) · B(v, t)``

where

* ``iuf(v) = log(N / N(v))`` — *inverse user frequency*, promoting salient
  (rarely rated) items in user-oriented topics, and
* ``B(v, t) = (N_t(v) / N_t) · (N / N(v))`` — *bursty degree*, promoting
  items whose per-interval popularity spikes above their baseline.

Applying the weights to the cuboid (Equation 20) yields the W-ITCAM and
W-TTCAM model variants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.cuboid import RatingCuboid
from ..typing import FloatArray


@dataclass(frozen=True)
class ItemWeights:
    """Precomputed weighting statistics for one rating cuboid."""

    iuf: FloatArray  # (V,) inverse user frequency
    burst: FloatArray  # (T, V) bursty degree B(v, t)

    @property
    def num_items(self) -> int:
        """Number of items ``V``."""
        return int(self.iuf.shape[0])

    @property
    def num_intervals(self) -> int:
        """Number of time intervals ``T``."""
        return int(self.burst.shape[0])

    def weight(self, item: int, interval: int) -> float:
        """``w(v, t)`` for a single (item, interval) pair (Equation 19)."""
        return float(self.iuf[item] * self.burst[interval, item])

    def weight_matrix(self) -> FloatArray:
        """Dense ``(T, V)`` matrix of ``w(v, t)`` values."""
        return self.burst * self.iuf[None, :]


def inverse_user_frequency(cuboid: RatingCuboid) -> FloatArray:
    """``iuf(v) = log(N / N(v))`` (Equation 17).

    Items never rated get the maximum weight ``log N`` (they are maximally
    salient); with a single user the measure degenerates to zero for rated
    items, matching the formula.
    """
    n_users = max(cuboid.num_users, 1)
    rated_by = np.maximum(cuboid.item_user_counts(), 0)
    # Unseen items: N(v)=0 → treat as N(v)=1 (one hypothetical rater).
    safe_counts = np.where(rated_by == 0, 1, rated_by)
    return np.log(n_users / safe_counts)


def bursty_degree(cuboid: RatingCuboid) -> FloatArray:
    """``B(v, t) = (N_t(v) / N_t) · (N / N(v))`` (Equation 18).

    Returns a dense ``(T, V)`` matrix. Intervals with no active users and
    items with no raters contribute zero burst rather than dividing by
    zero.
    """
    n_users = max(cuboid.num_users, 1)
    per_interval = cuboid.item_interval_user_counts().astype(np.float64)  # (T, V)
    active = cuboid.interval_user_counts().astype(np.float64)  # (T,)
    overall = cuboid.item_user_counts().astype(np.float64)  # (V,)

    safe_active = np.where(active == 0, 1.0, active)
    safe_overall = np.where(overall == 0, 1.0, overall)
    burst = (per_interval / safe_active[:, None]) * (n_users / safe_overall[None, :])
    burst[active == 0, :] = 0.0
    burst[:, overall == 0] = 0.0
    return burst


def compute_item_weights(cuboid: RatingCuboid) -> ItemWeights:
    """Compute the full weighting statistics for ``cuboid``."""
    return ItemWeights(
        iuf=inverse_user_frequency(cuboid), burst=bursty_degree(cuboid)
    )


def apply_item_weighting(
    cuboid: RatingCuboid,
    weights: ItemWeights | None = None,
    floor: float = 1e-6,
) -> RatingCuboid:
    """Return the weighted cuboid ``C̄[u,t,v] = C[u,t,v] · w(v,t)`` (Eq. 20).

    ``floor`` keeps every retained entry strictly positive: an entry whose
    weight underflows to zero would otherwise vanish from the sparse
    cuboid and silently shrink the training set.
    """
    if weights is None:
        weights = compute_item_weights(cuboid)
    if weights.num_items != cuboid.num_items:
        raise ValueError("weights were computed for a different item catalogue")
    if weights.num_intervals != cuboid.num_intervals:
        raise ValueError("weights were computed for a different interval count")
    per_entry = weights.iuf[cuboid.items] * weights.burst[
        cuboid.intervals, cuboid.items
    ]
    new_scores = cuboid.scores * np.maximum(per_entry, floor)
    return cuboid.with_scores(new_scores)
