"""Collapsed Gibbs sampling for TTCAM — the Bayesian inference path.

The paper fits TCAM by maximum-likelihood EM. This module provides the
fully Bayesian alternative, in the style of collapsed LDA samplers:
symmetric Dirichlet priors on every multinomial
(``θ_u ~ Dir(α)``, ``φ_z ~ Dir(β)``, ``θ′_t ~ Dir(α′)``,
``φ′_x ~ Dir(β′)``) and a Beta prior on each mixing weight
(``λ_u ~ Beta(γ, γ)``), with the multinomials and λ integrated out.

The sampler state is one assignment per cuboid entry — either
``(s=1, z)`` (a user-oriented topic) or ``(s=0, x)`` (a time-oriented
topic). Each sweep resamples every entry from its full conditional over
the ``K1 + K2`` combined choices; entry weights act as token masses in
the count tables (the standard weighted-token treatment).

Post burn-in, count tables are averaged and converted to a smoothed
:class:`~repro.core.params.TTCAMParameters`, so the result plugs into
the same recommendation and evaluation stack as the EM fit. Being a
per-entry Python loop, this is the reference/teaching implementation —
EM remains the fast path; the tests check the two agree.
"""

from __future__ import annotations

import numpy as np

from ..data.cuboid import RatingCuboid
from ..typing import FloatArray, IntArray
from .params import TTCAMParameters


class GibbsTTCAM:
    """TTCAM fit by collapsed Gibbs sampling.

    Parameters
    ----------
    num_user_topics, num_time_topics:
        ``K1`` and ``K2``.
    alpha, beta:
        Symmetric Dirichlet hyper-parameters for the user-side
        distributions (``θ_u`` and ``φ_z``).
    alpha_time, beta_time:
        Same for the temporal side (default to ``alpha``/``beta``).
    gamma:
        Beta prior pseudo-count for each λ_u (symmetric).
    num_samples, burn_in:
        Post-burn-in sweeps averaged for the posterior estimate, and
        discarded initial sweeps.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        num_user_topics: int = 10,
        num_time_topics: int = 10,
        alpha: float = 0.5,
        beta: float = 0.05,
        alpha_time: float | None = None,
        beta_time: float | None = None,
        gamma: float = 1.0,
        num_samples: int = 20,
        burn_in: int = 10,
        seed: int = 0,
    ) -> None:
        if num_user_topics <= 0 or num_time_topics <= 0:
            raise ValueError("topic counts must be positive")
        if min(alpha, beta, gamma) <= 0:
            raise ValueError("hyper-parameters must be positive")
        if num_samples <= 0 or burn_in < 0:
            raise ValueError("num_samples must be > 0 and burn_in >= 0")
        self.num_user_topics = num_user_topics
        self.num_time_topics = num_time_topics
        self.alpha = alpha
        self.beta = beta
        self.alpha_time = alpha if alpha_time is None else alpha_time
        self.beta_time = beta if beta_time is None else beta_time
        self.gamma = gamma
        self.num_samples = num_samples
        self.burn_in = burn_in
        self.seed = seed
        self.params_: TTCAMParameters | None = None
        self.assignments_: IntArray | None = None

    @property
    def name(self) -> str:
        """Display name used in evaluation tables."""
        return "TTCAM(Gibbs)"

    def fit(self, cuboid: RatingCuboid) -> "GibbsTTCAM":
        """Run the collapsed sampler and store posterior-mean parameters."""
        if cuboid.nnz == 0:
            raise ValueError("cannot fit on an empty cuboid")
        rng = np.random.default_rng(self.seed)
        n, t_dim, v_dim = cuboid.shape
        k1, k2 = self.num_user_topics, self.num_time_topics
        u = cuboid.users
        t = cuboid.intervals
        v = cuboid.items
        c = cuboid.scores

        # Count tables (weighted token masses).
        n_uz = np.zeros((n, k1))
        n_zv = np.zeros((k1, v_dim))
        n_z = np.zeros(k1)
        n_tx = np.zeros((t_dim, k2))
        n_xv = np.zeros((k2, v_dim))
        n_x = np.zeros(k2)
        n_u_s = np.zeros((n, 2))  # [:, 1] interest mass, [:, 0] context mass

        # Random initial assignment: column < k1 means (s=1, z=column),
        # column >= k1 means (s=0, x=column-k1).
        assign = rng.integers(0, k1 + k2, size=cuboid.nnz)
        for r in range(cuboid.nnz):
            self._add(r, assign[r], c, u, t, v, n_uz, n_zv, n_z, n_tx, n_xv, n_x, n_u_s, k1, +1)

        accum_theta = np.zeros((n, k1))
        accum_phi = np.zeros((k1, v_dim))
        accum_theta_time = np.zeros((t_dim, k2))
        accum_phi_time = np.zeros((k2, v_dim))
        accum_lambda = np.zeros(n)
        kept = 0

        for sweep in range(self.burn_in + self.num_samples):
            order = rng.permutation(cuboid.nnz)
            unit_draws = rng.random(cuboid.nnz)
            for i, r in enumerate(order):
                self._add(r, assign[r], c, u, t, v, n_uz, n_zv, n_z, n_tx, n_xv, n_x, n_u_s, k1, -1)
                probs = self._conditional(
                    int(u[r]), int(t[r]), int(v[r]),
                    n_uz, n_zv, n_z, n_tx, n_xv, n_x, n_u_s,
                    k1, k2, v_dim,
                )
                cumulative = np.cumsum(probs)
                choice = int(
                    np.searchsorted(cumulative, unit_draws[i] * cumulative[-1])
                )
                assign[r] = min(choice, k1 + k2 - 1)
                self._add(r, assign[r], c, u, t, v, n_uz, n_zv, n_z, n_tx, n_xv, n_x, n_u_s, k1, +1)

            if sweep >= self.burn_in:
                accum_theta += n_uz + self.alpha
                accum_phi += n_zv + self.beta
                accum_theta_time += n_tx + self.alpha_time
                accum_phi_time += n_xv + self.beta_time
                accum_lambda += (n_u_s[:, 1] + self.gamma) / (
                    n_u_s.sum(axis=1) + 2 * self.gamma
                )
                kept += 1

        theta = accum_theta / accum_theta.sum(axis=1, keepdims=True)
        phi = accum_phi / accum_phi.sum(axis=1, keepdims=True)
        theta_time = accum_theta_time / accum_theta_time.sum(axis=1, keepdims=True)
        phi_time = accum_phi_time / accum_phi_time.sum(axis=1, keepdims=True)
        lam = np.clip(accum_lambda / kept, 0.0, 1.0)

        self.params_ = TTCAMParameters(
            theta=theta,
            phi=phi,
            theta_time=theta_time,
            phi_time=phi_time,
            lambda_u=lam,
        )
        self.assignments_ = assign
        return self

    @staticmethod
    def _add(
        r: int,
        a: int,
        c: FloatArray,
        u: IntArray,
        t: IntArray,
        v: IntArray,
        n_uz: FloatArray,
        n_zv: FloatArray,
        n_z: FloatArray,
        n_tx: FloatArray,
        n_xv: FloatArray,
        n_x: FloatArray,
        n_u_s: FloatArray,
        k1: int,
        sign: int,
    ) -> None:
        """Add/remove entry ``r``'s weighted counts for assignment ``a``."""
        weight = sign * c[r]
        if a < k1:
            n_uz[u[r], a] += weight
            n_zv[a, v[r]] += weight
            n_z[a] += weight
            n_u_s[u[r], 1] += weight
        else:
            x = a - k1
            n_tx[t[r], x] += weight
            n_xv[x, v[r]] += weight
            n_x[x] += weight
            n_u_s[u[r], 0] += weight

    def _conditional(
        self,
        ur: int,
        tr: int,
        vr: int,
        n_uz: FloatArray,
        n_zv: FloatArray,
        n_z: FloatArray,
        n_tx: FloatArray,
        n_xv: FloatArray,
        n_x: FloatArray,
        n_u_s: FloatArray,
        k1: int,
        k2: int,
        v_dim: int,
    ) -> FloatArray:
        """Unnormalised full conditional over the ``K1 + K2`` choices."""
        gamma = self.gamma
        s_mass = n_u_s[ur].sum() + 2 * gamma
        p_s1 = (n_u_s[ur, 1] + gamma) / s_mass
        p_s0 = (n_u_s[ur, 0] + gamma) / s_mass

        interest = (
            p_s1
            * (n_uz[ur] + self.alpha)
            / (n_u_s[ur, 1] + k1 * self.alpha)
            * (n_zv[:, vr] + self.beta)
            / (n_z + v_dim * self.beta)
        )
        context = (
            p_s0
            * (n_tx[tr] + self.alpha_time)
            / (n_tx[tr].sum() + k2 * self.alpha_time)
            * (n_xv[:, vr] + self.beta_time)
            / (n_x + v_dim * self.beta_time)
        )
        return np.concatenate([interest, context])

    def score_items(self, user: int, interval: int) -> FloatArray:
        """Posterior-mean mixture likelihood for every item."""
        if self.params_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self.params_.score_items(user, interval)

    def query_space(self, user: int, interval: int) -> tuple[FloatArray, FloatArray]:
        """Expanded query vector / topic matrix, as in the EM model."""
        if self.params_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self.params_.query_space(user, interval)

    def matrix_cache_key(self, interval: int) -> str:
        """The stacked topic–item matrix is query-independent."""
        return "static"
