"""Stochastic (mini-batch) EM for TTCAM.

Batch EM touches every rating per iteration; at web scale that is a full
pass over the log. Stepwise/online EM (Cappé & Moulines, 2009) instead
updates *running sufficient statistics* from mini-batches:

``S ← (1 − ρ_n)·S + ρ_n·ŝ(batch)``,  ``ρ_n = (n + 2)^{−κ}``

where ``ŝ`` is the batch's statistics rescaled to corpus size and
``κ ∈ (0.5, 1]`` controls forgetting. The M-step normalises ``S`` exactly
as batch EM does, so memory per step is ``O(parameters + batch)`` rather
than ``O(corpus)``.

This complements :class:`~repro.core.parallel.PartitionedTTCAM` (which
parallelises exact batch EM) by trading a little bias for constant-memory
streaming — the other half of the paper's "scalable to large-scale
datasets" remark.
"""

from __future__ import annotations

import numpy as np

from ..data.cuboid import RatingCuboid
from ..typing import FloatArray
from .em import EPS, EMTrace, normalize_rows, random_stochastic, scatter_sum, scatter_sum_1d
from .params import TTCAMParameters
from .weighting import apply_item_weighting


class StochasticTTCAM:
    """TTCAM fit by stepwise EM over mini-batches.

    Parameters
    ----------
    num_user_topics, num_time_topics, weighted, smoothing, seed:
        As in :class:`~repro.core.ttcam.TTCAM`.
    batch_size:
        Ratings per mini-batch.
    num_epochs:
        Passes over the (shuffled) rating entries.
    kappa:
        Step-size decay exponent, ``0.5 < κ ≤ 1``.
    """

    def __init__(
        self,
        num_user_topics: int = 60,
        num_time_topics: int = 40,
        batch_size: int = 2048,
        num_epochs: int = 10,
        kappa: float = 0.7,
        smoothing: float = 1e-6,
        weighted: bool = False,
        seed: int = 0,
    ) -> None:
        if num_user_topics <= 0 or num_time_topics <= 0:
            raise ValueError("topic counts must be positive")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if num_epochs <= 0:
            raise ValueError(f"num_epochs must be positive, got {num_epochs}")
        if not 0.5 < kappa <= 1.0:
            raise ValueError(f"kappa must be in (0.5, 1], got {kappa}")
        self.num_user_topics = num_user_topics
        self.num_time_topics = num_time_topics
        self.batch_size = batch_size
        self.num_epochs = num_epochs
        self.kappa = kappa
        self.smoothing = smoothing
        self.weighted = weighted
        self.seed = seed
        self.params_: TTCAMParameters | None = None
        self.trace_: EMTrace | None = None

    @property
    def name(self) -> str:
        """Display name used in evaluation tables."""
        return "W-TTCAM(stochastic)" if self.weighted else "TTCAM(stochastic)"

    def fit(self, cuboid: RatingCuboid) -> "StochasticTTCAM":
        """Fit by stepwise EM; records one log-likelihood per epoch."""
        if cuboid.nnz == 0:
            raise ValueError("cannot fit on an empty cuboid")
        if self.weighted:
            cuboid = apply_item_weighting(cuboid)

        rng = np.random.default_rng(self.seed)
        n, t_dim, v_dim = cuboid.shape
        k1, k2 = self.num_user_topics, self.num_time_topics
        total_mass = cuboid.total_score

        theta = random_stochastic(rng, n, k1)
        phi = random_stochastic(rng, k1, v_dim)
        theta_time = random_stochastic(rng, t_dim, k2)
        phi_time = random_stochastic(rng, k2, v_dim)
        lam = np.full(n, 0.5)

        # Running sufficient statistics, initialised from the priors so
        # early batches do not zero out unseen rows.
        stats_theta = theta * 1.0
        stats_phi = phi.T * 1.0  # stored (V, K1) like the batch scatter
        stats_theta_time = theta_time * 1.0
        stats_phi_time = phi_time.T * 1.0
        stats_lam_num = lam * 1.0
        stats_lam_den = np.ones(n)

        user_mass = scatter_sum_1d(cuboid.users, cuboid.scores, n)
        safe_user_mass = np.where(user_mass <= 0, 1.0, user_mass)

        trace = EMTrace()
        step = 0
        for _epoch in range(self.num_epochs):
            order = rng.permutation(cuboid.nnz)
            for start in range(0, cuboid.nnz, self.batch_size):
                rows = order[start : start + self.batch_size]
                u = cuboid.users[rows]
                t = cuboid.intervals[rows]
                v = cuboid.items[rows]
                c = cuboid.scores[rows]
                scale = total_mass / c.sum()

                joint_z = theta[u] * phi[:, v].T
                p_interest = joint_z.sum(axis=1)
                joint_x = theta_time[t] * phi_time[:, v].T
                p_context = joint_x.sum(axis=1)
                lam_r = lam[u]
                denom = lam_r * p_interest + (1 - lam_r) * p_context + EPS
                ps1 = lam_r * p_interest / denom
                resp_z = joint_z * (ps1 / (p_interest + EPS))[:, None]
                resp_x = joint_x * ((1 - ps1) / (p_context + EPS))[:, None]

                c_z = c[:, None] * resp_z * scale
                c_x = c[:, None] * resp_x * scale
                rho = (step + 2.0) ** (-self.kappa)
                step += 1

                stats_theta = (1 - rho) * stats_theta + rho * scatter_sum(u, c_z, n)
                stats_phi = (1 - rho) * stats_phi + rho * scatter_sum(v, c_z, v_dim)
                stats_theta_time = (
                    (1 - rho) * stats_theta_time + rho * scatter_sum(t, c_x, t_dim)
                )
                stats_phi_time = (
                    (1 - rho) * stats_phi_time + rho * scatter_sum(v, c_x, v_dim)
                )
                stats_lam_num = (1 - rho) * stats_lam_num + rho * scatter_sum_1d(
                    u, c * ps1 * scale, n
                )
                stats_lam_den = (1 - rho) * stats_lam_den + rho * scatter_sum_1d(
                    u, c * scale, n
                )

                theta = normalize_rows(stats_theta, self.smoothing)
                phi = normalize_rows(stats_phi.T, self.smoothing)
                theta_time = normalize_rows(stats_theta_time, self.smoothing)
                phi_time = normalize_rows(stats_phi_time.T, self.smoothing)
                lam = np.clip(
                    stats_lam_num / np.maximum(stats_lam_den, EPS), 0.0, 1.0
                )

            trace.log_likelihood.append(
                self._full_log_likelihood(
                    cuboid, theta, phi, theta_time, phi_time, lam
                )
            )

        self.params_ = TTCAMParameters(
            theta=theta,
            phi=phi,
            theta_time=theta_time,
            phi_time=phi_time,
            lambda_u=lam,
        )
        self.trace_ = trace
        return self

    @staticmethod
    def _full_log_likelihood(
        cuboid: RatingCuboid,
        theta: FloatArray,
        phi: FloatArray,
        theta_time: FloatArray,
        phi_time: FloatArray,
        lam: FloatArray,
    ) -> float:
        u, t, v, c = cuboid.users, cuboid.intervals, cuboid.items, cuboid.scores
        p_interest = np.einsum("rk,kr->r", theta[u], phi[:, v])
        p_context = np.einsum("rk,kr->r", theta_time[t], phi_time[:, v])
        lam_r = lam[u]
        prob = lam_r * p_interest + (1 - lam_r) * p_context
        return float(np.dot(c, np.log(prob + EPS)))

    def score_items(self, user: int, interval: int) -> FloatArray:
        """Ranking scores for every item, as in the batch model."""
        if self.params_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self.params_.score_items(user, interval)

    def query_space(self, user: int, interval: int) -> tuple[FloatArray, FloatArray]:
        """Expanded query vector / topic matrix, as in the batch model."""
        if self.params_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self.params_.query_space(user, interval)

    def matrix_cache_key(self, interval: int) -> str:
        """The stacked topic–item matrix is query-independent."""
        return "static"
