"""Blocked, thread-parallel EM execution engine.

Every EM iteration of the TCAM family is dominated by the E-step: an
embarrassingly-parallel pass over the ``R`` rating triples that computes
posterior responsibilities and folds them into a handful of sufficient-
statistics matrices. The naive vectorised implementation materialises
five-plus fresh ``(R, K)`` temporaries per iteration, so at production
scale it is allocation- and memory-bandwidth-bound rather than FLOP-bound
— the same observation that motivates blocked/distributed LDA inference
(Newman et al., "Distributed inference for LDA"; Hoffman et al., "Online
learning for LDA").

This module restructures that pass without changing the math:

* :class:`EMEngineConfig` — the shared knobs (block size, threads, compute
  dtype) accepted by every model's ``engine=`` argument.
* :class:`BlockedEStep` — iterates the triples in fixed-size blocks,
  computing each block's responsibilities in **preallocated, reused
  buffers** (``np.take(..., out=...)`` gathers, in-place ufuncs, fused
  ``c · resp`` scaling, and :class:`~repro.core.em.ScatterPlan`-backed
  scatters), accumulating per-worker statistics, and reducing the worker
  partials in a **deterministic fixed order**.
* Model kernels (:class:`TTCAMKernel`, :class:`ITCAMKernel`,
  :class:`UserTopicKernel`, :class:`TimeTopicKernel`) — the per-block
  E-step equations of each model family.

Numerical contract
------------------
For a fixed configuration the engine is **bit-deterministic**: the block
grid and the block→worker assignment are static (contiguous runs of
blocks per worker, reduced in worker order), so thread scheduling can
never reorder a floating-point sum, and a checkpointed run resumed
mid-training finishes bit-identically to an uninterrupted one. Engine
buffers hold no model state, so the engine composes with the
checkpoint/health runtime unchanged.

Against the legacy single-pass path (``engine=None``) the results agree
to ``allclose(atol=1e-12)`` rather than bit-for-bit: blocking
re-associates the floating-point summation of the sufficient statistics
((a+b)+c versus a+(b+c)), which perturbs sums by a few ULPs. The same
holds between different ``block_size``/``threads`` settings. The test
suite pins both contracts.

``threads > 1`` runs the workers on a :class:`ThreadPoolExecutor`; the
numpy kernels doing the heavy lifting release the GIL, so blocks execute
truly concurrently on multi-core hosts.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..tooling.sanitize import Sanitizer, sanitize_enabled
from ..typing import (
    AnyArray,
    ArrayState,
    FloatArray,
    IntArray,
    Workspace,
    bit_deterministic,
    hot_path,
)
from .em import EPS, ScatterPlan, scatter_sum, scatter_sum_1d

#: Default block length when the config leaves ``block_size`` unset.
#: 32k rows × 64 topics × 8 bytes ≈ 16 MB of hot workspace — comfortably
#: cache/bandwidth-friendly while keeping per-block Python overhead
#: negligible.
DEFAULT_BLOCK_SIZE = 32_768

_DTYPES = ("float64", "float32")


@dataclass(frozen=True)
class EMEngineConfig:
    """Execution knobs shared by every model's blocked EM engine.

    Parameters
    ----------
    block_size:
        Rating rows processed per block. ``None`` uses
        :data:`DEFAULT_BLOCK_SIZE` (capped at the dataset size). Smaller
        blocks cap peak workspace memory; larger blocks amortise
        per-block dispatch overhead.
    threads:
        Worker threads for the E-step. Blocks are split into ``threads``
        contiguous runs, one per worker, and worker partials are reduced
        in worker order — results are bit-reproducible for a fixed
        configuration regardless of scheduling.
    dtype:
        Compute precision of the E-step workspace: ``"float64"``
        (default, matches the legacy path to 1e-12) or ``"float32"``
        (approximate throughput mode; sufficient statistics still
        accumulate in float64).
    sanitize:
        Opt into the runtime sanitizer
        (:mod:`repro.tooling.sanitize`): per-worker write intervals are
        recorded and checked for disjointness, buffers for aliasing,
        state/stats for NaN/Inf and simplex violations, and the reduce
        for completion-order independence. Also enabled process-wide by
        ``TCAM_SANITIZE=1``. Off (the default) adds no work to the hot
        path beyond one ``None`` test per block.
    """

    block_size: int | None = None
    threads: int = 1
    dtype: str = "float64"
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.block_size is not None and self.block_size <= 0:
            raise ValueError(f"block_size must be positive, got {self.block_size}")
        if self.threads <= 0:
            raise ValueError(f"threads must be positive, got {self.threads}")
        if self.dtype not in _DTYPES:
            raise ValueError(
                f"dtype must be one of {_DTYPES}, got {self.dtype!r}"
            )

    def resolved_block_size(self, num_ratings: int) -> int:
        """The effective block length for a dataset of ``num_ratings`` rows."""
        size = self.block_size if self.block_size is not None else DEFAULT_BLOCK_SIZE
        return max(1, min(size, max(num_ratings, 1)))


class _Kernel:
    """Shared plumbing of the per-model blocked E-step kernels.

    A kernel owns the (immutable) rating triples plus the model
    dimensions, and exposes three hooks to :class:`BlockedEStep`:

    * :meth:`stat_arrays` — freshly zeroed accumulator arrays, one set
      per worker;
    * :meth:`make_workspace` — preallocated scratch buffers sized to one
      block, one set per worker;
    * :meth:`accumulate` — fold rows ``[lo, hi)`` into a stats set and
      return the block's log-likelihood contribution.
    """

    def __init__(
        self,
        users: IntArray,
        intervals: IntArray,
        items: IntArray,
        scores: FloatArray,
        dtype: str = "float64",
    ) -> None:
        self.u = users
        self.t = intervals
        self.v = items
        self.dtype = np.dtype(dtype)
        self.c = scores.astype(self.dtype, copy=False)

    @property
    def num_ratings(self) -> int:
        """Number of rating triples the kernel iterates."""
        return int(self.c.shape[0])

    def _scalars(self, capacity: int, names: tuple[str, ...]) -> dict[str, AnyArray]:
        """One ``(capacity,)`` scratch vector per name."""
        return {name: np.empty(capacity, dtype=self.dtype) for name in names}

    def stat_arrays(self) -> ArrayState:
        raise NotImplementedError

    def make_workspace(self, capacity: int) -> Workspace:
        raise NotImplementedError

    def accumulate(
        self,
        state: ArrayState,
        lo: int,
        hi: int,
        ws: Workspace,
        stats: ArrayState,
    ) -> float:
        raise NotImplementedError


class TTCAMKernel(_Kernel):
    """Blocked E-step of TTCAM (Equations 4–6 and 13–14, plus the λ and
    sufficient-statistics numerators of Equations 8, 9, 11, 15, 16)."""

    def __init__(
        self,
        users: IntArray,
        intervals: IntArray,
        items: IntArray,
        scores: FloatArray,
        shape: tuple[int, int, int],
        k1: int,
        k2: int,
        dtype: str = "float64",
    ) -> None:
        super().__init__(users, intervals, items, scores, dtype)
        self.n, self.t_dim, self.v_dim = shape
        self.k1, self.k2 = k1, k2

    def stat_arrays(self) -> ArrayState:
        """Zeroed TTCAM sufficient-statistic accumulators."""
        return {
            "theta_num": np.zeros((self.n, self.k1)),
            "phi_num": np.zeros((self.v_dim, self.k1)),
            "theta_time_num": np.zeros((self.t_dim, self.k2)),
            "phi_time_num": np.zeros((self.v_dim, self.k2)),
            "lam_num": np.zeros(self.n),
        }

    def make_workspace(self, capacity: int) -> Workspace:
        """One worker's preallocated scratch buffers for ``capacity`` rows."""
        ws: Workspace = {
            "z": np.empty((capacity, self.k1), dtype=self.dtype),
            "phi_v": np.empty((self.k1, capacity), dtype=self.dtype),
            "x": np.empty((capacity, self.k2), dtype=self.dtype),
            "phi_time_v": np.empty((self.k2, capacity), dtype=self.dtype),
            "plan1": ScatterPlan(self.k1, capacity),
            "plan2": ScatterPlan(self.k2, capacity),
        }
        ws.update(self._scalars(capacity, ("p_int", "p_ctx", "lam", "den", "ps1", "a", "b")))
        return ws

    @hot_path
    def accumulate(
        self, state: ArrayState, lo: int, hi: int, ws: Workspace, stats: ArrayState
    ) -> float:
        """Fold rows ``[lo, hi)`` into ``stats``; return the block's LL."""
        u, t, v, c = self.u[lo:hi], self.t[lo:hi], self.v[lo:hi], self.c[lo:hi]
        b = hi - lo
        z = ws["z"][:b]
        phi_v = ws["phi_v"][:, :b]
        x = ws["x"][:b]
        phi_time_v = ws["phi_time_v"][:, :b]
        p_int, p_ctx = ws["p_int"][:b], ws["p_ctx"][:b]
        lam_r, den, ps1 = ws["lam"][:b], ws["den"][:b], ws["ps1"][:b]
        s1, s2 = ws["a"][:b], ws["b"][:b]

        # joint_z[r, z] = θ[u_r, z] · φ[z, v_r] (numerator of Eq. 5)
        np.take(state["theta"], u, axis=0, out=z, mode="clip")
        np.take(state["phi"], v, axis=1, out=phi_v, mode="clip")
        z *= phi_v.T
        z.sum(axis=1, out=p_int)  # P(v|θ_u), Eq. 2
        # joint_x[r, x] = θ′[t_r, x] · φ′[x, v_r] (numerator of Eq. 13)
        np.take(state["theta_time"], t, axis=0, out=x, mode="clip")
        np.take(state["phi_time"], v, axis=1, out=phi_time_v, mode="clip")
        x *= phi_time_v.T
        x.sum(axis=1, out=p_ctx)  # P(v|θ′_t), Eq. 12
        np.take(state["lambda_u"], u, out=lam_r, mode="clip")

        np.multiply(lam_r, p_int, out=s1)  # λ_u · P(v|θ_u)
        np.subtract(1.0, lam_r, out=s2)
        s2 *= p_ctx  # (1-λ_u) · P(v|θ′_t)
        np.add(s1, s2, out=den)
        den += EPS
        np.divide(s1, den, out=ps1)  # P(s=1|u,t,v), Eq. 4
        np.log(den, out=s2)
        log_likelihood = float(np.dot(c, s2))

        np.multiply(c, ps1, out=s1)  # c · P(s=1|·), the λ numerator (Eq. 11)
        scatter_sum_1d(u, s1, self.n, out=stats["lam_num"])
        # Fused c · resp_z: scale joint_z by c·ps1 / (P_int + EPS) in place.
        np.add(p_int, EPS, out=s2)
        np.divide(s1, s2, out=s2)
        z *= s2[:, None]
        scatter_sum(u, z, self.n, out=stats["theta_num"], plan=ws["plan1"])
        scatter_sum(v, z, self.v_dim, out=stats["phi_num"], plan=ws["plan1"])
        # Fused c · resp_x with c·(1-ps1) = c - c·ps1.
        np.subtract(c, s1, out=s1)
        np.add(p_ctx, EPS, out=s2)
        np.divide(s1, s2, out=s2)
        x *= s2[:, None]
        scatter_sum(t, x, self.t_dim, out=stats["theta_time_num"], plan=ws["plan2"])
        scatter_sum(v, x, self.v_dim, out=stats["phi_time_num"], plan=ws["plan2"])
        return log_likelihood


class ITCAMKernel(_Kernel):
    """Blocked E-step of ITCAM (Equations 4–6 plus the numerators of
    Equations 8–11; the temporal context is a direct per-interval item
    distribution, so its statistic is a ``(T·V,)`` flat count)."""

    def __init__(
        self,
        users: IntArray,
        intervals: IntArray,
        items: IntArray,
        scores: FloatArray,
        shape: tuple[int, int, int],
        k1: int,
        dtype: str = "float64",
    ) -> None:
        super().__init__(users, intervals, items, scores, dtype)
        self.n, self.t_dim, self.v_dim = shape
        self.k1 = k1

    def stat_arrays(self) -> ArrayState:
        """Zeroed ITCAM sufficient-statistic accumulators."""
        return {
            "theta_num": np.zeros((self.n, self.k1)),
            "phi_num": np.zeros((self.v_dim, self.k1)),
            "time_num": np.zeros(self.t_dim * self.v_dim),
            "lam_num": np.zeros(self.n),
        }

    def make_workspace(self, capacity: int) -> Workspace:
        """One worker's preallocated scratch buffers for ``capacity`` rows."""
        ws: Workspace = {
            "z": np.empty((capacity, self.k1), dtype=self.dtype),
            "phi_v": np.empty((self.k1, capacity), dtype=self.dtype),
            "tv": np.empty(capacity, dtype=np.int64),
            "plan1": ScatterPlan(self.k1, capacity),
        }
        ws.update(self._scalars(capacity, ("p_int", "p_ctx", "lam", "den", "ps1", "a", "b")))
        return ws

    @hot_path
    def accumulate(
        self, state: ArrayState, lo: int, hi: int, ws: Workspace, stats: ArrayState
    ) -> float:
        """Fold rows ``[lo, hi)`` into ``stats``; return the block's LL."""
        u, t, v, c = self.u[lo:hi], self.t[lo:hi], self.v[lo:hi], self.c[lo:hi]
        b = hi - lo
        z = ws["z"][:b]
        phi_v = ws["phi_v"][:, :b]
        tv = ws["tv"][:b]
        p_int, p_ctx = ws["p_int"][:b], ws["p_ctx"][:b]
        lam_r, den, ps1 = ws["lam"][:b], ws["den"][:b], ws["ps1"][:b]
        s1, s2 = ws["a"][:b], ws["b"][:b]

        np.take(state["theta"], u, axis=0, out=z, mode="clip")
        np.take(state["phi"], v, axis=1, out=phi_v, mode="clip")
        z *= phi_v.T
        z.sum(axis=1, out=p_int)
        # P(v|θ′_t) gathered through the flat (t·V + v) index, which the
        # time-counts scatter below then reuses.
        np.multiply(t, self.v_dim, out=tv)
        tv += v
        np.take(state["theta_time"].ravel(), tv, out=p_ctx, mode="clip")
        np.take(state["lambda_u"], u, out=lam_r, mode="clip")

        np.multiply(lam_r, p_int, out=s1)
        np.subtract(1.0, lam_r, out=s2)
        s2 *= p_ctx
        np.add(s1, s2, out=den)
        den += EPS
        np.divide(s1, den, out=ps1)
        np.log(den, out=s2)
        log_likelihood = float(np.dot(c, s2))

        np.multiply(c, ps1, out=s1)  # c·ps1
        scatter_sum_1d(u, s1, self.n, out=stats["lam_num"])
        np.add(p_int, EPS, out=s2)
        np.divide(s1, s2, out=s2)
        z *= s2[:, None]
        scatter_sum(u, z, self.n, out=stats["theta_num"], plan=ws["plan1"])
        scatter_sum(v, z, self.v_dim, out=stats["phi_num"], plan=ws["plan1"])
        np.subtract(c, s1, out=s1)  # c·(1-ps1)
        scatter_sum_1d(tv, s1, self.t_dim * self.v_dim, out=stats["time_num"])
        return log_likelihood


class UserTopicKernel(_Kernel):
    """Blocked E-step of the UT baseline (background-smoothed PLSA over
    user documents; time is ignored)."""

    #: State-dict keys of the document-topic / topic-item matrices.
    doc_topics_key = "theta"
    topic_items_key = "phi"

    def __init__(
        self,
        users: IntArray,
        intervals: IntArray,
        items: IntArray,
        scores: FloatArray,
        shape: tuple[int, int, int],
        k: int,
        background: FloatArray,
        background_weight: float,
        dtype: str = "float64",
    ) -> None:
        super().__init__(users, intervals, items, scores, dtype)
        self.n, self.t_dim, self.v_dim = shape
        self.k = k
        self.background = background.astype(self.dtype, copy=False)
        self.background_weight = background_weight

    def stat_arrays(self) -> ArrayState:
        """Zeroed PLSA sufficient-statistic accumulators."""
        return {
            "theta_num": np.zeros((self.stat_arrays_rows(), self.k)),
            "phi_num": np.zeros((self.v_dim, self.k)),
        }

    def make_workspace(self, capacity: int) -> Workspace:
        """One worker's preallocated scratch buffers for ``capacity`` rows."""
        ws: Workspace = {
            "z": np.empty((capacity, self.k), dtype=self.dtype),
            "phi_v": np.empty((self.k, capacity), dtype=self.dtype),
            "plan": ScatterPlan(self.k, capacity),
        }
        ws.update(self._scalars(capacity, ("p", "den", "a")))
        return ws

    def _doc_ids(self, lo: int, hi: int) -> IntArray:
        return self.u[lo:hi]

    @hot_path
    def accumulate(
        self, state: ArrayState, lo: int, hi: int, ws: Workspace, stats: ArrayState
    ) -> float:
        """Fold rows ``[lo, hi)`` into ``stats``; return the block's LL."""
        doc = self._doc_ids(lo, hi)
        v, c = self.v[lo:hi], self.c[lo:hi]
        b = hi - lo
        z = ws["z"][:b]
        phi_v = ws["phi_v"][:, :b]
        p, den, s1 = ws["p"][:b], ws["den"][:b], ws["a"][:b]

        np.take(state[self.doc_topics_key], doc, axis=0, out=z, mode="clip")
        np.take(state[self.topic_items_key], v, axis=1, out=phi_v, mode="clip")
        z *= phi_v.T
        z *= 1.0 - self.background_weight
        z.sum(axis=1, out=p)
        np.take(self.background, v, out=s1, mode="clip")
        s1 *= self.background_weight
        np.add(s1, p, out=den)
        den += EPS
        np.log(den, out=s1)
        log_likelihood = float(np.dot(c, s1))

        # Fused c · resp = joint · (c / denom).
        np.divide(c, den, out=s1)
        z *= s1[:, None]
        scatter_sum(doc, z, self.stat_arrays_rows(), out=stats["theta_num"], plan=ws["plan"])
        scatter_sum(v, z, self.v_dim, out=stats["phi_num"], plan=ws["plan"])
        return log_likelihood

    def stat_arrays_rows(self) -> int:
        """Number of document rows (users for UT, intervals for TT)."""
        return self.n


class TimeTopicKernel(UserTopicKernel):
    """Blocked E-step of the TT baseline — the UT kernel with interval
    documents instead of user documents (``theta_time`` keyed by ``t``)."""

    doc_topics_key = "theta_time"
    topic_items_key = "phi_time"

    def _doc_ids(self, lo: int, hi: int) -> IntArray:
        return self.t[lo:hi]

    def stat_arrays_rows(self) -> int:
        """Number of document rows — intervals for the TT baseline."""
        return self.t_dim


class BlockedEStep:
    """Blocked, optionally threaded E-step executor for one EM fit.

    Built once per fit from a model kernel and an
    :class:`EMEngineConfig`; :meth:`compute` is then called every
    iteration with the current parameter state and returns the reduced
    sufficient statistics plus the iteration's log-likelihood. All
    workspace and statistic buffers are allocated at first use and reused
    for the lifetime of the engine — the steady-state iteration performs
    no ``(R, K)``-sized allocations.

    The block grid and the block→worker assignment are fixed at
    construction (worker ``w`` owns a contiguous run of blocks), and the
    per-worker partials are reduced in worker order, so results are a
    pure function of ``(kernel, config, state)`` — thread scheduling
    cannot perturb them. See the module docstring for the numerical
    contract versus the legacy single-pass path.
    """

    def __init__(self, kernel: _Kernel, config: EMEngineConfig) -> None:
        self.kernel = kernel
        self.config = config
        num_ratings = kernel.num_ratings
        if num_ratings == 0:
            raise ValueError("cannot build an engine over zero ratings")
        block = config.resolved_block_size(num_ratings)
        self.blocks = [
            (lo, min(lo + block, num_ratings))
            for lo in range(0, num_ratings, block)
        ]
        workers = max(1, min(config.threads, len(self.blocks)))
        bounds = np.linspace(0, len(self.blocks), workers + 1).astype(int)
        self.runs = [
            self.blocks[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
        ]
        self._block_size = block
        self._workspaces: list[Workspace] | None = None
        self._stats: list[ArrayState] | None = None
        self._sanitizer = (
            Sanitizer("engine") if config.sanitize or sanitize_enabled() else None
        )

    @property
    def num_blocks(self) -> int:
        """Number of blocks in the fixed grid."""
        return len(self.blocks)

    @property
    def num_workers(self) -> int:
        """Number of worker slots (≤ configured threads)."""
        return len(self.runs)

    def _ensure_buffers(self) -> tuple[list[Workspace], list[ArrayState]]:
        if self._workspaces is None or self._stats is None:
            self._workspaces = [
                self.kernel.make_workspace(self._block_size) for _ in self.runs
            ]
            self._stats = [self.kernel.stat_arrays() for _ in self.runs]
        return self._workspaces, self._stats

    @hot_path
    def _run_worker(
        self,
        worker: int,
        state: ArrayState,
        workspaces: list[Workspace],
        worker_stats: list[ArrayState],
    ) -> float:
        ws = workspaces[worker]
        stats = worker_stats[worker]
        for array in stats.values():
            array.fill(0.0)
        log_likelihood = 0.0
        for lo, hi in self.runs[worker]:
            if self._sanitizer is not None:
                self._sanitizer.record_write(worker, lo, hi)
            log_likelihood += self.kernel.accumulate(state, lo, hi, ws, stats)
        if self._sanitizer is not None:
            self._sanitizer.record_completion(worker)
        return log_likelihood

    @bit_deterministic
    def compute(self, state: ArrayState) -> tuple[ArrayState, float]:
        """One E-step over the full dataset.

        Returns ``(stats, log_likelihood)``. The statistic arrays are the
        engine's internal accumulators — valid until the next
        :meth:`compute` call; callers consume them immediately (the
        models' M-steps allocate fresh parameter arrays from them).
        """
        workspaces, worker_stats = self._ensure_buffers()
        dtype = self.kernel.dtype
        if dtype != np.dtype("float64"):
            state = {
                name: value.astype(dtype, copy=False)
                for name, value in state.items()
            }
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.begin_pass(state, workspaces, worker_stats)
        if len(self.runs) == 1:
            partial_lls = [self._run_worker(0, state, workspaces, worker_stats)]
        else:
            with ThreadPoolExecutor(max_workers=len(self.runs)) as pool:
                futures = [
                    pool.submit(self._run_worker, worker, state, workspaces, worker_stats)
                    for worker in range(len(self.runs))
                ]
                partial_lls = [future.result() for future in futures]
        partials = (
            sanitizer.snapshot_partials(worker_stats) if sanitizer is not None else None
        )
        total = worker_stats[0]
        for stats in worker_stats[1:]:
            for name, array in total.items():
                array += stats[name]
        if sanitizer is not None and partials is not None:
            sanitizer.end_pass(total, partials, self.kernel.num_ratings)
        return total, float(sum(partial_lls))
