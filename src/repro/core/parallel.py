"""Partitioned (MapReduce-style) EM for TCAM.

Section 3.2.3 of the paper notes that the EM procedure "can be easily
expressed in MapReduce" because the E-step factorises over rating entries:
each mapper computes posterior responsibilities and *partial sufficient
statistics* for its shard of the cuboid, a reducer sums the partials, and
the M-step normalises the sums. This module implements exactly that
decomposition. With a fixed seed it reproduces the serial
:class:`~repro.core.ttcam.TTCAM` fit up to floating-point summation order,
which the test suite verifies.

The shard map runs sequentially by default (or in a thread pool with
``workers > 1``; the heavy numpy kernels release the GIL), but the point
is the *algebraic* decomposition — any map/reduce substrate can run it.

Like a real MapReduce substrate, the shard map tolerates worker
failures: a crashed or timed-out shard is re-executed with exponential
backoff (the mapper is a pure function of the broadcast parameters, so
re-execution is bit-deterministic), and a shard that keeps failing
raises :class:`~repro.robustness.errors.ShardFailedError`. The EM loop
itself runs through :func:`~repro.core.em.run_em`, so partitioned fits
get the same checkpoint/resume and health-rollback machinery as the
serial models.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass

import numpy as np

from ..data.cuboid import RatingCuboid
from ..robustness.checkpoint import CheckpointManager
from ..robustness.errors import ShardFailedError
from ..robustness.faults import fault_point
from ..robustness.health import HealthMonitor, rejitter_arrays
from ..robustness.retry import run_with_retry
from ..typing import ArrayState, FloatArray, IntArray
from .engine import BlockedEStep, EMEngineConfig, TTCAMKernel
from .em import (
    EPS,
    EMTrace,
    normalize_rows,
    prepare_fit_controls,
    random_stochastic,
    restore_state,
    run_em,
    scatter_sum,
    scatter_sum_1d,
)
from .params import TTCAMParameters
from .weighting import apply_item_weighting

_STATE_KEYS = ("theta", "phi", "theta_time", "phi_time", "lambda_u")
_STOCHASTIC = ("theta", "phi", "theta_time", "phi_time")

#: One contiguous slice of cuboid entries: (users, intervals, items, scores).
Shard = tuple[IntArray, IntArray, IntArray, FloatArray]


@dataclass
class _ShardStats:
    """Partial sufficient statistics produced by one shard's E-step."""

    theta_num: FloatArray  # (N, K1)
    phi_num: FloatArray  # (K1, V) — stored transposed as (V, K1) internally
    theta_time_num: FloatArray  # (T, K2)
    phi_time_num: FloatArray  # (V, K2)
    lam_num: FloatArray  # (N,)
    log_likelihood: float

    def __iadd__(self, other: "_ShardStats") -> "_ShardStats":
        self.theta_num += other.theta_num
        self.phi_num += other.phi_num
        self.theta_time_num += other.theta_time_num
        self.phi_time_num += other.phi_time_num
        self.lam_num += other.lam_num
        self.log_likelihood += other.log_likelihood
        return self


class PartitionedTTCAM:
    """TTCAM fit by partitioned EM (map over shards, reduce, normalise).

    Accepts the same hyper-parameters as :class:`~repro.core.ttcam.TTCAM`
    plus the number of shards, optional thread workers, and the shard
    fault-tolerance controls:

    Parameters
    ----------
    max_shard_retries:
        Re-executions allowed per shard per iteration before the fit
        fails with :class:`~repro.robustness.errors.ShardFailedError`.
    retry_backoff:
        Base of the deterministic exponential backoff (seconds) between
        shard re-executions.
    shard_timeout:
        Per-shard wall-clock budget (seconds) in threaded mode; a shard
        exceeding it is treated as failed and re-executed. ``None``
        disables the timeout. (Sequential mode cannot preempt a running
        shard, so the timeout applies only with ``workers > 1``.)
    engine:
        Optional :class:`~repro.core.engine.EMEngineConfig`. Each shard's
        mapper then runs its E-step through the blocked engine
        (``block_size``/``dtype`` apply within the shard), and
        ``engine.threads`` provides the default shard-map worker count
        when ``workers`` is left at 1. Mapper engines are constructed
        per call, keeping the mapper a pure function so shard
        retry/re-execution stays bit-deterministic.
    """

    def __init__(
        self,
        num_user_topics: int = 60,
        num_time_topics: int = 40,
        max_iter: int = 50,
        tol: float = 1e-5,
        smoothing: float = 1e-6,
        weighted: bool = False,
        seed: int = 0,
        num_partitions: int = 4,
        workers: int = 1,
        max_shard_retries: int = 2,
        retry_backoff: float = 0.05,
        shard_timeout: float | None = None,
        engine: EMEngineConfig | None = None,
    ) -> None:
        if num_partitions <= 0:
            raise ValueError(f"num_partitions must be positive, got {num_partitions}")
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_shard_retries < 0:
            raise ValueError(f"max_shard_retries must be >= 0, got {max_shard_retries}")
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError(f"shard_timeout must be positive, got {shard_timeout}")
        self.num_user_topics = num_user_topics
        self.num_time_topics = num_time_topics
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        self.weighted = weighted
        self.seed = seed
        self.num_partitions = num_partitions
        self.workers = workers if workers != 1 or engine is None else engine.threads
        self.engine = engine
        self.max_shard_retries = max_shard_retries
        self.retry_backoff = retry_backoff
        self.shard_timeout = shard_timeout
        self.params_: TTCAMParameters | None = None
        self.trace_: EMTrace | None = None

    @property
    def name(self) -> str:
        """Display name used in evaluation tables."""
        return "W-TTCAM(partitioned)" if self.weighted else "TTCAM(partitioned)"

    def _map_shard(
        self,
        shard: Shard,
        theta: FloatArray,
        phi: FloatArray,
        theta_time: FloatArray,
        phi_time: FloatArray,
        lam: FloatArray,
        shape: tuple[int, int, int],
    ) -> _ShardStats:
        """E-step + partial sufficient statistics for one shard (the mapper)."""
        u, t, v, c = shard
        n, t_dim, v_dim = shape
        if self.engine is not None:
            # Blocked mapper: a throwaway engine per call keeps the mapper
            # pure (safe to re-execute concurrently with a straggling
            # first attempt) while still reusing buffers across the
            # shard's blocks. Threads apply at the shard-map level.
            shard_config = EMEngineConfig(
                block_size=self.engine.block_size,
                threads=1,
                dtype=self.engine.dtype,
                sanitize=self.engine.sanitize,
            )
            kernel = TTCAMKernel(
                u, t, v, c, shape,
                self.num_user_topics, self.num_time_topics,
                dtype=self.engine.dtype,
            )
            stats, log_likelihood = BlockedEStep(kernel, shard_config).compute(
                {
                    "theta": theta,
                    "phi": phi,
                    "theta_time": theta_time,
                    "phi_time": phi_time,
                    "lambda_u": lam,
                }
            )
            return _ShardStats(
                theta_num=stats["theta_num"],
                phi_num=stats["phi_num"],
                theta_time_num=stats["theta_time_num"],
                phi_time_num=stats["phi_time_num"],
                lam_num=stats["lam_num"],
                log_likelihood=log_likelihood,
            )
        joint_z = theta[u] * phi[:, v].T
        p_interest = joint_z.sum(axis=1)
        joint_x = theta_time[t] * phi_time[:, v].T
        p_context = joint_x.sum(axis=1)
        lam_r = lam[u]
        denom = lam_r * p_interest + (1 - lam_r) * p_context + EPS
        ps1 = lam_r * p_interest / denom
        resp_z = joint_z * (ps1 / (p_interest + EPS))[:, None]
        resp_x = joint_x * ((1 - ps1) / (p_context + EPS))[:, None]
        c_resp_z = c[:, None] * resp_z
        c_resp_x = c[:, None] * resp_x
        return _ShardStats(
            theta_num=scatter_sum(u, c_resp_z, n),
            phi_num=scatter_sum(v, c_resp_z, v_dim),
            theta_time_num=scatter_sum(t, c_resp_x, t_dim),
            phi_time_num=scatter_sum(v, c_resp_x, v_dim),
            lam_num=scatter_sum_1d(u, c * ps1, n),
            log_likelihood=float(np.dot(c, np.log(denom))),
        )

    def fit(
        self,
        cuboid: RatingCuboid,
        checkpoint: CheckpointManager | str | None = None,
        resume_from: CheckpointManager | str | None = None,
        monitor: HealthMonitor | bool | None = None,
    ) -> "PartitionedTTCAM":
        """Fit by partitioned EM; equivalent to the serial TTCAM fit.

        ``checkpoint``/``resume_from``/``monitor`` behave as in
        :meth:`repro.core.ttcam.TTCAM.fit`, so a run killed between
        iterations (for instance by a permanently failing shard) resumes
        bit-compatibly from its last checkpoint.
        """
        if cuboid.nnz == 0:
            raise ValueError("cannot fit on an empty cuboid")
        if self.weighted:
            cuboid = apply_item_weighting(cuboid)

        n, t_dim, v_dim = cuboid.shape
        k1, k2 = self.num_user_topics, self.num_time_topics
        manager, restored, health = prepare_fit_controls(
            checkpoint, resume_from, monitor, self.default_monitor, self._meta()
        )

        if restored is not None:
            state, start, trace = restore_state(restored, _STATE_KEYS)
        else:
            # Same initialisation order as the serial TTCAM for a fixed seed.
            rng = np.random.default_rng(self.seed)
            state = {
                "theta": random_stochastic(rng, n, k1),
                "phi": random_stochastic(rng, k1, v_dim),
                "theta_time": random_stochastic(rng, t_dim, k2),
                "phi_time": random_stochastic(rng, k2, v_dim),
                "lambda_u": np.full(n, 0.5),
            }
            start, trace = 0, EMTrace()

        shards = self._partition(cuboid)
        user_mass = scatter_sum_1d(cuboid.users, cuboid.scores, n)
        safe_user_mass = np.where(user_mass <= 0, 1.0, user_mass)
        shape = cuboid.shape

        def step(current: ArrayState) -> tuple[ArrayState, float]:
            """One partitioned EM iteration: map shards, reduce, normalise."""
            partials = self._run_map(
                shards,
                current["theta"],
                current["phi"],
                current["theta_time"],
                current["phi_time"],
                current["lambda_u"],
                shape,
            )
            total = partials[0]
            for partial in partials[1:]:
                total += partial
            updated = {
                "theta": normalize_rows(total.theta_num, self.smoothing),
                "phi": normalize_rows(total.phi_num.T, self.smoothing),
                "theta_time": normalize_rows(total.theta_time_num, self.smoothing),
                "phi_time": normalize_rows(total.phi_time_num.T, self.smoothing),
                "lambda_u": np.clip(total.lam_num / safe_user_mass, 0.0, 1.0),
            }
            return updated, total.log_likelihood

        state, trace = run_em(
            state,
            step,
            max_iter=self.max_iter,
            tol=self.tol,
            trace=trace,
            start_iteration=start,
            checkpoints=manager,
            monitor=health,
            rejitter=self._rejitter,
        )

        self.params_ = TTCAMParameters(
            theta=state["theta"],
            phi=state["phi"],
            theta_time=state["theta_time"],
            phi_time=state["phi_time"],
            lambda_u=state["lambda_u"],
        )
        self.trace_ = trace
        return self

    def _meta(self) -> dict[str, object]:
        """Identifying configuration stored in (and checked against) checkpoints."""
        return {
            "model": "ttcam",  # partitioned EM is bit-compatible with serial TTCAM
            "k1": self.num_user_topics,
            "k2": self.num_time_topics,
            "weighted": self.weighted,
            "seed": self.seed,
        }

    def default_monitor(self) -> HealthMonitor:
        """The numerical-health invariants of a TTCAM state."""
        return HealthMonitor(
            stochastic=_STOCHASTIC,
            unit_interval=("lambda_u",),
            no_collapse=("theta", "theta_time"),
        )

    def _rejitter(self, state: ArrayState, recovery: int) -> ArrayState:
        """Seeded perturbation applied to a rolled-back state."""
        return rejitter_arrays(
            state, _STOCHASTIC, ("lambda_u",), seed=self.seed + 7919 * recovery
        )

    def _partition(self, cuboid: RatingCuboid) -> list[Shard]:
        """Split the cuboid's entries into contiguous shards."""
        bounds = np.linspace(0, cuboid.nnz, self.num_partitions + 1).astype(int)
        shards: list[Shard] = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            if hi > lo:
                shards.append(
                    (
                        cuboid.users[lo:hi],
                        cuboid.intervals[lo:hi],
                        cuboid.items[lo:hi],
                        cuboid.scores[lo:hi],
                    )
                )
        return shards

    def _run_map(
        self,
        shards: list[Shard],
        theta: FloatArray,
        phi: FloatArray,
        theta_time: FloatArray,
        phi_time: FloatArray,
        lam: FloatArray,
        shape: tuple[int, int, int],
    ) -> list[_ShardStats]:
        """Run the mapper over all shards with per-shard retry.

        The mapper is a pure function of the broadcast parameters, so a
        re-executed shard reproduces its statistics bit-for-bit and the
        reduce (performed in fixed shard order by the caller) is
        unaffected by which attempt finally succeeded.
        """

        def attempt_shard(index: int, shard: Shard, attempt: int) -> _ShardStats:
            fault_point("parallel.shard", shard=index, attempt=attempt)
            return self._map_shard(shard, theta, phi, theta_time, phi_time, lam, shape)

        def guarded(index: int, shard: Shard) -> _ShardStats:
            return run_with_retry(
                lambda attempt: attempt_shard(index, shard, attempt),
                retries=self.max_shard_retries,
                backoff=self.retry_backoff,
                label=f"E-step shard {index}",
                error=ShardFailedError,
            )

        if self.workers == 1 or len(shards) == 1:
            return [guarded(i, s) for i, s in enumerate(shards)]
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [
                pool.submit(attempt_shard, i, s, 0) for i, s in enumerate(shards)
            ]
            results: list[_ShardStats | None] = [None] * len(shards)
            stragglers: list[int] = []
            for index, future in enumerate(futures):
                try:
                    results[index] = future.result(timeout=self.shard_timeout)
                except (Exception, FutureTimeoutError):
                    # Crashed or overran its budget — re-execute below.
                    stragglers.append(index)
            for index in stragglers:
                # Attempt 0 already failed; replay it against the retry
                # budget so fault plans keyed on attempt numbers line up.
                results[index] = guarded(index, shards[index])
            assert all(stats is not None for stats in results)
            return [stats for stats in results if stats is not None]

    def score_items(self, user: int, interval: int) -> FloatArray:
        """Ranking scores for every item, as in the serial model."""
        if self.params_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self.params_.score_items(user, interval)

    def query_space(self, user: int, interval: int) -> tuple[FloatArray, FloatArray]:
        """Expanded query vector / topic matrix, as in the serial model."""
        if self.params_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self.params_.query_space(user, interval)

    def matrix_cache_key(self, interval: int) -> str:
        """The stacked topic–item matrix is query-independent (as in TTCAM)."""
        return "static"
