"""Shared EM machinery: scatter sums, normalisation, convergence tracking.

Both TCAM variants (and the UT/TT baselines) are latent-class mixture
models fit by expectation–maximisation over the sparse rating cuboid. The
helpers here keep the per-model code focused on the model equations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

EPS = 1e-12


def scatter_sum(rows: np.ndarray, values: np.ndarray, num_rows: int) -> np.ndarray:
    """Row-indexed scatter-add: sum ``values`` rows into ``num_rows`` bins.

    ``rows`` is ``(R,)`` int; ``values`` is ``(R, K)``. Returns the
    ``(num_rows, K)`` matrix whose row ``i`` is the sum of all ``values``
    rows with ``rows == i``. Implemented with a single flat ``bincount``,
    which is far faster than ``np.add.at`` for large ``R``.
    """
    values = np.atleast_2d(values)
    r, k = values.shape
    if rows.shape != (r,):
        raise ValueError(f"rows shape {rows.shape} incompatible with values {values.shape}")
    flat_index = rows[:, None] * k + np.arange(k, dtype=np.int64)
    flat = np.bincount(
        flat_index.ravel(), weights=values.ravel(), minlength=num_rows * k
    )
    return flat.reshape(num_rows, k)


def scatter_sum_1d(rows: np.ndarray, values: np.ndarray, num_rows: int) -> np.ndarray:
    """Scalar scatter-add: ``(R,)`` values summed into ``num_rows`` bins."""
    return np.bincount(rows, weights=values, minlength=num_rows)


def normalize_rows(matrix: np.ndarray, smoothing: float = 0.0) -> np.ndarray:
    """Return a row-stochastic copy of ``matrix``.

    ``smoothing`` is added to every cell first (pseudo-count smoothing), so
    rows that received no mass become uniform rather than NaN.
    """
    smoothed = matrix + smoothing
    totals = smoothed.sum(axis=1, keepdims=True)
    zero_rows = totals[:, 0] <= EPS
    if zero_rows.any():
        smoothed[zero_rows] = 1.0
        totals = smoothed.sum(axis=1, keepdims=True)
    return smoothed / totals


def random_stochastic(
    rng: np.random.Generator, rows: int, cols: int
) -> np.ndarray:
    """Random row-stochastic matrix for EM initialisation.

    Uses ``0.5 + U(0,1)`` before normalising so no cell starts near zero
    (near-zero initial probabilities stall EM).
    """
    matrix = 0.5 + rng.random((rows, cols))
    return matrix / matrix.sum(axis=1, keepdims=True)


@dataclass
class EMTrace:
    """Log-likelihood trace and convergence verdict of one EM run."""

    log_likelihood: list[float] = field(default_factory=list)
    converged: bool = False

    @property
    def iterations(self) -> int:
        """Number of completed EM iterations."""
        return len(self.log_likelihood)

    @property
    def final_log_likelihood(self) -> float:
        """Log likelihood after the last iteration."""
        if not self.log_likelihood:
            raise ValueError("no EM iterations recorded")
        return self.log_likelihood[-1]

    def record(self, value: float, tol: float) -> bool:
        """Record one iteration's log likelihood; return True on convergence.

        Convergence is declared when the relative improvement over the
        previous iteration drops below ``tol``.
        """
        if not np.isfinite(value):
            raise FloatingPointError(
                f"log likelihood became non-finite: {value}"
            )
        previous = self.log_likelihood[-1] if self.log_likelihood else None
        self.log_likelihood.append(float(value))
        if previous is None:
            return False
        denom = max(abs(previous), EPS)
        if (value - previous) / denom < tol:
            self.converged = True
        return self.converged

    def is_monotone(self, slack: float = 1e-8) -> bool:
        """EM guarantees non-decreasing likelihood; verify it (with float slack)."""
        ll = self.log_likelihood
        return all(
            ll[i + 1] >= ll[i] - slack * max(abs(ll[i]), 1.0)
            for i in range(len(ll) - 1)
        )
