"""Shared EM machinery: scatter sums, normalisation, convergence tracking,
and the fault-tolerant iteration driver.

Both TCAM variants (and the UT/TT baselines) are latent-class mixture
models fit by expectation–maximisation over the sparse rating cuboid. The
helpers here keep the per-model code focused on the model equations, while
:func:`run_em` owns the loop itself — convergence, periodic checkpoints,
numerical-health rollback and fault-injection points — identically for
every model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..robustness.checkpoint import Checkpoint, CheckpointManager
from ..robustness.errors import HealthViolation
from ..robustness.faults import fault_point, maybe_poison
from ..robustness.health import HealthMonitor
from ..typing import AnyArray, ArrayState, FloatArray, IntArray, bit_deterministic

EPS = 1e-12


def safe_log(values: AnyArray, eps: float = EPS) -> AnyArray:
    """``log(values + eps)`` — the blessed guarded logarithm.

    Lint rule TCAM002 bans raw ``np.log`` on probability arrays; use this
    helper (or an explicit ``EPS`` term) so zero-probability cells degrade
    to a large negative log instead of ``-inf``.
    """
    return np.log(values + eps)


def safe_divide(
    numerator: AnyArray, denominator: AnyArray | float, eps: float = EPS
) -> AnyArray:
    """``numerator / (denominator + eps)`` — the blessed guarded division.

    The TCAM002 counterpart of :func:`safe_log` for responsibility
    normalisation: a zero denominator yields zero mass, not NaN.
    """
    return np.divide(numerator, denominator + eps)


class ScatterPlan:
    """Reusable index workspace for :func:`scatter_sum`.

    A plan hoists the ``np.arange(k)`` column offsets and the
    ``(capacity, k)`` flat-index buffer out of the per-call path, so a
    caller that scatters many same-width batches (the blocked EM engine
    scatters four per block per iteration) performs no index allocation
    after construction. ``capacity`` bounds the batch length the plan can
    serve; shorter batches use a leading slice of the buffer.
    """

    def __init__(self, k: int, capacity: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.k = int(k)
        self.capacity = int(capacity)
        self._cols = np.arange(self.k, dtype=np.int64)
        self._flat = np.empty((self.capacity, self.k), dtype=np.int64)

    def flat_index(self, rows: IntArray) -> IntArray:
        """``rows[:, None] * k + arange(k)`` raveled, without allocating."""
        r = rows.shape[0]
        if r > self.capacity:
            raise ValueError(
                f"batch of {r} rows exceeds plan capacity {self.capacity}"
            )
        buffer = self._flat[:r]
        np.multiply(rows[:, None], self.k, out=buffer)
        buffer += self._cols
        return buffer.ravel()


def scatter_sum(
    rows: IntArray,
    values: FloatArray,
    num_rows: int,
    out: FloatArray | None = None,
    plan: ScatterPlan | None = None,
) -> FloatArray:
    """Row-indexed scatter-add: sum ``values`` rows into ``num_rows`` bins.

    ``rows`` is ``(R,)`` int; ``values`` is ``(R, K)``. Returns the
    ``(num_rows, K)`` matrix whose row ``i`` is the sum of all ``values``
    rows with ``rows == i``. Implemented with a single flat ``bincount``,
    which is far faster than ``np.add.at`` for large ``R``.

    ``out`` accumulates the result into a caller-provided ``(num_rows, K)``
    array (``out += ...``) and returns it, so a blocked caller can fold
    many partial scatters into one statistics buffer. ``plan`` supplies a
    preallocated :class:`ScatterPlan`, hoisting the flat-index
    construction out of the call. Both default to the legacy
    allocate-and-return behaviour.
    """
    values = np.atleast_2d(values)
    r, k = values.shape
    if rows.shape != (r,):
        raise ValueError(f"rows shape {rows.shape} incompatible with values {values.shape}")
    if plan is not None:
        if plan.k != k:
            raise ValueError(f"plan was built for k={plan.k}, values have k={k}")
        flat_index = plan.flat_index(rows)
    else:
        flat_index = (rows[:, None] * k + np.arange(k, dtype=np.int64)).ravel()
    flat = np.bincount(flat_index, weights=values.ravel(), minlength=num_rows * k)
    result = flat.reshape(num_rows, k)
    if out is None:
        return result
    if out.shape != (num_rows, k):
        raise ValueError(
            f"out shape {out.shape} incompatible with ({num_rows}, {k})"
        )
    out += result
    return out


def scatter_sum_1d(
    rows: IntArray,
    values: FloatArray,
    num_rows: int,
    out: FloatArray | None = None,
) -> FloatArray:
    """Scalar scatter-add: ``(R,)`` values summed into ``num_rows`` bins.

    As in :func:`scatter_sum`, ``out`` accumulates into a caller-provided
    ``(num_rows,)`` array instead of allocating a fresh result.
    """
    result = np.bincount(rows, weights=values, minlength=num_rows)
    if out is None:
        return result
    if out.shape != (num_rows,):
        raise ValueError(f"out shape {out.shape} incompatible with ({num_rows},)")
    out += result
    return out


def normalize_rows(matrix: FloatArray, smoothing: float = 0.0) -> FloatArray:
    """Return a row-stochastic copy of ``matrix``.

    ``smoothing`` is added to every cell first (pseudo-count smoothing), so
    rows that received no mass become uniform rather than NaN.
    """
    smoothed = matrix + smoothing
    totals = smoothed.sum(axis=1, keepdims=True)
    zero_rows = totals[:, 0] <= EPS
    if zero_rows.any():
        smoothed[zero_rows] = 1.0
        totals = smoothed.sum(axis=1, keepdims=True)
    return smoothed / totals


def random_stochastic(rng: np.random.Generator, rows: int, cols: int) -> FloatArray:
    """Random row-stochastic matrix for EM initialisation.

    Uses ``0.5 + U(0,1)`` before normalising so no cell starts near zero
    (near-zero initial probabilities stall EM).
    """
    matrix = 0.5 + rng.random((rows, cols))
    return matrix / matrix.sum(axis=1, keepdims=True)


@dataclass
class EMTrace:
    """Log-likelihood trace and convergence verdict of one EM run."""

    log_likelihood: list[float] = field(default_factory=list)
    converged: bool = False

    @property
    def iterations(self) -> int:
        """Number of completed EM iterations."""
        return len(self.log_likelihood)

    @property
    def final_log_likelihood(self) -> float:
        """Log likelihood after the last iteration."""
        if not self.log_likelihood:
            raise ValueError("no EM iterations recorded")
        return self.log_likelihood[-1]

    def record(self, value: float, tol: float) -> bool:
        """Record one iteration's log likelihood; return True on convergence.

        Convergence is declared when the relative improvement over the
        previous iteration drops below ``tol``.
        """
        if not np.isfinite(value):
            raise FloatingPointError(
                f"log likelihood became non-finite: {value}"
            )
        previous = self.log_likelihood[-1] if self.log_likelihood else None
        self.log_likelihood.append(float(value))
        if previous is None:
            return False
        denom = max(abs(previous), EPS)
        if (value - previous) / denom < tol:
            self.converged = True
        return self.converged

    def is_monotone(self, slack: float = 1e-8) -> bool:
        """EM guarantees non-decreasing likelihood; verify it (with float slack)."""
        ll = self.log_likelihood
        return all(
            ll[i + 1] >= ll[i] - slack * max(abs(ll[i]), 1.0)
            for i in range(len(ll) - 1)
        )


EMStep = Callable[[ArrayState], tuple[ArrayState, float]]


def _copy_state(state: ArrayState) -> ArrayState:
    """Deep-copy one EM state (rollback must not alias live arrays)."""
    return {name: np.array(value, copy=True) for name, value in state.items()}


@bit_deterministic
def run_em(
    state: ArrayState,
    step: EMStep,
    max_iter: int,
    tol: float,
    trace: EMTrace | None = None,
    start_iteration: int = 0,
    checkpoints: CheckpointManager | None = None,
    monitor: HealthMonitor | None = None,
    rejitter: Callable[[ArrayState, int], ArrayState] | None = None,
    max_recoveries: int = 3,
) -> tuple[ArrayState, EMTrace]:
    """Drive one EM run to convergence, fault-tolerantly.

    Parameters
    ----------
    state:
        Named parameter arrays at ``start_iteration`` (the random
        initialisation, or a restored checkpoint).
    step:
        One full EM iteration: maps the current state to
        ``(updated_state, log_likelihood)`` where the likelihood is
        evaluated on the *current* state (standard E-then-M ordering).
        Must be a pure function of the state for resume/retry
        determinism.
    max_iter, tol:
        Iteration cap and relative-improvement convergence threshold.
    trace:
        Existing :class:`EMTrace` to continue (resume); a fresh one by
        default.
    start_iteration:
        Completed-iteration count represented by ``state``.
    checkpoints:
        Optional :class:`~repro.robustness.CheckpointManager`; the state
        is saved on the manager's cadence and on health rollback the last
        good checkpoint is restored.
    monitor:
        Optional :class:`~repro.robustness.HealthMonitor` validating the
        updated state every iteration.
    rejitter:
        ``(state, recovery_index) -> state`` applied after a rollback so
        the replayed trajectory can diverge from the one that failed.
    max_recoveries:
        Health rollbacks allowed before the violation propagates.

    Returns the final state and the trace. Convergence keeps the state
    the likelihood was evaluated on, matching the textbook loop.
    """
    trace = trace if trace is not None else EMTrace()
    initial = _copy_state(state)
    initial_trace = list(trace.log_likelihood)
    iteration = start_iteration
    recoveries = 0
    just_rolled_back = False
    while iteration < max_iter:
        fault_point("em.iteration", iteration=iteration)
        new_state, log_likelihood = step(state)
        new_state = maybe_poison("em.state", new_state, iteration=iteration)
        if monitor is not None:
            # The rejitter perturbs a restored state on purpose, so the
            # first post-rollback likelihood may dip below the trace.
            previous = (
                None
                if just_rolled_back or not trace.log_likelihood
                else trace.log_likelihood[-1]
            )
            try:
                monitor.check(new_state, log_likelihood, previous)
                just_rolled_back = False
            except HealthViolation:
                recoveries += 1
                if recoveries > max_recoveries:
                    raise
                restored = checkpoints.latest() if checkpoints is not None else None
                if restored is not None:
                    state = _copy_state(restored.arrays)
                    trace = EMTrace(log_likelihood=list(restored.log_likelihood))
                    iteration = restored.iteration
                else:
                    state = _copy_state(initial)
                    trace = EMTrace(log_likelihood=list(initial_trace))
                    iteration = start_iteration
                if rejitter is not None:
                    state = rejitter(state, recoveries)
                just_rolled_back = True
                continue
        if trace.record(log_likelihood, tol):
            break
        state = new_state
        iteration += 1
        if checkpoints is not None and checkpoints.should_save(iteration):
            checkpoints.save(state, iteration, trace.log_likelihood)
    return state, trace


def prepare_fit_controls(
    checkpoint: CheckpointManager | str | None,
    resume_from: CheckpointManager | str | None,
    monitor: HealthMonitor | bool | None,
    default_monitor: Callable[[], HealthMonitor],
    meta: dict[str, object],
) -> tuple[CheckpointManager | None, Checkpoint | None, HealthMonitor | None]:
    """Normalise a model's ``fit(...)`` fault-tolerance arguments.

    ``checkpoint`` and ``resume_from`` each accept a
    :class:`~repro.robustness.CheckpointManager` or a directory path;
    ``resume_from`` additionally loads the directory's latest verified
    checkpoint and validates its metadata against ``meta`` (the model's
    identifying hyper-parameters), so resuming with a different
    configuration fails loudly instead of silently mixing runs.
    ``monitor`` accepts ``True`` (build the model's default
    :class:`~repro.robustness.HealthMonitor`), an explicit monitor, or
    ``None``/``False``.

    Returns ``(manager, restored_checkpoint, monitor)``; the manager is
    ``None`` when neither argument was given, and the restored checkpoint
    is ``None`` for fresh fits (including resumes from an empty
    directory).
    """
    from ..robustness.errors import CheckpointError

    def as_manager(
        source: CheckpointManager | str | None,
    ) -> CheckpointManager | None:
        if source is None or isinstance(source, CheckpointManager):
            return source
        return CheckpointManager(source)

    save_to = as_manager(checkpoint)
    resume = as_manager(resume_from)
    manager = save_to if save_to is not None else resume
    restored = resume.latest() if resume is not None else None
    if restored is not None and restored.meta:
        mismatched = {
            key: (restored.meta[key], meta[key])
            for key in meta
            if key in restored.meta and restored.meta[key] != meta[key]
        }
        if mismatched:
            raise CheckpointError(
                f"checkpoint {restored.path} was written by a different "
                f"configuration: {mismatched}"
            )
    if manager is not None:
        manager.meta = dict(meta)
    if monitor is True:
        health = default_monitor()
    elif isinstance(monitor, HealthMonitor):
        health = monitor
    else:
        health = None
    return manager, restored, health


def restore_state(
    restored: Checkpoint, keys: tuple[str, ...]
) -> tuple[ArrayState, int, EMTrace]:
    """Turn a loaded checkpoint back into ``(state, iteration, trace)``.

    Validates that the checkpoint carries exactly the arrays the model
    expects (``keys``), preserving the model's canonical ordering.
    """
    from ..robustness.errors import CheckpointError

    missing = [key for key in keys if key not in restored.arrays]
    if missing:
        raise CheckpointError(
            f"checkpoint {restored.path} is missing arrays {missing}"
        )
    state = {key: np.array(restored.arrays[key], copy=True) for key in keys}
    trace = EMTrace(log_likelihood=list(restored.log_likelihood))
    return state, restored.iteration, trace
