"""Fitted TCAM parameter containers.

These hold the distributions inferred by EM — Table 1 of the paper:

* ``theta``    — ``(N, K1)`` user interest over user-oriented topics
* ``phi``      — ``(K1, V)`` user-oriented topic → item distributions
* ``lambda_u`` — ``(N,)`` per-user personal-interest mixing weights
* ITCAM: ``theta_time`` — ``(T, V)`` temporal context directly over items
* TTCAM: ``theta_time`` — ``(T, K2)`` over time-oriented topics and
  ``phi_time`` — ``(K2, V)`` time-oriented topic → item distributions

Each container also knows how to expand a query ``(u, t)`` into the
concatenated topic space of Section 4.1 (Equations 21–22), which the
recommendation layer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..typing import FloatArray
from .em import EPS


def _check_stochastic(name: str, matrix: FloatArray, tol: float = 1e-6) -> None:
    if np.any(matrix < -tol):
        raise ValueError(f"{name} has negative entries")
    sums = matrix.sum(axis=-1)
    if not np.allclose(sums, 1.0, atol=1e-4):
        worst = float(np.abs(sums - 1.0).max())
        raise ValueError(f"{name} rows are not normalised (max err {worst:.2e})")


@dataclass
class ITCAMParameters:
    """Fitted parameters of item-based TCAM (Section 3.2.1)."""

    theta: FloatArray  # (N, K1)
    phi: FloatArray  # (K1, V)
    theta_time: FloatArray  # (T, V)
    lambda_u: FloatArray  # (N,)

    def __post_init__(self) -> None:
        _check_stochastic("theta", self.theta)
        _check_stochastic("phi", self.phi)
        _check_stochastic("theta_time", self.theta_time)
        if np.any(self.lambda_u < -EPS) or np.any(self.lambda_u > 1 + EPS):
            raise ValueError("lambda_u must lie in [0, 1]")
        if self.theta.shape[1] != self.phi.shape[0]:
            raise ValueError("theta / phi topic dimensions disagree")
        if self.phi.shape[1] != self.theta_time.shape[1]:
            raise ValueError("phi / theta_time item dimensions disagree")
        if self.theta.shape[0] != self.lambda_u.shape[0]:
            raise ValueError("theta / lambda_u user dimensions disagree")

    @property
    def num_users(self) -> int:
        """Number of users ``N``."""
        return int(self.theta.shape[0])

    @property
    def num_user_topics(self) -> int:
        """Number of user-oriented topics ``K1``."""
        return int(self.theta.shape[1])

    @property
    def num_intervals(self) -> int:
        """Number of time intervals ``T``."""
        return int(self.theta_time.shape[0])

    @property
    def num_items(self) -> int:
        """Number of items ``V``."""
        return int(self.phi.shape[1])

    def interest_scores(self, user: int) -> FloatArray:
        """``P(v | θ_u)`` for all items (Equation 2)."""
        return self.theta[user] @ self.phi

    def context_scores(self, interval: int) -> FloatArray:
        """``P(v | θ′_t)`` for all items."""
        return self.theta_time[interval]

    def score_items(self, user: int, interval: int) -> FloatArray:
        """Full mixture likelihood ``P(v | u, t)`` for all items (Eq. 1)."""
        lam = self.lambda_u[user]
        return lam * self.interest_scores(user) + (1 - lam) * self.context_scores(
            interval
        )

    def query_space(self, user: int, interval: int) -> tuple[FloatArray, FloatArray]:
        """Expanded query vector and topic–item matrix (Equations 21–22).

        For ITCAM the temporal context of interval ``t`` acts as one extra
        "topic", so the expanded space has ``K1 + 1`` dimensions and the
        topic–item matrix depends on the queried interval.
        """
        lam = self.lambda_u[user]
        weights = np.concatenate([lam * self.theta[user], [1 - lam]])
        matrix = np.vstack([self.phi, self.theta_time[interval][None, :]])
        return weights, matrix


@dataclass
class TTCAMParameters:
    """Fitted parameters of topic-based TCAM (Section 3.2.2)."""

    theta: FloatArray  # (N, K1)
    phi: FloatArray  # (K1, V)
    theta_time: FloatArray  # (T, K2)
    phi_time: FloatArray  # (K2, V)
    lambda_u: FloatArray  # (N,)

    def __post_init__(self) -> None:
        _check_stochastic("theta", self.theta)
        _check_stochastic("phi", self.phi)
        _check_stochastic("theta_time", self.theta_time)
        _check_stochastic("phi_time", self.phi_time)
        if np.any(self.lambda_u < -EPS) or np.any(self.lambda_u > 1 + EPS):
            raise ValueError("lambda_u must lie in [0, 1]")
        if self.theta.shape[1] != self.phi.shape[0]:
            raise ValueError("theta / phi topic dimensions disagree")
        if self.theta_time.shape[1] != self.phi_time.shape[0]:
            raise ValueError("theta_time / phi_time topic dimensions disagree")
        if self.phi.shape[1] != self.phi_time.shape[1]:
            raise ValueError("phi / phi_time item dimensions disagree")
        if self.theta.shape[0] != self.lambda_u.shape[0]:
            raise ValueError("theta / lambda_u user dimensions disagree")

    @property
    def num_users(self) -> int:
        """Number of users ``N``."""
        return int(self.theta.shape[0])

    @property
    def num_user_topics(self) -> int:
        """Number of user-oriented topics ``K1``."""
        return int(self.theta.shape[1])

    @property
    def num_time_topics(self) -> int:
        """Number of time-oriented topics ``K2``."""
        return int(self.phi_time.shape[0])

    @property
    def num_intervals(self) -> int:
        """Number of time intervals ``T``."""
        return int(self.theta_time.shape[0])

    @property
    def num_items(self) -> int:
        """Number of items ``V``."""
        return int(self.phi.shape[1])

    def interest_scores(self, user: int) -> FloatArray:
        """``P(v | θ_u)`` for all items (Equation 2)."""
        return self.theta[user] @ self.phi

    def context_scores(self, interval: int) -> FloatArray:
        """``P(v | θ′_t)`` for all items (Equation 12)."""
        return self.theta_time[interval] @ self.phi_time

    def score_items(self, user: int, interval: int) -> FloatArray:
        """Full mixture likelihood ``P(v | u, t)`` for all items (Eq. 1)."""
        lam = self.lambda_u[user]
        return lam * self.interest_scores(user) + (1 - lam) * self.context_scores(
            interval
        )

    def query_space(self, user: int, interval: int) -> tuple[FloatArray, FloatArray]:
        """Expanded query vector over the ``K1 + K2`` topic space (Eq. 21–22).

        ``ϑ_q = ⟨λ_u·θ_u, (1−λ_u)·θ′_t⟩`` paired with the stacked
        topic–item matrix ``[φ; φ′]``. The matrix is query-independent,
        which is what makes the Threshold Algorithm's per-topic sorted
        lists precomputable.
        """
        lam = self.lambda_u[user]
        weights = np.concatenate(
            [lam * self.theta[user], (1 - lam) * self.theta_time[interval]]
        )
        return weights, self.topic_item_matrix()

    def topic_item_matrix(self) -> FloatArray:
        """Stacked ``(K1 + K2, V)`` topic–item matrix ``[φ; φ′]`` (memoised)."""
        cached: FloatArray | None = getattr(self, "_stacked_matrix", None)
        if cached is None:
            cached = np.vstack([self.phi, self.phi_time])
            object.__setattr__(self, "_stacked_matrix", cached)
        return cached


TCAMParameters = ITCAMParameters | TTCAMParameters
