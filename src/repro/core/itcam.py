"""Item-based TCAM (ITCAM) — Section 3.2.1 of the paper.

ITCAM explains a rating ``(u, t, v)`` as a two-stage draw: a coin
``s ~ Bernoulli(λ_u)`` picks between the user's intrinsic interest
(``s = 1``: sample a user-oriented topic ``z ~ θ_u`` then ``v ~ φ_z``)
and the temporal context (``s = 0``: sample ``v`` directly from the
per-interval item distribution ``θ′_t``). Parameters are fit with the EM
updates of Equations (4)–(11), fully vectorised over the sparse cuboid.

Setting ``weighted=True`` trains on the item-weighted cuboid of
Section 3.3, yielding the paper's **W-ITCAM** variant.
"""

from __future__ import annotations

import numpy as np

from ..data.cuboid import RatingCuboid
from ..robustness.checkpoint import Checkpoint, CheckpointManager
from ..robustness.health import HealthMonitor, rejitter_arrays
from ..typing import ArrayState, FloatArray
from .engine import BlockedEStep, EMEngineConfig, ITCAMKernel
from .em import (
    EPS,
    EMTrace,
    normalize_rows,
    prepare_fit_controls,
    random_stochastic,
    restore_state,
    run_em,
    scatter_sum,
    scatter_sum_1d,
)
from .params import ITCAMParameters
from .weighting import apply_item_weighting

_STATE_KEYS = ("theta", "phi", "theta_time", "lambda_u")
_STOCHASTIC = ("theta", "phi", "theta_time")


class ITCAM:
    """Item-based temporal context-aware mixture model.

    Parameters
    ----------
    num_user_topics:
        ``K1``, the number of user-oriented topics.
    max_iter:
        Maximum EM iterations. The paper observes convergence within ~50.
    tol:
        Relative log-likelihood improvement below which EM stops.
    smoothing:
        Pseudo-count added per cell when normalising the M-step
        numerators; keeps every probability strictly positive so queries
        against unseen items stay well-defined. ``0`` gives textbook EM.
    weighted:
        Train on the item-weighted cuboid (W-ITCAM) instead of raw counts.
    n_init:
        Number of random EM restarts; the fit with the best final
        training log-likelihood wins.
    seed:
        Seed for the random EM initialisation.
    engine:
        Optional :class:`~repro.core.engine.EMEngineConfig` running the
        E-step through the blocked, buffer-reusing (and optionally
        threaded) execution engine; ``None`` keeps the legacy
        single-pass path (they agree to ``allclose(atol=1e-12)``).

    Attributes (after :meth:`fit`)
    ------------------------------
    params_:
        Fitted :class:`~repro.core.params.ITCAMParameters`.
    trace_:
        :class:`~repro.core.em.EMTrace` with the log-likelihood history.
    """

    def __init__(
        self,
        num_user_topics: int = 60,
        max_iter: int = 50,
        tol: float = 1e-5,
        smoothing: float = 1e-6,
        weighted: bool = False,
        n_init: int = 1,
        seed: int = 0,
        engine: EMEngineConfig | None = None,
    ) -> None:
        if num_user_topics <= 0:
            raise ValueError(f"num_user_topics must be positive, got {num_user_topics}")
        if max_iter <= 0:
            raise ValueError(f"max_iter must be positive, got {max_iter}")
        if smoothing < 0:
            raise ValueError(f"smoothing must be >= 0, got {smoothing}")
        if n_init <= 0:
            raise ValueError(f"n_init must be positive, got {n_init}")
        self.num_user_topics = num_user_topics
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        self.weighted = weighted
        self.n_init = n_init
        self.seed = seed
        self.engine = engine
        self.params_: ITCAMParameters | None = None
        self.trace_: EMTrace | None = None

    @property
    def name(self) -> str:
        """Display name used in evaluation tables."""
        return "W-ITCAM" if self.weighted else "ITCAM"

    def fit(
        self,
        cuboid: RatingCuboid,
        checkpoint: CheckpointManager | str | None = None,
        resume_from: CheckpointManager | str | None = None,
        monitor: HealthMonitor | bool | None = None,
    ) -> "ITCAM":
        """Fit the model to a rating cuboid by EM.

        With ``n_init > 1``, runs that many random restarts and keeps the
        one with the best final training log-likelihood.

        ``checkpoint``/``resume_from``/``monitor`` enable the
        fault-tolerant runtime exactly as in
        :meth:`repro.core.ttcam.TTCAM.fit`: periodic atomic checkpoints,
        bit-compatible resume, and health-guarded rollback. Checkpointing
        requires ``n_init == 1``.
        """
        if cuboid.nnz == 0:
            raise ValueError("cannot fit on an empty cuboid")
        if (checkpoint is not None or resume_from is not None) and self.n_init != 1:
            raise ValueError("checkpoint/resume require n_init == 1")
        if self.weighted:
            cuboid = apply_item_weighting(cuboid)

        manager, restored, health = prepare_fit_controls(
            checkpoint, resume_from, monitor, self.default_monitor, self._meta()
        )
        best: tuple[ITCAMParameters, EMTrace] | None = None
        for restart in range(self.n_init):
            params, trace = self._fit_once(
                cuboid,
                seed=self.seed + restart,
                checkpoints=manager,
                restored=restored,
                monitor=health,
            )
            if best is None or trace.final_log_likelihood > best[1].final_log_likelihood:
                best = (params, trace)
        assert best is not None  # n_init >= 1 guarantees at least one run
        self.params_, self.trace_ = best
        return self

    def _meta(self) -> dict[str, object]:
        """Identifying configuration stored in (and checked against) checkpoints."""
        return {
            "model": "itcam",
            "k1": self.num_user_topics,
            "weighted": self.weighted,
            "seed": self.seed,
        }

    def default_monitor(self) -> HealthMonitor:
        """The numerical-health invariants of an ITCAM state."""
        return HealthMonitor(
            stochastic=_STOCHASTIC,
            unit_interval=("lambda_u",),
            no_collapse=("theta",),
        )

    def _rejitter(self, state: ArrayState, recovery: int) -> ArrayState:
        """Seeded perturbation applied to a rolled-back state."""
        return rejitter_arrays(
            state, _STOCHASTIC, ("lambda_u",), seed=self.seed + 7919 * recovery
        )

    def _fit_once(
        self,
        cuboid: RatingCuboid,
        seed: int,
        checkpoints: CheckpointManager | None = None,
        restored: Checkpoint | None = None,
        monitor: HealthMonitor | None = None,
    ) -> tuple[ITCAMParameters, EMTrace]:
        """One EM run from a random initialisation (or a checkpoint)."""
        n, t_dim, v_dim = cuboid.shape
        k1 = self.num_user_topics
        u, t, v, c = cuboid.users, cuboid.intervals, cuboid.items, cuboid.scores

        if restored is not None:
            state, start, trace = restore_state(restored, _STATE_KEYS)
        else:
            rng = np.random.default_rng(seed)
            state = {
                "theta": random_stochastic(rng, n, k1),
                "phi": random_stochastic(rng, k1, v_dim),
                "theta_time": random_stochastic(rng, t_dim, v_dim),
                "lambda_u": np.full(n, 0.5),
            }
            start, trace = 0, EMTrace()

        user_mass = scatter_sum_1d(u, c, n)  # Σ_t Σ_v C[u,t,v], fixed
        safe_user_mass = np.where(user_mass <= 0, 1.0, user_mass)
        estep = (
            BlockedEStep(
                ITCAMKernel(u, t, v, c, cuboid.shape, k1, dtype=self.engine.dtype),
                self.engine,
            )
            if self.engine is not None
            else None
        )

        def engine_step(current: ArrayState) -> tuple[ArrayState, float]:
            """One EM iteration through the blocked execution engine."""
            assert estep is not None  # selected only when the engine exists
            stats, log_likelihood = estep.compute(current)
            updated = {
                "theta": normalize_rows(stats["theta_num"], self.smoothing),  # Eq. 8
                "phi": normalize_rows(stats["phi_num"].T, self.smoothing),  # Eq. 9
                "theta_time": normalize_rows(
                    stats["time_num"].reshape(t_dim, v_dim), self.smoothing
                ),  # Eq. 10
                "lambda_u": np.clip(
                    stats["lam_num"] / safe_user_mass, 0.0, 1.0
                ),  # Eq. 11
            }
            return updated, log_likelihood

        def step(current: ArrayState) -> tuple[ArrayState, float]:
            """One full EM iteration (E-step likelihood, then M-step update)."""
            theta, phi = current["theta"], current["phi"]
            theta_time, lam = current["theta_time"], current["lambda_u"]
            # ---- E-step --------------------------------------------------
            # joint[r, z] = θ[u_r, z] · φ[z, v_r]  (numerator of Eq. 5)
            joint = theta[u] * phi[:, v].T  # (R, K1)
            p_interest = joint.sum(axis=1)  # P(v|θ_u), Eq. 2
            p_context = theta_time[t, v]  # P(v|θ′_t)
            lam_r = lam[u]
            weighted_interest = lam_r * p_interest
            weighted_context = (1 - lam_r) * p_context
            denom = weighted_interest + weighted_context + EPS
            ps1 = weighted_interest / denom  # P(s=1|u,t,v), Eq. 4
            # resp[r, z] = P(z|u,t,v) = P(z|s=1,·)·P(s=1|·), Eq. 6
            resp = joint * (ps1 / (p_interest + EPS))[:, None]
            log_likelihood = float(np.dot(c, np.log(denom)))
            # ---- M-step --------------------------------------------------
            c_resp = c[:, None] * resp
            c_ps0 = c * (1 - ps1)
            flat = np.bincount(t * v_dim + v, weights=c_ps0, minlength=t_dim * v_dim)
            time_counts = flat.reshape(t_dim, v_dim)
            updated = {
                "theta": normalize_rows(scatter_sum(u, c_resp, n), self.smoothing),  # Eq. 8
                "phi": normalize_rows(scatter_sum(v, c_resp, v_dim).T, self.smoothing),  # Eq. 9
                "theta_time": normalize_rows(time_counts, self.smoothing),  # Eq. 10
                "lambda_u": np.clip(
                    scatter_sum_1d(u, c * ps1, n) / safe_user_mass, 0.0, 1.0
                ),  # Eq. 11
            }
            return updated, log_likelihood

        state, trace = run_em(
            state,
            engine_step if estep is not None else step,
            max_iter=self.max_iter,
            tol=self.tol,
            trace=trace,
            start_iteration=start,
            checkpoints=checkpoints,
            monitor=monitor,
            rejitter=self._rejitter,
        )
        params = ITCAMParameters(
            theta=state["theta"],
            phi=state["phi"],
            theta_time=state["theta_time"],
            lambda_u=state["lambda_u"],
        )
        return params, trace

    # ------------------------------------------------------------------
    # prediction API (shared across all models in this library)
    # ------------------------------------------------------------------

    def _require_fitted(self) -> ITCAMParameters:
        if self.params_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self.params_

    def score_items(self, user: int, interval: int) -> FloatArray:
        """Ranking scores ``P(v | u, t)`` for every item (Equation 1)."""
        return self._require_fitted().score_items(user, interval)

    def query_space(self, user: int, interval: int) -> tuple[FloatArray, FloatArray]:
        """Expanded query vector and topic–item matrix for the TA engine."""
        return self._require_fitted().query_space(user, interval)

    def matrix_cache_key(self, interval: int) -> int:
        """ITCAM's topic–item matrix embeds θ′_t, so it varies by interval."""
        return interval

    def log_likelihood(self, cuboid: RatingCuboid) -> float:
        """Log likelihood of a (held-out or training) cuboid (Equation 3)."""
        params = self._require_fitted()
        u, t, v, c = cuboid.users, cuboid.intervals, cuboid.items, cuboid.scores
        p_interest = np.einsum("rk,kr->r", params.theta[u], params.phi[:, v])
        p_context = params.theta_time[t, v]
        lam_r = params.lambda_u[u]
        prob = lam_r * p_interest + (1 - lam_r) * p_context
        return float(np.dot(c, np.log(prob + EPS)))
