"""Topic-based TCAM (TTCAM) — Section 3.2.2 of the paper.

TTCAM refines ITCAM by modelling the temporal context of each interval as
a multinomial over ``K2`` shared *time-oriented topics* ``φ′_x`` instead
of over raw items: ``P(v | θ′_t) = Σ_x P(v | φ′_x) · P(x | θ′_t)``
(Equation 12). Time-oriented topics are therefore interpretable clusters
of co-bursting items shared across intervals, which the paper shows both
improves recommendation accuracy and produces cleaner event topics.

EM updates follow Equations (13)–(16) for the temporal side and
Equations (4)–(11) for the shared machinery. ``weighted=True`` trains on
the item-weighted cuboid (Section 3.3) giving **W-TTCAM**, the paper's
best model.
"""

from __future__ import annotations

import numpy as np

from ..data.cuboid import RatingCuboid
from ..robustness.checkpoint import Checkpoint, CheckpointManager
from ..robustness.health import HealthMonitor, rejitter_arrays
from ..typing import ArrayState, FloatArray
from .engine import BlockedEStep, EMEngineConfig, TTCAMKernel
from .em import (
    EPS,
    EMTrace,
    normalize_rows,
    prepare_fit_controls,
    random_stochastic,
    restore_state,
    run_em,
    scatter_sum,
    scatter_sum_1d,
)
from .params import TTCAMParameters
from .weighting import apply_item_weighting

_STATE_KEYS = ("theta", "phi", "theta_time", "phi_time", "lambda_u")
_STOCHASTIC = ("theta", "phi", "theta_time", "phi_time")


class TTCAM:
    """Topic-based temporal context-aware mixture model.

    Parameters
    ----------
    num_user_topics:
        ``K1``, the number of user-oriented topics (paper default 60).
    num_time_topics:
        ``K2``, the number of time-oriented topics (paper default 40).
    max_iter, tol, smoothing, seed:
        EM controls, as in :class:`~repro.core.itcam.ITCAM`.
    weighted:
        Train on the item-weighted cuboid (W-TTCAM).
    personalized_lambda:
        Fit one mixing weight per user (the paper's choice). ``False``
        fits a single global λ shared by all users — the ablation the
        paper's "personalized treatment" remark motivates.
    n_init:
        Number of random EM restarts; the fit with the best final
        training log-likelihood wins. EM is fast enough that a few
        restarts are usually worth the variance reduction.
    engine:
        Optional :class:`~repro.core.engine.EMEngineConfig` running the
        E-step through the blocked, buffer-reusing (and optionally
        threaded) execution engine. ``None`` keeps the legacy
        single-pass vectorised path; the engine path agrees with it to
        ``allclose(atol=1e-12)`` (see :mod:`repro.core.engine`).

    Attributes (after :meth:`fit`)
    ------------------------------
    params_:
        Fitted :class:`~repro.core.params.TTCAMParameters`.
    trace_:
        :class:`~repro.core.em.EMTrace` with the log-likelihood history.
    """

    def __init__(
        self,
        num_user_topics: int = 60,
        num_time_topics: int = 40,
        max_iter: int = 50,
        tol: float = 1e-5,
        smoothing: float = 1e-6,
        weighted: bool = False,
        personalized_lambda: bool = True,
        n_init: int = 1,
        seed: int = 0,
        engine: EMEngineConfig | None = None,
    ) -> None:
        if num_user_topics <= 0:
            raise ValueError(f"num_user_topics must be positive, got {num_user_topics}")
        if num_time_topics <= 0:
            raise ValueError(f"num_time_topics must be positive, got {num_time_topics}")
        if max_iter <= 0:
            raise ValueError(f"max_iter must be positive, got {max_iter}")
        if smoothing < 0:
            raise ValueError(f"smoothing must be >= 0, got {smoothing}")
        if n_init <= 0:
            raise ValueError(f"n_init must be positive, got {n_init}")
        self.num_user_topics = num_user_topics
        self.num_time_topics = num_time_topics
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        self.weighted = weighted
        self.personalized_lambda = personalized_lambda
        self.n_init = n_init
        self.seed = seed
        self.engine = engine
        self.params_: TTCAMParameters | None = None
        self.trace_: EMTrace | None = None

    @property
    def name(self) -> str:
        """Display name used in evaluation tables."""
        return "W-TTCAM" if self.weighted else "TTCAM"

    def fit(
        self,
        cuboid: RatingCuboid,
        checkpoint: CheckpointManager | str | None = None,
        resume_from: CheckpointManager | str | None = None,
        monitor: HealthMonitor | bool | None = None,
    ) -> "TTCAM":
        """Fit the model to a rating cuboid by EM.

        With ``n_init > 1``, runs that many random restarts and keeps the
        one with the best final training log-likelihood.

        ``checkpoint`` (a :class:`~repro.robustness.CheckpointManager` or
        directory) enables periodic atomic parameter checkpoints;
        ``resume_from`` continues an interrupted run bit-compatibly from
        the directory's latest checkpoint; ``monitor`` (``True`` or a
        :class:`~repro.robustness.HealthMonitor`) validates numerical
        invariants each iteration and rolls back to the last good
        checkpoint on violation. Checkpointing requires ``n_init == 1``.
        """
        if cuboid.nnz == 0:
            raise ValueError("cannot fit on an empty cuboid")
        if (checkpoint is not None or resume_from is not None) and self.n_init != 1:
            raise ValueError("checkpoint/resume require n_init == 1")
        if self.weighted:
            cuboid = apply_item_weighting(cuboid)

        manager, restored, health = prepare_fit_controls(
            checkpoint, resume_from, monitor, self.default_monitor, self._meta()
        )
        best: tuple[TTCAMParameters, EMTrace] | None = None
        for restart in range(self.n_init):
            params, trace = self._fit_once(
                cuboid,
                seed=self.seed + restart,
                checkpoints=manager,
                restored=restored,
                monitor=health,
            )
            if best is None or trace.final_log_likelihood > best[1].final_log_likelihood:
                best = (params, trace)
        assert best is not None  # n_init >= 1 guarantees at least one run
        self.params_, self.trace_ = best
        return self

    def _meta(self) -> dict[str, object]:
        """Identifying configuration stored in (and checked against) checkpoints."""
        return {
            "model": "ttcam",
            "k1": self.num_user_topics,
            "k2": self.num_time_topics,
            "weighted": self.weighted,
            "personalized_lambda": self.personalized_lambda,
            "seed": self.seed,
        }

    def default_monitor(self) -> HealthMonitor:
        """The numerical-health invariants of a TTCAM state."""
        return HealthMonitor(
            stochastic=_STOCHASTIC,
            unit_interval=("lambda_u",),
            no_collapse=("theta", "theta_time"),
        )

    def _rejitter(self, state: ArrayState, recovery: int) -> ArrayState:
        """Seeded perturbation applied to a rolled-back state."""
        return rejitter_arrays(
            state, _STOCHASTIC, ("lambda_u",), seed=self.seed + 7919 * recovery
        )

    def _fit_once(
        self,
        cuboid: RatingCuboid,
        seed: int,
        checkpoints: CheckpointManager | None = None,
        restored: Checkpoint | None = None,
        monitor: HealthMonitor | None = None,
    ) -> tuple[TTCAMParameters, EMTrace]:
        """One EM run from a random initialisation (or a checkpoint)."""
        n, t_dim, v_dim = cuboid.shape
        k1, k2 = self.num_user_topics, self.num_time_topics
        u, t, v, c = cuboid.users, cuboid.intervals, cuboid.items, cuboid.scores

        if restored is not None:
            state, start, trace = restore_state(restored, _STATE_KEYS)
        else:
            rng = np.random.default_rng(seed)
            state = {
                "theta": random_stochastic(rng, n, k1),
                "phi": random_stochastic(rng, k1, v_dim),
                "theta_time": random_stochastic(rng, t_dim, k2),
                "phi_time": random_stochastic(rng, k2, v_dim),
                "lambda_u": np.full(n, 0.5),
            }
            start, trace = 0, EMTrace()

        user_mass = scatter_sum_1d(u, c, n)
        safe_user_mass = np.where(user_mass <= 0, 1.0, user_mass)
        total_mass = float(c.sum())  # global-λ normaliser, fixed across iterations
        estep = (
            BlockedEStep(
                TTCAMKernel(
                    u, t, v, c, cuboid.shape, k1, k2, dtype=self.engine.dtype
                ),
                self.engine,
            )
            if self.engine is not None
            else None
        )

        def engine_step(current: ArrayState) -> tuple[ArrayState, float]:
            """One EM iteration through the blocked execution engine."""
            assert estep is not None  # selected only when the engine exists
            stats, log_likelihood = estep.compute(current)
            if self.personalized_lambda:
                new_lam = stats["lam_num"] / safe_user_mass  # Eq. 11
            else:
                new_lam = np.full(n, stats["lam_num"].sum() / total_mass)
            updated = {
                "theta": normalize_rows(stats["theta_num"], self.smoothing),  # Eq. 8
                "phi": normalize_rows(stats["phi_num"].T, self.smoothing),  # Eq. 9
                "theta_time": normalize_rows(stats["theta_time_num"], self.smoothing),  # Eq. 15
                "phi_time": normalize_rows(stats["phi_time_num"].T, self.smoothing),  # Eq. 16
                "lambda_u": np.clip(new_lam, 0.0, 1.0),
            }
            return updated, log_likelihood

        def step(current: ArrayState) -> tuple[ArrayState, float]:
            """One full EM iteration (E-step likelihood, then M-step update)."""
            theta, phi = current["theta"], current["phi"]
            theta_time, phi_time = current["theta_time"], current["phi_time"]
            lam = current["lambda_u"]
            # ---- E-step --------------------------------------------------
            joint_z = theta[u] * phi[:, v].T  # (R, K1), numerator of Eq. 5
            p_interest = joint_z.sum(axis=1)  # Eq. 2
            joint_x = theta_time[t] * phi_time[:, v].T  # (R, K2), num. of Eq. 13
            p_context = joint_x.sum(axis=1)  # Eq. 12
            lam_r = lam[u]
            weighted_interest = lam_r * p_interest
            weighted_context = (1 - lam_r) * p_context
            denom = weighted_interest + weighted_context + EPS
            ps1 = weighted_interest / denom  # Eq. 4
            resp_z = joint_z * (ps1 / (p_interest + EPS))[:, None]  # Eq. 6
            resp_x = joint_x * ((1 - ps1) / (p_context + EPS))[:, None]  # Eq. 14
            log_likelihood = float(np.dot(c, np.log(denom)))
            # ---- M-step --------------------------------------------------
            c_resp_z = c[:, None] * resp_z
            c_resp_x = c[:, None] * resp_x
            if self.personalized_lambda:
                new_lam = scatter_sum_1d(u, c * ps1, n) / safe_user_mass  # Eq. 11
            else:
                new_lam = np.full(n, np.dot(c, ps1) / total_mass)  # single global λ
            updated = {
                "theta": normalize_rows(scatter_sum(u, c_resp_z, n), self.smoothing),  # Eq. 8
                "phi": normalize_rows(scatter_sum(v, c_resp_z, v_dim).T, self.smoothing),  # Eq. 9
                "theta_time": normalize_rows(scatter_sum(t, c_resp_x, t_dim), self.smoothing),  # Eq. 15
                "phi_time": normalize_rows(scatter_sum(v, c_resp_x, v_dim).T, self.smoothing),  # Eq. 16
                "lambda_u": np.clip(new_lam, 0.0, 1.0),
            }
            return updated, log_likelihood

        state, trace = run_em(
            state,
            engine_step if estep is not None else step,
            max_iter=self.max_iter,
            tol=self.tol,
            trace=trace,
            start_iteration=start,
            checkpoints=checkpoints,
            monitor=monitor,
            rejitter=self._rejitter,
        )
        params = TTCAMParameters(
            theta=state["theta"],
            phi=state["phi"],
            theta_time=state["theta_time"],
            phi_time=state["phi_time"],
            lambda_u=state["lambda_u"],
        )
        return params, trace

    # ------------------------------------------------------------------
    # prediction API
    # ------------------------------------------------------------------

    def _require_fitted(self) -> TTCAMParameters:
        if self.params_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self.params_

    def score_items(self, user: int, interval: int) -> FloatArray:
        """Ranking scores ``P(v | u, t)`` for every item (Equation 1)."""
        return self._require_fitted().score_items(user, interval)

    def query_space(self, user: int, interval: int) -> tuple[FloatArray, FloatArray]:
        """Expanded ``K1 + K2`` query vector and stacked topic–item matrix."""
        return self._require_fitted().query_space(user, interval)

    def matrix_cache_key(self, interval: int) -> str:
        """TTCAM's stacked ``[φ; φ′]`` matrix is query-independent."""
        return "static"

    def log_likelihood(self, cuboid: RatingCuboid) -> float:
        """Log likelihood of a cuboid under the fitted model (Equation 3)."""
        params = self._require_fitted()
        u, t, v, c = cuboid.users, cuboid.intervals, cuboid.items, cuboid.scores
        p_interest = np.einsum("rk,kr->r", params.theta[u], params.phi[:, v])
        p_context = np.einsum("rk,kr->r", params.theta_time[t], params.phi_time[:, v])
        lam_r = params.lambda_u[u]
        prob = lam_r * p_interest + (1 - lam_r) * p_context
        return float(np.dot(c, np.log(prob + EPS)))
