"""Shared static-typing vocabulary for the TCAM stack.

Every module under :mod:`repro` that touches numerical state imports its
array aliases from here instead of spelling ``npt.NDArray[...]`` inline.
That keeps the signatures short, makes ``mypy --strict`` output readable,
and gives the domain linter (:mod:`repro.tooling.lint`) a single place to
recognise hot-path markers.

The module is deliberately dependency-free beyond numpy: it must be
importable by the tooling layer without dragging in scipy or the model
code.
"""

from __future__ import annotations

import os
from typing import (
    Any,
    Callable,
    Protocol,
    TypeVar,
    runtime_checkable,
)

import numpy as np
import numpy.typing as npt

__all__ = [
    "FloatArray",
    "IntArray",
    "BoolArray",
    "AnyArray",
    "RNG",
    "ArrayState",
    "Workspace",
    "StatBlock",
    "PathLike",
    "CuboidLike",
    "SupportsQuerySpace",
    "SupportsServing",
    "bit_deterministic",
    "hot_path",
    "is_bit_deterministic",
    "is_hot_path",
]

# ---------------------------------------------------------------------------
# Array aliases
# ---------------------------------------------------------------------------

#: Dense floating-point tensor (responsibilities, parameters, scores).
FloatArray = npt.NDArray[np.float64]

#: Integer index tensor (user / interval / item ids, top-k indices).
IntArray = npt.NDArray[np.int64]

#: Boolean mask tensor (exclusion masks, convergence flags).
BoolArray = npt.NDArray[np.bool_]

#: Escape hatch for dtype-polymorphic code (float32/float64 kernels).
AnyArray = npt.NDArray[Any]

#: The only random source the stack permits (lint rule TCAM001).
RNG = np.random.Generator

#: Named bundle of model state arrays, e.g. ``{"theta": ..., "phi": ...}``.
ArrayState = dict[str, FloatArray]

#: Preallocated per-thread scratch buffers used by the blocked E-step.
#: Heterogeneous on purpose: arrays plus reusable index plans.
Workspace = dict[str, Any]

#: Sufficient-statistic accumulators produced by an E-step pass.
StatBlock = dict[str, AnyArray]

#: Anything the serialization layer accepts as a filesystem location.
PathLike = str | os.PathLike[str]


# ---------------------------------------------------------------------------
# Structural protocols
# ---------------------------------------------------------------------------


@runtime_checkable
class CuboidLike(Protocol):
    """Structural shape of the (user, interval, item) observation cuboid.

    Both :class:`repro.data.cuboid.Cuboid` and ad-hoc test doubles satisfy
    this; consumers should depend on the protocol, not the concrete class.
    """

    @property
    def users(self) -> IntArray:
        """Dense user ids, one per observation."""
        ...

    @property
    def intervals(self) -> IntArray:
        """Dense time-interval ids aligned with :attr:`users`."""
        ...

    @property
    def items(self) -> IntArray:
        """Dense item ids aligned with :attr:`users`."""
        ...

    @property
    def scores(self) -> FloatArray:
        """Observation weights (counts or item-weighted masses)."""
        ...

    @property
    def shape(self) -> tuple[int, int, int]:
        """``(num_users, num_intervals, num_items)``."""
        ...


@runtime_checkable
class SupportsQuerySpace(Protocol):
    """A fitted model that can expand a (user, interval) query.

    Satisfied by TTCAM/ITCAM model objects and by
    :class:`repro.core.serialize.LoadedModel`.
    """

    def query_space(self, user: int, interval: int) -> Any:
        """Expanded query vector and topic-item matrix for ``(user, interval)``."""
        ...


@runtime_checkable
class SupportsServing(SupportsQuerySpace, Protocol):
    """The model surface the batch serving engine relies on."""

    @property
    def params_(self) -> Any:
        """Fitted parameter container set by ``fit()``."""
        ...

    def matrix_cache_key(self) -> Any:
        """Key saying which queries share one topic-item matrix."""
        ...


# ---------------------------------------------------------------------------
# Hot-path marker
# ---------------------------------------------------------------------------

_F = TypeVar("_F", bound=Callable[..., Any])

#: Attribute stamped onto callables decorated with :func:`hot_path`.
_HOT_ATTR = "__tcam_hot_path__"


def hot_path(func: _F) -> _F:
    """Mark ``func`` as allocation-free inner-loop code.

    The decorator is zero-cost at runtime — it only stamps an attribute —
    but it is load-bearing for static analysis: lint rule TCAM003 forbids
    array allocation (``np.zeros``/``np.empty``/``np.concatenate``,
    ``.copy()``, ...) inside any function carrying this marker.  Hot
    kernels must write into preallocated workspaces instead.
    """

    setattr(func, _HOT_ATTR, True)
    return func


def is_hot_path(func: Callable[..., Any]) -> bool:
    """Return ``True`` if ``func`` was decorated with :func:`hot_path`."""

    return bool(getattr(func, _HOT_ATTR, False))


# ---------------------------------------------------------------------------
# Bit-determinism marker
# ---------------------------------------------------------------------------

#: Attribute stamped onto callables decorated with :func:`bit_deterministic`.
_BIT_DET_ATTR = "__tcam_bit_deterministic__"


def bit_deterministic(func: _F) -> _F:
    """Mark ``func`` as carrying a bitwise-reproducibility contract.

    The decorator is zero-cost at runtime — it only stamps an attribute —
    but it roots the static determinism analyzer
    (:mod:`repro.tooling.determinism`, ``tcam prove``): every function
    carrying this marker, and everything reachable from it through
    module-local calls, must be free of unordered iteration feeding
    reductions (TCAM030), scheduling/machine-dependent float reduction
    orders (TCAM031), unstable sorts where ties matter (TCAM032), silent
    float dtype mixing (TCAM033), and wall-clock or unseeded entropy
    (TCAM034).  Rule TCAM035 pins the marker onto the documented
    contract functions so the analyzer's roots cannot silently rot.

    The promise is: for fixed inputs and fixed configuration, two runs
    of a marked function produce bit-identical outputs — on any machine,
    any ``PYTHONHASHSEED``, any thread scheduling.
    """

    setattr(func, _BIT_DET_ATTR, True)
    return func


def is_bit_deterministic(func: Callable[..., Any]) -> bool:
    """Return ``True`` if ``func`` was decorated with :func:`bit_deterministic`."""

    return bool(getattr(func, _BIT_DET_ATTR, False))
