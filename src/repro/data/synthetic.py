"""Synthetic timestamped-rating generator (dataset substitute).

The paper evaluates on four crawled datasets (Digg, MovieLens, Douban
Movie, Delicious) that are not distributable. This module substitutes a
generator whose generative process **is the TCAM story itself**, with
ground truth retained for verification:

1. ``K1`` *user-oriented topics* — multinomials over items drawn from a
   sparse Dirichlet whose base measure is Zipf-skewed, so globally popular
   items leak into every topic (the exact pathology the paper's
   item-weighting scheme targets).
2. ``K2`` *events* — time-localised topics with a Gaussian activity bump
   around a peak interval and a dedicated pool of bursty items (plus a
   tunable leak of popular items).
3. Each user draws an interest distribution ``θ_u``, a mixing weight
   ``λ_u ~ Beta(a, b)`` and an activity volume; each rating tosses
   ``s ~ Bernoulli(λ_u)`` and generates the item from either a
   user-oriented topic or the active temporal context.

Because every experimental claim in the paper is about *relative* model
behavior, reproducing the causal structure (stable interests + bursty
public attention + popularity skew) is what matters — not the crawled
byte streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .cuboid import RatingCuboid
from .indexer import Indexer


@dataclass(frozen=True, slots=True)
class EventSpec:
    """One time-localised public-attention event.

    Parameters
    ----------
    name:
        Human-readable event name; dedicated items are labelled with it.
    peak:
        Interval index at which the event's activity peaks.
    width:
        Standard deviation (in intervals) of the Gaussian activity bump.
    strength:
        Relative share of public attention the event commands at its peak.
    num_items:
        Number of dedicated bursty items minted for the event.
    """

    name: str
    peak: int
    width: float = 1.5
    strength: float = 1.0
    num_items: int = 8

    def activity(self, num_intervals: int) -> np.ndarray:
        """Gaussian activity curve of the event over all intervals."""
        t = np.arange(num_intervals, dtype=np.float64)
        curve = np.exp(-0.5 * ((t - self.peak) / max(self.width, 1e-6)) ** 2)
        return self.strength * curve


@dataclass(frozen=True)
class SyntheticConfig:
    """Full parameterisation of one synthetic dataset.

    The four profiles in :mod:`repro.data.profiles` instantiate this with
    values that mimic the corresponding real dataset's character (scale
    ratios, time-sensitivity via the ``λ`` Beta prior, rating density).
    """

    name: str
    num_users: int
    num_items: int
    num_intervals: int
    num_user_topics: int
    events: tuple[EventSpec, ...]
    lambda_alpha: float = 4.0
    lambda_beta: float = 2.0
    mean_ratings_per_user: float = 40.0
    min_ratings_per_user: int = 5
    topic_sparsity: float = 0.05
    interest_sparsity: float = 0.3
    popularity_exponent: float = 1.0
    popularity_offset: float = 0.0
    popular_leak: float = 0.15
    noise_fraction: float = 0.0
    noise_engagement: float = 1.0
    item_lifecycle: float = float("inf")
    evergreen_fraction: float = 0.0
    distinct_items: bool = False
    explicit_scores: bool = False
    item_prefix: str = "item"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users <= 0 or self.num_items <= 0:
            raise ValueError("num_users and num_items must be positive")
        if self.num_intervals <= 0:
            raise ValueError("num_intervals must be positive")
        if self.num_user_topics <= 0:
            raise ValueError("num_user_topics must be positive")
        if not self.events:
            raise ValueError("at least one event is required")
        if not 0 <= self.noise_fraction < 1:
            raise ValueError(
                f"noise_fraction must be in [0, 1), got {self.noise_fraction}"
            )
        if self.item_lifecycle <= 0:
            raise ValueError(
                f"item_lifecycle must be positive, got {self.item_lifecycle}"
            )
        if self.noise_engagement < 1.0:
            raise ValueError(
                f"noise_engagement must be >= 1, got {self.noise_engagement}"
            )
        if not 0 <= self.evergreen_fraction <= 1:
            raise ValueError(
                f"evergreen_fraction must be in [0, 1], got {self.evergreen_fraction}"
            )
        dedicated = sum(e.num_items for e in self.events)
        if dedicated >= self.num_items:
            raise ValueError(
                f"events claim {dedicated} dedicated items but the catalogue "
                f"has only {self.num_items}"
            )
        for event in self.events:
            if not 0 <= event.peak < self.num_intervals:
                raise ValueError(
                    f"event {event.name!r} peaks outside [0, T)"
                )


@dataclass
class GroundTruth:
    """Latent variables behind a synthetic dataset, kept for verification."""

    config: SyntheticConfig
    lambda_u: np.ndarray  # (N,) true mixing weights
    theta: np.ndarray  # (N, K1) user interest distributions
    phi: np.ndarray  # (K1, V) user-oriented topics
    phi_events: np.ndarray  # (K2, V) event (time-oriented) topics
    event_activity: np.ndarray  # (K2, T) unnormalised activity curves
    temporal_context: np.ndarray  # (T, K2) normalised θ′_t
    item_labels: list[str]
    event_names: list[str]
    event_items: dict[str, np.ndarray]  # event name → dedicated item ids
    source: np.ndarray = field(default=None)  # (R,) 1=interest, 0=context, 2=noise
    topic_of: np.ndarray = field(default=None)  # (R,) sampled topic index (−1=noise)
    item_arrival: np.ndarray = field(default=None)  # (V,) arrival interval
    availability: np.ndarray = field(default=None)  # (V, T) attention curves


def sample_rows(
    probabilities: np.ndarray, rows: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Vectorised categorical sampling from selected rows of a matrix.

    ``probabilities`` is ``(R, C)`` row-stochastic; ``rows`` selects one
    row per draw; the result holds one column index per draw.
    """
    gathered = probabilities[rows]
    cumulative = np.cumsum(gathered, axis=1)
    # Guard against rows that do not quite sum to 1 due to float error.
    cumulative /= cumulative[:, -1:]
    u = rng.random((rows.size, 1))
    return (u > cumulative).sum(axis=1).astype(np.int64)


def _zipf_base_measure(
    num_items: int, exponent: float, offset: float = 0.0
) -> np.ndarray:
    """Zipf–Mandelbrot base measure giving a popularity head.

    ``weights ∝ (rank + offset)^(−exponent)``. A positive offset flattens
    the extreme head so no single item saturates the whole user base —
    matching real platforms, where even the hottest story reaches only a
    small fraction of users.
    """
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = (ranks + offset) ** (-exponent)
    return weights / weights.sum()


def _draw_user_topics(
    config: SyntheticConfig, base: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``(K1, V)`` user-oriented topics from a sparse Dirichlet.

    Each topic gets its own permutation of the Zipf base measure: every
    genre has its own hit items (within-topic popularity skew) rather
    than all topics sharing one global head — otherwise "personalised"
    rankings would collapse into plain popularity.
    """
    topics = np.empty((config.num_user_topics, config.num_items))
    concentration = config.topic_sparsity * config.num_items
    for z in range(config.num_user_topics):
        alpha = concentration * base[rng.permutation(config.num_items)] + 1e-6
        topics[z] = rng.dirichlet(alpha)
    return topics / topics.sum(axis=1, keepdims=True)


def _draw_event_topics(
    config: SyntheticConfig,
    base: np.ndarray,
    event_items: dict[str, np.ndarray],
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``(K2, V)`` event topics concentrated on dedicated items.

    Each event topic puts ``1 - popular_leak`` of its mass on the event's
    dedicated bursty items and leaks the rest onto the popularity head, so
    unweighted models see popular items crowd the top of time-oriented
    topics (Figure 5 / Table 5 pathology).
    """
    topics = np.zeros((len(config.events), config.num_items), dtype=np.float64)
    for x, event in enumerate(config.events):
        dedicated = event_items[event.name]
        burst_share = rng.dirichlet(np.full(dedicated.size, 2.0))
        topics[x, dedicated] = (1.0 - config.popular_leak) * burst_share
        leak = rng.dirichlet(config.num_items * base * 0.5 + 1e-6)
        topics[x] += config.popular_leak * leak
        topics[x] /= topics[x].sum()
    return topics


def _assign_event_items(
    config: SyntheticConfig, rng: np.random.Generator
) -> dict[str, np.ndarray]:
    """Reserve disjoint dedicated item-id blocks for each event.

    Dedicated items are drawn from the *tail* of the popularity ranking so
    they are salient (low overall frequency) as the paper assumes.
    """
    tail_start = config.num_items // 3
    tail = np.arange(tail_start, config.num_items, dtype=np.int64)
    needed = sum(e.num_items for e in config.events)
    if needed > tail.size:
        raise ValueError("not enough tail items for the configured events")
    chosen = rng.choice(tail, size=needed, replace=False)
    event_items: dict[str, np.ndarray] = {}
    offset = 0
    for event in config.events:
        event_items[event.name] = np.sort(chosen[offset : offset + event.num_items])
        offset += event.num_items
    return event_items


def _item_labels(
    config: SyntheticConfig, event_items: dict[str, np.ndarray]
) -> list[str]:
    """Label items; dedicated event items carry the event name."""
    labels = [f"{config.item_prefix}_{v:05d}" for v in range(config.num_items)]
    for name, ids in event_items.items():
        for j, v in enumerate(ids):
            labels[int(v)] = f"{config.item_prefix}_{name}_{j}"
    return labels


def _item_availability(
    config: SyntheticConfig,
    event_items: dict[str, np.ndarray],
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-item arrival times and attention-decay curves.

    Real social-media items have life cycles: a story, tag or movie
    arrives at some point and its attention decays. Every non-event item
    gets ``τ_v ~ U(−2ℓ, T)`` (pre-history arrivals keep early intervals
    populated) and curve ``g_v(t) ∝ exp(−(t − τ_v)/ℓ)`` for ``t ≥ τ_v``.
    Dedicated event items arrive at their event's onset. An infinite
    lifecycle yields flat curves (the stationary-catalogue special case).

    Returns ``(arrival, availability)`` with availability rows normalised
    for sampling.
    """
    t_grid = np.arange(config.num_intervals, dtype=np.float64)
    if not np.isfinite(config.item_lifecycle):
        arrival = np.full(config.num_items, -np.inf)
        flat = np.full((config.num_items, config.num_intervals), 1.0 / config.num_intervals)
        return arrival, flat

    lifecycle = config.item_lifecycle
    arrival = rng.uniform(-2 * lifecycle, config.num_intervals - 1, config.num_items)
    for event in config.events:
        onset = max(event.peak - event.width, 0.0)
        arrival[event_items[event.name]] = onset
    age = t_grid[None, :] - arrival[:, None]
    curves = np.where(age >= 0, np.exp(-np.maximum(age, 0) / lifecycle), 0.0)
    # Evergreen head: the most popular items (base measure is sorted by
    # rank) never expire — the "news"/"health" steady tags of Figure 5.
    # Dedicated event items stay bursty regardless of their rank.
    evergreen_count = int(round(config.evergreen_fraction * config.num_items))
    if evergreen_count:
        dedicated = np.concatenate(list(event_items.values()))
        evergreen = np.setdiff1d(np.arange(evergreen_count), dedicated)
        curves[evergreen] = 1.0
        arrival[evergreen] = -np.inf
    # Every item must be sample-able somewhere; late arrivals keep their
    # first live interval, fully-expired pre-history items get a floor.
    totals = curves.sum(axis=1, keepdims=True)
    dead = totals[:, 0] <= 1e-12
    if dead.any():
        curves[dead] = 1.0
        totals = curves.sum(axis=1, keepdims=True)
    return arrival, curves / totals


def generate(config: SyntheticConfig) -> tuple[RatingCuboid, GroundTruth]:
    """Generate a synthetic rating cuboid plus its ground truth.

    Deterministic for a fixed ``config`` (including its ``seed``).
    """
    rng = np.random.default_rng(config.seed)
    num_events = len(config.events)

    base = _zipf_base_measure(
        config.num_items, config.popularity_exponent, config.popularity_offset
    )
    event_items = _assign_event_items(config, rng)
    phi = _draw_user_topics(config, base, rng)
    phi_events = _draw_event_topics(config, base, event_items, rng)
    item_arrival, availability = _item_availability(config, event_items, rng)

    activity = np.stack(
        [event.activity(config.num_intervals) for event in config.events]
    )  # (K2, T)
    context = activity.T + 1e-4  # (T, K2); epsilon keeps every interval valid
    context /= context.sum(axis=1, keepdims=True)

    theta = rng.dirichlet(
        np.full(config.num_user_topics, config.interest_sparsity),
        size=config.num_users,
    )
    lambda_u = rng.beta(
        config.lambda_alpha, config.lambda_beta, size=config.num_users
    )

    volumes = np.maximum(
        rng.poisson(config.mean_ratings_per_user, size=config.num_users),
        config.min_ratings_per_user,
    )
    users = np.repeat(np.arange(config.num_users, dtype=np.int64), volumes)
    total = int(volumes.sum())

    # Interval of each rating: background uniform activity plus extra
    # traffic during event bursts (bursts attract visits).
    interval_weights = 1.0 + activity.sum(axis=0)
    interval_probs = interval_weights / interval_weights.sum()
    intervals = rng.choice(
        config.num_intervals, size=total, p=interval_probs
    ).astype(np.int64)

    # Source of each rating: 1 = intrinsic interest, 0 = temporal context,
    # 2 = popularity noise (herding / front-page clicks), the real-data
    # pathology the item-weighting scheme exists to counteract.
    source = (rng.random(total) < lambda_u[users]).astype(np.int64)
    if config.noise_fraction > 0:
        source[rng.random(total) < config.noise_fraction] = 2
    items = np.empty(total, dtype=np.int64)
    topic_of = np.full(total, -1, dtype=np.int64)

    interest_mask = source == 1
    if interest_mask.any():
        z = sample_rows(theta, users[interest_mask], rng)
        items[interest_mask] = sample_rows(phi, z, rng)
        topic_of[interest_mask] = z
        # Interest-driven behaviors happen while the item is alive: the
        # rating's interval follows the item's attention curve.
        intervals[interest_mask] = sample_rows(availability, items[interest_mask], rng)
    context_mask = source == 0
    if context_mask.any():
        x = sample_rows(context, intervals[context_mask], rng)
        items[context_mask] = sample_rows(phi_events, x, rng)
        topic_of[context_mask] = x
    noise_mask = source == 2
    if noise_mask.any():
        items[noise_mask] = rng.choice(
            config.num_items, size=int(noise_mask.sum()), p=base
        )
        intervals[noise_mask] = sample_rows(availability, items[noise_mask], rng)

    if config.distinct_items:
        # One rating per (user, item) ever — a user diggs a story or rates
        # a movie at most once. Keep the first occurrence of each pair.
        keys = users * config.num_items + items
        _, first = np.unique(keys, return_index=True)
        keep = np.sort(first)
        users, intervals, items = users[keep], intervals[keep], items[keep]
        source, topic_of = source[keep], topic_of[keep]
        interest_mask = interest_mask[keep]
        context_mask = context_mask[keep]
        noise_mask = noise_mask[keep]
        total = keep.size

    if config.explicit_scores:
        # Explicit 1..5 stars: affinity-driven with noise, as in MovieLens.
        affinity = np.select(
            [interest_mask, context_mask], [4.0, 3.4], default=3.0
        )
        scores = np.clip(np.round(affinity + rng.normal(0, 0.8, total)), 1, 5)
    else:
        scores = np.ones(total, dtype=np.float64)
        if config.noise_engagement > 1.0 and noise_mask.any():
            # Implicit feedback records engagement *volume*: exposure-driven
            # actions on popular items repeat (re-visits, repeated tag use),
            # inflating their raw counts well beyond distinct-user reach —
            # the exact count-mass skew the item-weighting scheme corrects.
            scores[noise_mask] += rng.poisson(
                config.noise_engagement - 1.0, size=int(noise_mask.sum())
            )

    labels = _item_labels(config, event_items)
    user_index = Indexer(f"user_{u:05d}" for u in range(config.num_users))
    item_index = Indexer(labels)
    cuboid = RatingCuboid(
        users=users,
        intervals=intervals,
        items=items,
        scores=scores,
        num_users=config.num_users,
        num_intervals=config.num_intervals,
        num_items=config.num_items,
        user_index=user_index,
        item_index=item_index,
    ).coalesce()

    truth = GroundTruth(
        config=config,
        lambda_u=lambda_u,
        theta=theta,
        phi=phi,
        phi_events=phi_events,
        event_activity=activity,
        temporal_context=context,
        item_labels=labels,
        event_names=[event.name for event in config.events],
        event_items=event_items,
        source=source,
        topic_of=topic_of,
        item_arrival=item_arrival,
        availability=availability,
    )
    return cuboid, truth


def auto_events(
    count: int,
    num_intervals: int,
    rng_seed: int = 0,
    width: float = 1.5,
    num_items: int = 8,
) -> tuple[EventSpec, ...]:
    """Mint ``count`` generic events with evenly spread peaks."""
    if count <= 0:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(rng_seed)
    peaks = np.linspace(0, num_intervals - 1, count + 2)[1:-1]
    jitter = rng.uniform(-0.5, 0.5, size=count)
    events = []
    for i in range(count):
        peak = int(np.clip(round(peaks[i] + jitter[i]), 0, num_intervals - 1))
        events.append(
            EventSpec(
                name=f"event{i:02d}",
                peak=peak,
                width=width,
                strength=float(rng.uniform(0.8, 1.4)),
                num_items=num_items,
            )
        )
    return tuple(events)
