"""Dataset profiles mimicking the four evaluation corpora (Table 2).

Each profile builds a :class:`~repro.data.synthetic.SyntheticConfig` whose
character matches the corresponding real dataset:

============  =======================  ==========================================
profile       real counterpart         character captured
============  =======================  ==========================================
``digg``      Digg 2009 news votes     time-sensitive items with short life
                                       cycles, public attention dominates
                                       (``λ_u ~ Beta(2,3)``), one vote per story,
                                       user-heavy (Digg: 139k users / 3.5k items)
``movielens`` MovieLens-10M            stable tastes dominate (``λ ~ Beta(8,2)``),
                                       explicit 1–5 stars, long item life cycles,
                                       one rating per movie
``douban``    Douban Movie crawl       movie tastes + release-year cohorts as the
                                       time-oriented structure; largest catalogue
                                       relative to its user base
``delicious`` Delicious tagging        repeated tag use (engagement counts),
                                       heavy-tailed vocabulary, named news events
                                       ("swine flu"-style bursts)
============  =======================  ==========================================

Absolute sizes are scaled down from the paper's multi-million-rating
crawls to laptop scale; ``scale`` grows or shrinks the user base (and
with it the rating volume) coherently. The user:item ratio of each
profile follows the corresponding row of Table 2 in spirit: Digg and
MovieLens are strongly user-heavy, Douban and Delicious item-heavy.

All profiles include the real-data features the models must cope with:
item arrival/decay life cycles, a Zipf–Mandelbrot popularity head,
popularity-driven noise ratings, and (for implicit-feedback platforms)
engagement-count inflation on popular items.
"""

from __future__ import annotations

from typing import Callable

from .synthetic import EventSpec, SyntheticConfig, auto_events


def _scaled(value: int, scale: float, minimum: int = 20) -> int:
    return max(int(round(value * scale)), minimum)


def digg_profile(scale: float = 1.0, seed: int = 7) -> SyntheticConfig:
    """News aggregator: short life cycles, temporal context dominates.

    ``λ_u ~ Beta(2, 3)`` puts most users below 0.5 personal-interest
    influence, matching Figure 11's finding that >70% of Digg users have
    temporal-context influence above 0.5. Stories live ~2.5 intervals
    (≈1 week at the 3-day granularity) and each user diggs a story at
    most once.
    """
    num_intervals = 60  # ~6 months of 3-day buckets
    events = auto_events(
        count=14,
        num_intervals=num_intervals,
        rng_seed=seed,
        width=1.5,
        num_items=8,
    )
    return SyntheticConfig(
        name="digg",
        num_users=_scaled(1200, scale),
        num_items=_scaled(600, scale, minimum=200),
        num_intervals=num_intervals,
        num_user_topics=8,
        events=events,
        lambda_alpha=2.0,
        lambda_beta=3.0,
        mean_ratings_per_user=40.0,
        topic_sparsity=0.02,
        popularity_exponent=1.1,
        popularity_offset=25.0,
        popular_leak=0.3,
        noise_fraction=0.15,
        item_lifecycle=2.5,
        distinct_items=True,
        item_prefix="story",
        seed=seed,
    )


def movielens_profile(scale: float = 1.0, seed: int = 11) -> SyntheticConfig:
    """Movie ratings: intrinsic taste dominates, explicit 1–5 scores.

    ``λ_u ~ Beta(8, 2)`` concentrates mixing weights above 0.8, matching
    Figure 10 (personal-interest influence > 0.82 for >76% of users).
    Movies have long life cycles (classics stay alive), and each user
    rates a movie once.
    """
    num_intervals = 36  # three years of monthly buckets
    # Events are diffuse on a movie platform: attention waves, not news
    # spikes — wide, polluted by popularity, spread over more items.
    events = auto_events(
        count=6,
        num_intervals=num_intervals,
        rng_seed=seed,
        width=5.0,
        num_items=12,
    )
    return SyntheticConfig(
        name="movielens",
        num_users=_scaled(800, scale),
        num_items=_scaled(320, scale, minimum=120),
        num_intervals=num_intervals,
        num_user_topics=10,
        events=events,
        lambda_alpha=8.0,
        lambda_beta=2.0,
        mean_ratings_per_user=60.0,
        topic_sparsity=0.01,
        popularity_exponent=0.9,
        popularity_offset=15.0,
        popular_leak=0.4,
        noise_fraction=0.12,
        item_lifecycle=float("inf"),
        distinct_items=True,
        explicit_scores=True,
        item_prefix="movie",
        seed=seed,
    )


def douban_profile(scale: float = 1.0, seed: int = 13) -> SyntheticConfig:
    """Douban Movie: taste-driven, with release-year cohorts as events.

    The time-oriented structure is the annual release wave: each "event"
    is one release year whose movies burst together (Table 6's T2007/
    T2009/T2010 topics). The catalogue is the largest of the movie
    profiles, matching Douban's 69,908 movies vs MovieLens's 10,681.
    """
    num_intervals = 30  # five years of two-month buckets
    years = [2006, 2007, 2008, 2009, 2010]
    events = tuple(
        EventSpec(
            name=f"y{year}",
            peak=2 + i * 6,  # one cohort per simulated year
            width=2.0,
            strength=1.2,
            num_items=12,
        )
        for i, year in enumerate(years)
    )
    return SyntheticConfig(
        name="douban",
        num_users=_scaled(700, scale),
        num_items=_scaled(900, scale, minimum=200),
        num_intervals=num_intervals,
        num_user_topics=10,
        events=events,
        lambda_alpha=6.0,
        lambda_beta=2.5,
        mean_ratings_per_user=75.0,
        topic_sparsity=0.012,
        popularity_exponent=1.0,
        popularity_offset=30.0,
        popular_leak=0.2,
        noise_fraction=0.15,
        item_lifecycle=float("inf"),
        distinct_items=True,
        explicit_scores=True,
        item_prefix="movie",
        seed=seed,
    )


def delicious_profile(scale: float = 1.0, seed: int = 17) -> SyntheticConfig:
    """Delicious tagging: repeated tag use plus named news events.

    Ships the named events used by the qualitative analyses: a
    "michaeljackson" burst (Table 5) and a "swineflu" burst (Figure 5),
    along with generic background events. Tags are reused, so entries
    carry engagement counts rather than one-shot votes.
    """
    num_intervals = 44  # ~22 months of half-month buckets
    named = (
        EventSpec(name="michaeljackson", peak=14, width=1.2, strength=1.6, num_items=10),
        EventSpec(name="swineflu", peak=28, width=1.5, strength=1.5, num_items=10),
        EventSpec(name="election", peak=6, width=1.8, strength=1.1, num_items=8),
    )
    generic = auto_events(
        count=6,
        num_intervals=num_intervals,
        rng_seed=seed + 1,
        width=1.4,
        num_items=8,
    )
    return SyntheticConfig(
        name="delicious",
        num_users=_scaled(900, scale),
        num_items=_scaled(1100, scale, minimum=250),
        num_intervals=num_intervals,
        num_user_topics=9,
        events=named + generic,
        lambda_alpha=3.0,
        lambda_beta=3.0,
        mean_ratings_per_user=65.0,
        topic_sparsity=0.03,
        popularity_exponent=1.2,
        popularity_offset=30.0,
        popular_leak=0.35,
        noise_fraction=0.25,
        noise_engagement=4.0,
        item_lifecycle=3.0,
        evergreen_fraction=0.04,
        item_prefix="tag",
        seed=seed,
    )


PROFILES: dict[str, Callable[..., SyntheticConfig]] = {
    "digg": digg_profile,
    "movielens": movielens_profile,
    "douban": douban_profile,
    "delicious": delicious_profile,
}


def profile(name: str, scale: float = 1.0, seed: int | None = None) -> SyntheticConfig:
    """Look up a dataset profile by name.

    ``seed=None`` keeps the profile's default seed so results are
    reproducible across runs.
    """
    try:
        factory = PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; available: {sorted(PROFILES)}"
        ) from None
    if seed is None:
        return factory(scale=scale)
    return factory(scale=scale, seed=seed)
