"""Rating events and user documents.

These are the primitive records of the TCAM paper (Definitions 1 and 2):

* a :class:`Rating` is a triple ``(user, time interval, item)`` plus a
  non-negative score derived from explicit or implicit feedback, and
* a :class:`UserDocument` collects all ``(item, interval)`` pairs a single
  user produced, mirroring the "user as a document of items" view that
  topic models take.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence


@dataclass(frozen=True, slots=True)
class Rating:
    """A single rating behavior ``(u, t, v)`` with a feedback score.

    Parameters
    ----------
    user:
        External user identifier (any hashable label; commonly a string).
    interval:
        Discrete time-interval index the behavior falls in (``0 <= t < T``).
    item:
        External item identifier.
    score:
        Rating score. Implicit feedback uses frequency counts (``1.0`` per
        action); explicit feedback uses the rating value. Must be positive.
    """

    user: str
    interval: int
    item: str
    score: float = 1.0

    def __post_init__(self) -> None:
        if self.interval < 0:
            raise ValueError(f"interval must be >= 0, got {self.interval}")
        if self.score <= 0:
            raise ValueError(f"score must be positive, got {self.score}")

    def as_tuple(self) -> tuple[str, int, str, float]:
        """Return ``(user, interval, item, score)``."""
        return (self.user, self.interval, self.item, self.score)


@dataclass(slots=True)
class UserDocument:
    """All rating behaviors of one user (Definition 2 of the paper).

    The document is the per-user view of a rating collection: an ordered
    list of ``(item, interval, score)`` entries.
    """

    user: str
    entries: list[tuple[str, int, float]] = field(default_factory=list)

    def add(self, item: str, interval: int, score: float = 1.0) -> None:
        """Append one rating behavior to the document."""
        self.entries.append((item, interval, score))

    def items(self) -> list[str]:
        """Return the (possibly repeated) items this user rated."""
        return [item for item, _interval, _score in self.entries]

    def intervals(self) -> list[int]:
        """Return the interval of every entry, aligned with :meth:`items`."""
        return [interval for _item, interval, _score in self.entries]

    def items_in_interval(self, interval: int) -> list[str]:
        """Return the items the user rated during ``interval``."""
        return [item for item, t, _score in self.entries if t == interval]

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[tuple[str, int, float]]:
        return iter(self.entries)


def group_by_user(ratings: Iterable[Rating]) -> dict[str, UserDocument]:
    """Group a rating stream into per-user documents.

    The relative order of each user's ratings is preserved.
    """
    documents: dict[str, UserDocument] = {}
    for rating in ratings:
        doc = documents.get(rating.user)
        if doc is None:
            doc = UserDocument(user=rating.user)
            documents[rating.user] = doc
        doc.add(rating.item, rating.interval, rating.score)
    return documents


def group_by_interval(ratings: Iterable[Rating]) -> dict[int, list[Rating]]:
    """Group a rating stream by time interval."""
    buckets: dict[int, list[Rating]] = defaultdict(list)
    for rating in ratings:
        buckets[rating.interval].append(rating)
    return dict(buckets)


def dataset_statistics(ratings: Sequence[Rating]) -> Mapping[str, int]:
    """Compute the Table-2 style statistics of a rating collection.

    Returns a mapping with ``users``, ``items``, ``ratings`` and
    ``intervals`` counts.
    """
    users = {r.user for r in ratings}
    items = {r.item for r in ratings}
    intervals = {r.interval for r in ratings}
    return {
        "users": len(users),
        "items": len(items),
        "ratings": len(ratings),
        "intervals": len(intervals),
    }
