"""Train/test splitting for temporal top-k evaluation.

The paper's protocol (Section 5.3.1): for each user ``u`` and interval
``t``, the rated items ``S_t(u)`` are split 80/20 into training and test
sets, with five-fold cross validation. A recommended item counts as a
"hit" when it appears in the held-out ``S_t^test(u)``.

Splitting happens at the level of coalesced cuboid entries, grouped by
``(u, t)``; every fold keeps the original tensor dimensions so train and
test cuboids are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .cuboid import RatingCuboid


@dataclass(frozen=True, slots=True)
class Split:
    """One train/test partition of a rating cuboid."""

    train: RatingCuboid
    test: RatingCuboid

    def query_pairs(self) -> list[tuple[int, int]]:
        """Distinct ``(user, interval)`` pairs with held-out test items.

        These are the temporal queries the evaluation issues.
        """
        pairs = np.unique(
            self.test.users * self.test.num_intervals + self.test.intervals
        )
        t = self.test.num_intervals
        return [(int(p // t), int(p % t)) for p in pairs]


def _fold_assignment(
    cuboid: RatingCuboid, num_folds: int, rng: np.random.Generator
) -> np.ndarray:
    """Assign each cuboid entry a fold id, stratified by ``(u, t)`` group.

    Entries within one ``(u, t)`` group are randomly permuted then dealt
    round-robin across folds, so every group spreads as evenly as its size
    allows. Groups smaller than ``num_folds`` contribute their entries to a
    random subset of folds.
    """
    keys = cuboid.users * cuboid.num_intervals + cuboid.intervals
    order = np.argsort(keys, kind="stable")
    folds = np.empty(cuboid.nnz, dtype=np.int64)
    sorted_keys = keys[order]
    boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
    start = 0
    for end in list(boundaries) + [cuboid.nnz]:
        group = order[start:end]
        permuted = rng.permutation(group)
        offset = int(rng.integers(num_folds))
        folds[permuted] = (np.arange(group.size) + offset) % num_folds
        start = end
    return folds


def holdout_split(
    cuboid: RatingCuboid, test_fraction: float = 0.2, seed: int = 0
) -> Split:
    """Single stratified split with ``test_fraction`` of each ``(u, t)``
    group held out (the paper's 80/20 split)."""
    if not 0 < test_fraction < 1:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    num_folds = max(int(round(1 / test_fraction)), 2)
    rng = np.random.default_rng(seed)
    folds = _fold_assignment(cuboid, num_folds, rng)
    test_mask = folds == 0
    return Split(train=cuboid.select(~test_mask), test=cuboid.select(test_mask))


def cross_validation_splits(
    cuboid: RatingCuboid, num_folds: int = 5, seed: int = 0
) -> Iterator[Split]:
    """Yield ``num_folds`` stratified train/test splits (5-fold CV)."""
    if num_folds < 2:
        raise ValueError(f"num_folds must be >= 2, got {num_folds}")
    rng = np.random.default_rng(seed)
    folds = _fold_assignment(cuboid, num_folds, rng)
    for fold in range(num_folds):
        test_mask = folds == fold
        yield Split(train=cuboid.select(~test_mask), test=cuboid.select(test_mask))


def leave_last_interval_split(cuboid: RatingCuboid) -> Split:
    """Temporal split: the most recent non-empty interval is the test set.

    Not used by the paper's headline protocol but useful for the online/
    incremental extension and for stress-testing temporal generalisation.
    """
    if cuboid.nnz == 0:
        raise ValueError("cannot split an empty cuboid")
    last = int(cuboid.intervals.max())
    test_mask = cuboid.intervals == last
    return Split(train=cuboid.select(~test_mask), test=cuboid.select(test_mask))
