"""Bidirectional label ↔ contiguous-integer index mapping.

Model code works on dense integer ids (``0..n-1``); application code works
on external labels (user names, item titles, tags). :class:`Indexer` is the
bridge. It assigns ids in first-seen order, which keeps runs deterministic
for a fixed input order.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence

import numpy as np


class Indexer:
    """Assigns stable contiguous integer ids to hashable labels."""

    def __init__(self, labels: Iterable[Hashable] = ()) -> None:
        self._label_to_id: dict[Hashable, int] = {}
        self._labels: list[Hashable] = []
        self.update(labels)

    def add(self, label: Hashable) -> int:
        """Register ``label`` (idempotent) and return its id."""
        existing = self._label_to_id.get(label)
        if existing is not None:
            return existing
        new_id = len(self._labels)
        self._label_to_id[label] = new_id
        self._labels.append(label)
        return new_id

    def update(self, labels: Iterable[Hashable]) -> None:
        """Register every label in ``labels``."""
        for label in labels:
            self.add(label)

    def id_of(self, label: Hashable) -> int:
        """Return the id of ``label``; raises ``KeyError`` if unknown."""
        return self._label_to_id[label]

    def label_of(self, index: int) -> Hashable:
        """Return the label with id ``index``; raises ``IndexError``."""
        if index < 0:
            raise IndexError(f"index must be >= 0, got {index}")
        return self._labels[index]

    def get(self, label: Hashable, default: int | None = None) -> int | None:
        """Return the id of ``label`` or ``default`` if unknown."""
        return self._label_to_id.get(label, default)

    def encode(self, labels: Sequence[Hashable]) -> np.ndarray:
        """Vector-encode a sequence of known labels to an int64 array."""
        return np.fromiter(
            (self._label_to_id[label] for label in labels),
            dtype=np.int64,
            count=len(labels),
        )

    def decode(self, indices: Iterable[int]) -> list[Hashable]:
        """Map integer ids back to their labels."""
        return [self._labels[int(i)] for i in indices]

    def __contains__(self, label: Hashable) -> bool:
        return label in self._label_to_id

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._labels)

    def __repr__(self) -> str:
        return f"Indexer(n={len(self)})"
