"""Adapters for real timestamped-rating exports.

The evaluation in this repository runs on synthetic substitutes, but the
library is meant to be pointed at the real thing when you have it. These
loaders turn common on-disk formats into a
:class:`~repro.data.cuboid.RatingCuboid`:

* :func:`load_movielens_dat` — MovieLens ``ratings.dat``
  (``user::item::rating::timestamp``);
* :func:`load_timestamped_csv` — generic CSV with
  ``user,item,rating,timestamp`` columns (any order, by header name);
* :func:`from_events` — already-parsed ``(user, item, score, timestamp)``
  tuples.

All three discretise raw timestamps with a
:class:`~repro.data.intervals.TimeDiscretizer` at a caller-chosen
interval length — the hyper-parameter the paper's Table 3 sweeps.

The streaming pipeline speaks *dense* ids (a fitted model's integer
space) rather than labels, so this module also bridges the two worlds:
:func:`dense_stream_tuples` flattens a cuboid into the
``(user, interval, item, score)`` tuples an event log records, and
:func:`cuboid_from_dense_events` folds such tuples back into a cuboid.
Both sides are duck-typed plain tuples on purpose — the data layer
stays below :mod:`repro.streaming` in the dependency order.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from .cuboid import RatingCuboid
from .events import Rating
from .intervals import TimeDiscretizer


def from_events(
    events: Iterable[tuple[str, str, float, float]],
    interval_days: float = 3.0,
) -> RatingCuboid:
    """Build a cuboid from ``(user, item, score, timestamp)`` tuples.

    Timestamps are seconds (e.g. Unix epoch); intervals start at the
    earliest timestamp observed and are ``interval_days`` long.
    """
    materialised = list(events)
    if not materialised:
        raise ValueError("no events to load")
    timestamps = [e[3] for e in materialised]
    discretizer = TimeDiscretizer.from_days(origin=min(timestamps), days=interval_days)
    ratings = [
        Rating(
            user=str(user),
            interval=discretizer.interval_of(ts),
            item=str(item),
            score=float(score),
        )
        for user, item, score, ts in materialised
    ]
    return RatingCuboid.from_ratings(ratings)


def load_movielens_dat(
    path: str | Path, interval_days: float = 30.0, max_rows: int | None = None
) -> RatingCuboid:
    """Load a MovieLens ``ratings.dat`` file (``u::i::r::ts`` lines).

    ``interval_days`` defaults to the paper's one-month MovieLens
    granularity. ``max_rows`` caps the read for quick experiments.
    """
    path = Path(path)
    events: list[tuple[str, str, float, float]] = []
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            parts = line.split("::")
            if len(parts) != 4:
                raise ValueError(
                    f"{path}:{line_number}: expected user::item::rating::timestamp"
                )
            user, item, rating, timestamp = parts
            events.append((user, item, float(rating), float(timestamp)))
            if max_rows is not None and len(events) >= max_rows:
                break
    return from_events(events, interval_days=interval_days)


def load_timestamped_csv(
    path: str | Path,
    interval_days: float = 3.0,
    user_column: str = "user",
    item_column: str = "item",
    rating_column: str | None = "rating",
    timestamp_column: str = "timestamp",
    max_rows: int | None = None,
) -> RatingCuboid:
    """Load a generic timestamped-rating CSV by header names.

    ``rating_column=None`` treats every row as implicit feedback with
    score 1 (e.g. click or vote logs).
    """
    path = Path(path)
    events: list[tuple[str, str, float, float]] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        required = {user_column, item_column, timestamp_column}
        if rating_column is not None:
            required.add(rating_column)
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            missing = sorted(required - set(reader.fieldnames or ()))
            raise ValueError(f"{path} is missing columns {missing}")
        for row in reader:
            score = float(row[rating_column]) if rating_column is not None else 1.0
            events.append(
                (
                    row[user_column],
                    row[item_column],
                    score,
                    float(row[timestamp_column]),
                )
            )
            if max_rows is not None and len(events) >= max_rows:
                break
    return from_events(events, interval_days=interval_days)


def filter_min_activity(
    cuboid: RatingCuboid,
    min_user_ratings: int = 1,
    min_item_users: int = 1,
) -> RatingCuboid:
    """Drop entries of inactive users and barely-rated items.

    The standard preprocessing real datasets receive (the paper keeps
    MovieLens users with ≥20 ratings). One pass each; apply repeatedly if
    a fixed point is required.
    """
    if min_user_ratings < 1 or min_item_users < 1:
        raise ValueError("minimum activity thresholds must be >= 1")
    keep = (
        cuboid.user_activity()[cuboid.users] >= min_user_ratings
    ) & (cuboid.item_user_counts()[cuboid.items] >= min_item_users)
    return cuboid.select(keep)


def dense_stream_tuples(
    cuboid: RatingCuboid,
) -> list[tuple[int, int, int, float]]:
    """Flatten a cuboid into dense ``(user, interval, item, score)`` tuples.

    The tuples come out in deterministic interval-major order (interval,
    then user, then item) — the order a live feed would deliver them —
    ready to be appended to a streaming event log. Plain tuples, not
    :class:`~repro.streaming.wal.StreamEvent`, so this module does not
    depend on the streaming package.
    """
    order = np.lexsort((cuboid.items, cuboid.users, cuboid.intervals))
    return [
        (
            int(cuboid.users[i]),
            int(cuboid.intervals[i]),
            int(cuboid.items[i]),
            float(cuboid.scores[i]),
        )
        for i in order
    ]


def cuboid_from_dense_events(
    events: Iterable[tuple[int, int, int, float]],
    num_users: int | None = None,
    num_intervals: int | None = None,
    num_items: int | None = None,
) -> RatingCuboid:
    """Fold dense ``(user, interval, item, score)`` tuples into a cuboid.

    The inverse of :func:`dense_stream_tuples` (duplicates coalesce by
    summing, matching the event log's replay semantics); dimensions
    default to ``max id + 1``. Use it to rebuild an offline training
    cuboid from a drained event log.
    """
    materialised = list(events)
    if not materialised:
        raise ValueError("no events to fold")
    return RatingCuboid.from_arrays(
        users=[e[0] for e in materialised],
        intervals=[e[1] for e in materialised],
        items=[e[2] for e in materialised],
        scores=[e[3] for e in materialised],
        num_users=num_users,
        num_intervals=num_intervals,
        num_items=num_items,
    )
