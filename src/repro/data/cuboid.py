"""The rating cuboid (Definition 3): a sparse ``N × T × V`` tensor.

``C[u, t, v]`` stores the score user ``u`` assigned to item ``v`` during
interval ``t``. Real rating data is extremely sparse, so the cuboid is kept
in coordinate (COO) form: four aligned arrays ``users``, ``intervals``,
``items`` and ``scores``. All model code (EM inference, weighting,
baselines) consumes this representation directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .events import Rating
from .indexer import Indexer


@dataclass
class RatingCuboid:
    """Sparse user–time–item rating tensor in coordinate form.

    The four coordinate arrays are aligned: entry ``i`` says that user
    ``users[i]`` rated item ``items[i]`` during interval ``intervals[i]``
    with score ``scores[i]``. Duplicate ``(u, t, v)`` coordinates are
    allowed on construction and merged (scores summed) by
    :meth:`coalesce`, which the factory constructors call for you.

    Attributes
    ----------
    users, intervals, items:
        ``int64`` coordinate arrays.
    scores:
        ``float64`` score array (positive).
    num_users, num_intervals, num_items:
        Dimensions ``N``, ``T``, ``V`` of the (conceptual) dense tensor.
    user_index, item_index:
        Optional label maps back to external ids.
    """

    users: np.ndarray
    intervals: np.ndarray
    items: np.ndarray
    scores: np.ndarray
    num_users: int
    num_intervals: int
    num_items: int
    user_index: Indexer | None = field(default=None, repr=False)
    item_index: Indexer | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.users = np.asarray(self.users, dtype=np.int64)
        self.intervals = np.asarray(self.intervals, dtype=np.int64)
        self.items = np.asarray(self.items, dtype=np.int64)
        self.scores = np.asarray(self.scores, dtype=np.float64)
        lengths = {
            self.users.size,
            self.intervals.size,
            self.items.size,
            self.scores.size,
        }
        if len(lengths) != 1:
            raise ValueError(f"coordinate arrays have mismatched lengths: {lengths}")
        if self.users.size:
            if self.users.min() < 0 or self.users.max() >= self.num_users:
                raise ValueError("user ids out of range")
            if self.intervals.min() < 0 or self.intervals.max() >= self.num_intervals:
                raise ValueError("interval ids out of range")
            if self.items.min() < 0 or self.items.max() >= self.num_items:
                raise ValueError("item ids out of range")
            if self.scores.min() <= 0:
                raise ValueError("scores must be positive")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_ratings(
        cls,
        ratings: Iterable[Rating],
        user_index: Indexer | None = None,
        item_index: Indexer | None = None,
        num_intervals: int | None = None,
    ) -> "RatingCuboid":
        """Build a coalesced cuboid from :class:`~repro.data.events.Rating`
        records, assigning dense ids in first-seen order.

        Pass pre-built indexers to pin the id assignment (e.g. to share a
        vocabulary between a train and a test cuboid).
        """
        user_index = user_index if user_index is not None else Indexer()
        item_index = item_index if item_index is not None else Indexer()
        users: list[int] = []
        intervals: list[int] = []
        items: list[int] = []
        scores: list[float] = []
        for rating in ratings:
            users.append(user_index.add(rating.user))
            intervals.append(rating.interval)
            items.append(item_index.add(rating.item))
            scores.append(rating.score)
        max_interval = (max(intervals) + 1) if intervals else 0
        resolved_t = num_intervals if num_intervals is not None else max_interval
        if resolved_t < max_interval:
            raise ValueError(
                f"num_intervals={resolved_t} too small for max interval "
                f"{max_interval - 1}"
            )
        cuboid = cls(
            users=np.array(users, dtype=np.int64),
            intervals=np.array(intervals, dtype=np.int64),
            items=np.array(items, dtype=np.int64),
            scores=np.array(scores, dtype=np.float64),
            num_users=len(user_index),
            num_intervals=resolved_t,
            num_items=len(item_index),
            user_index=user_index,
            item_index=item_index,
        )
        return cuboid.coalesce()

    @classmethod
    def from_arrays(
        cls,
        users: Sequence[int],
        intervals: Sequence[int],
        items: Sequence[int],
        scores: Sequence[float] | None = None,
        num_users: int | None = None,
        num_intervals: int | None = None,
        num_items: int | None = None,
    ) -> "RatingCuboid":
        """Build a coalesced cuboid from raw integer coordinate arrays.

        Dimensions default to ``max + 1`` of each coordinate array.
        """
        users_arr = np.asarray(users, dtype=np.int64)
        intervals_arr = np.asarray(intervals, dtype=np.int64)
        items_arr = np.asarray(items, dtype=np.int64)
        if scores is None:
            scores_arr = np.ones(users_arr.size, dtype=np.float64)
        else:
            scores_arr = np.asarray(scores, dtype=np.float64)

        def _dim(explicit: int | None, coords: np.ndarray) -> int:
            inferred = int(coords.max()) + 1 if coords.size else 0
            return inferred if explicit is None else explicit

        cuboid = cls(
            users=users_arr,
            intervals=intervals_arr,
            items=items_arr,
            scores=scores_arr,
            num_users=_dim(num_users, users_arr),
            num_intervals=_dim(num_intervals, intervals_arr),
            num_items=_dim(num_items, items_arr),
        )
        return cuboid.coalesce()

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored (coalesced) entries."""
        return int(self.users.size)

    @property
    def shape(self) -> tuple[int, int, int]:
        """``(N, T, V)`` dense shape."""
        return (self.num_users, self.num_intervals, self.num_items)

    @property
    def total_score(self) -> float:
        """Sum of all stored scores."""
        return float(self.scores.sum())

    def density(self) -> float:
        """Fraction of the dense tensor that is non-zero."""
        cells = self.num_users * self.num_intervals * self.num_items
        return self.nnz / cells if cells else 0.0

    def __len__(self) -> int:
        return self.nnz

    def __repr__(self) -> str:
        return (
            f"RatingCuboid(N={self.num_users}, T={self.num_intervals}, "
            f"V={self.num_items}, nnz={self.nnz})"
        )

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------

    def coalesce(self) -> "RatingCuboid":
        """Merge duplicate ``(u, t, v)`` coordinates by summing scores.

        Also sorts entries lexicographically by ``(u, t, v)``, which later
        code relies on for reproducible iteration order.
        """
        if self.nnz == 0:
            return self
        keys = (
            self.users * (self.num_intervals * self.num_items)
            + self.intervals * self.num_items
            + self.items
        )
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        merged_scores = np.bincount(
            inverse, weights=self.scores[order], minlength=unique_keys.size
        )
        tv = self.num_intervals * self.num_items
        return RatingCuboid(
            users=unique_keys // tv,
            intervals=(unique_keys % tv) // self.num_items,
            items=unique_keys % self.num_items,
            scores=merged_scores,
            num_users=self.num_users,
            num_intervals=self.num_intervals,
            num_items=self.num_items,
            user_index=self.user_index,
            item_index=self.item_index,
        )

    def with_scores(self, scores: np.ndarray) -> "RatingCuboid":
        """Return a copy of this cuboid with replaced scores.

        Used by the item-weighting scheme (Equation 20 of the paper), which
        rescales every entry without touching the coordinates.
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.shape != self.scores.shape:
            raise ValueError(
                f"scores shape {scores.shape} != {self.scores.shape}"
            )
        return RatingCuboid(
            users=self.users,
            intervals=self.intervals,
            items=self.items,
            scores=scores,
            num_users=self.num_users,
            num_intervals=self.num_intervals,
            num_items=self.num_items,
            user_index=self.user_index,
            item_index=self.item_index,
        )

    def select(self, mask: np.ndarray) -> "RatingCuboid":
        """Return the sub-cuboid of entries where ``mask`` is True.

        Dimensions and id assignment are preserved (no re-indexing), so the
        result is directly comparable with the original — this is what the
        train/test splitter uses.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.users.shape:
            raise ValueError("mask length must match nnz")
        return RatingCuboid(
            users=self.users[mask],
            intervals=self.intervals[mask],
            items=self.items[mask],
            scores=self.scores[mask],
            num_users=self.num_users,
            num_intervals=self.num_intervals,
            num_items=self.num_items,
            user_index=self.user_index,
            item_index=self.item_index,
        )

    def coarsen_intervals(self, factor: int) -> "RatingCuboid":
        """Merge every ``factor`` consecutive intervals into one.

        Implements the Table-3 interval-length sweep: a cuboid built at
        1-day granularity coarsened with ``factor=3`` behaves like a 3-day
        granularity cuboid.
        """
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        if factor == 1:
            return self
        new_t = -(-self.num_intervals // factor)  # ceil division
        merged = RatingCuboid(
            users=self.users,
            intervals=self.intervals // factor,
            items=self.items,
            scores=self.scores,
            num_users=self.num_users,
            num_intervals=new_t,
            num_items=self.num_items,
            user_index=self.user_index,
            item_index=self.item_index,
        )
        return merged.coalesce()

    def to_dense(self) -> np.ndarray:
        """Materialise the dense ``(N, T, V)`` tensor (small data only)."""
        cells = self.num_users * self.num_intervals * self.num_items
        if cells > 50_000_000:
            raise MemoryError(
                f"refusing to densify a cuboid with {cells} cells"
            )
        dense = np.zeros(self.shape, dtype=np.float64)
        np.add.at(dense, (self.users, self.intervals, self.items), self.scores)
        return dense

    # ------------------------------------------------------------------
    # aggregate statistics (used by the weighting scheme and analyses)
    # ------------------------------------------------------------------

    def item_user_counts(self) -> np.ndarray:
        """``N(v)``: number of distinct users who rated each item."""
        if self.nnz == 0:
            return np.zeros(self.num_items, dtype=np.int64)
        pairs = np.unique(self.items * self.num_users + self.users)
        counts = np.bincount(pairs // self.num_users, minlength=self.num_items)
        return counts.astype(np.int64)

    def item_interval_user_counts(self) -> np.ndarray:
        """``N_t(v)``: distinct users rating item ``v`` during ``t``.

        Returns a dense ``(T, V)`` integer matrix.
        """
        counts = np.zeros((self.num_intervals, self.num_items), dtype=np.int64)
        if self.nnz == 0:
            return counts
        # Entries are already coalesced, so each (u, t, v) appears once.
        np.add.at(counts, (self.intervals, self.items), 1)
        return counts

    def interval_user_counts(self) -> np.ndarray:
        """``N_t``: number of distinct active users per interval."""
        counts = np.zeros(self.num_intervals, dtype=np.int64)
        if self.nnz == 0:
            return counts
        pairs = np.unique(self.intervals * self.num_users + self.users)
        np.add.at(counts, pairs // self.num_users, 1)
        return counts

    def user_activity(self) -> np.ndarray:
        """``M_u``: number of stored entries per user."""
        return np.bincount(self.users, minlength=self.num_users).astype(np.int64)

    def item_popularity(self) -> np.ndarray:
        """Total score mass per item."""
        return np.bincount(
            self.items, weights=self.scores, minlength=self.num_items
        )

    def interval_item_matrix(self) -> np.ndarray:
        """Dense ``(T, V)`` matrix of score mass per interval and item."""
        matrix = np.zeros((self.num_intervals, self.num_items), dtype=np.float64)
        if self.nnz:
            np.add.at(matrix, (self.intervals, self.items), self.scores)
        return matrix

    def user_item_pairs(self) -> set[tuple[int, int]]:
        """The set of observed ``(user, item)`` pairs (any interval)."""
        return set(zip(self.users.tolist(), self.items.tolist()))

    def entries_of_user(self, user: int) -> np.ndarray:
        """Indices of the stored entries belonging to ``user``."""
        return np.flatnonzero(self.users == user)

    def entries_of_interval(self, interval: int) -> np.ndarray:
        """Indices of the stored entries belonging to ``interval``."""
        return np.flatnonzero(self.intervals == interval)

    def items_of_user_interval(self, user: int, interval: int) -> np.ndarray:
        """Item ids rated by ``user`` during ``interval``."""
        mask = (self.users == user) & (self.intervals == interval)
        return self.items[mask]
