"""Loading and saving timestamped rating data.

Two interchangeable on-disk formats are supported:

* **CSV** — header ``user,interval,item,score``; one rating per row.
* **JSONL** — one JSON object per line with the same four keys.

Both round-trip through :class:`~repro.data.events.Rating` records, so a
cuboid written and re-read coalesces to the same tensor.

Readers validate each row — intervals must be non-negative integers,
scores finite and positive — and report problems with the offending
line number via :class:`DataValidationError`. Pass ``strict=False`` to
skip malformed rows instead, counting them and summarising the damage in
a single :class:`UserWarning` (the right mode for scraped production
logs where a handful of bad rows should not abort a training run).
"""

from __future__ import annotations

import csv
import json
import math
import warnings
from pathlib import Path
from typing import Iterable, Iterator

from .cuboid import RatingCuboid
from .events import Rating


class DataValidationError(ValueError):
    """A ratings file contains a row that violates the data contract.

    The message names the file, the 1-based line number and the field
    that failed, so bad exports can be fixed at the source.
    """


def _validated_rating(
    path: Path, line_number: int, user: str, interval: str, item: str, score: str
) -> Rating:
    """Build one :class:`Rating` from raw fields, validating everything.

    Raises :class:`DataValidationError` naming ``path:line_number`` on
    any malformed field: non-integer or negative interval, non-numeric,
    NaN/infinite or non-positive score, or empty user/item labels.
    """
    where = f"{path}:{line_number}"
    if user is None or item is None or interval is None or score is None:
        raise DataValidationError(f"{where}: row has missing fields")
    if not str(user).strip():
        raise DataValidationError(f"{where}: empty user label")
    if not str(item).strip():
        raise DataValidationError(f"{where}: empty item label")
    try:
        interval_id = int(interval)
    except (TypeError, ValueError) as exc:
        raise DataValidationError(
            f"{where}: interval {interval!r} is not an integer"
        ) from exc
    if interval_id < 0:
        raise DataValidationError(f"{where}: negative interval {interval_id}")
    try:
        value = float(score)
    except (TypeError, ValueError) as exc:
        raise DataValidationError(f"{where}: score {score!r} is not a number") from exc
    if math.isnan(value) or math.isinf(value):
        raise DataValidationError(f"{where}: score is {value}")
    if value <= 0:
        raise DataValidationError(f"{where}: score must be positive, got {value}")
    return Rating(user=str(user), interval=interval_id, item=str(item), score=value)


def _warn_skipped(path: Path, skipped: int, first_error: str | None) -> None:
    """Summarise rows dropped by a non-strict read in one warning."""
    if skipped:
        warnings.warn(
            f"skipped {skipped} malformed row(s) in {path} "
            f"(first: {first_error})",
            UserWarning,
            stacklevel=3,
        )


def write_csv(ratings: Iterable[Rating], path: str | Path) -> int:
    """Write ratings to ``path`` as CSV; returns the number of rows."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["user", "interval", "item", "score"])
        for rating in ratings:
            writer.writerow(
                [rating.user, rating.interval, rating.item, rating.score]
            )
            count += 1
    return count


def read_csv(path: str | Path, strict: bool = True) -> Iterator[Rating]:
    """Stream ratings from a CSV file produced by :func:`write_csv`.

    With ``strict=True`` (default) a malformed row raises
    :class:`DataValidationError` with its line number. With
    ``strict=False`` malformed rows are skipped; once the file is
    exhausted a single :class:`UserWarning` reports how many were
    dropped and the first failure. A missing header is always fatal.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"user", "interval", "item", "score"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise DataValidationError(
                f"{path} is missing required columns {sorted(required)}"
            )
        skipped, first_error = 0, None
        # Header occupies line 1; DictReader rows start at line 2.
        for line_number, row in enumerate(reader, start=2):
            try:
                yield _validated_rating(
                    path,
                    line_number,
                    row["user"],
                    row["interval"],
                    row["item"],
                    row["score"],
                )
            except DataValidationError as exc:
                if strict:
                    raise
                skipped += 1
                first_error = first_error or str(exc)
        _warn_skipped(path, skipped, first_error)


def write_jsonl(ratings: Iterable[Rating], path: str | Path) -> int:
    """Write ratings to ``path`` as JSON lines; returns the row count."""
    path = Path(path)
    count = 0
    with path.open("w") as handle:
        for rating in ratings:
            handle.write(
                json.dumps(
                    {
                        "user": rating.user,
                        "interval": rating.interval,
                        "item": rating.item,
                        "score": rating.score,
                    }
                )
            )
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str | Path, strict: bool = True) -> Iterator[Rating]:
    """Stream ratings from a JSONL file produced by :func:`write_jsonl`.

    Validation and the ``strict`` flag behave as in :func:`read_csv`;
    an unparseable JSON line counts as a malformed row.
    """
    path = Path(path)
    with path.open() as handle:
        skipped, first_error = 0, None
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise DataValidationError(
                        f"{path}:{line_number}: invalid JSON"
                    ) from exc
                yield _validated_rating(
                    path,
                    line_number,
                    record.get("user"),
                    record.get("interval"),
                    record.get("item"),
                    record.get("score", 1.0),
                )
            except DataValidationError as exc:
                if strict:
                    raise
                skipped += 1
                first_error = first_error or str(exc)
        _warn_skipped(path, skipped, first_error)


def cuboid_to_ratings(cuboid: RatingCuboid) -> Iterator[Rating]:
    """Convert a cuboid back into labelled rating records.

    Requires the cuboid to carry its user/item indexers; integer ids are
    used as labels otherwise.
    """
    for i in range(cuboid.nnz):
        user_id = int(cuboid.users[i])
        item_id = int(cuboid.items[i])
        user = (
            str(cuboid.user_index.label_of(user_id))
            if cuboid.user_index is not None
            else str(user_id)
        )
        item = (
            str(cuboid.item_index.label_of(item_id))
            if cuboid.item_index is not None
            else str(item_id)
        )
        yield Rating(
            user=user,
            interval=int(cuboid.intervals[i]),
            item=item,
            score=float(cuboid.scores[i]),
        )


def save_cuboid_csv(cuboid: RatingCuboid, path: str | Path) -> int:
    """Persist a cuboid as CSV; returns the number of rows written."""
    return write_csv(cuboid_to_ratings(cuboid), path)


def load_cuboid_csv(path: str | Path, strict: bool = True) -> RatingCuboid:
    """Load a cuboid from CSV written by :func:`save_cuboid_csv`.

    ``strict=False`` skips malformed rows (with a summary warning)
    instead of raising :class:`DataValidationError` on the first one.
    """
    return RatingCuboid.from_ratings(read_csv(path, strict=strict))
