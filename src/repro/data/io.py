"""Loading and saving timestamped rating data.

Two interchangeable on-disk formats are supported:

* **CSV** — header ``user,interval,item,score``; one rating per row.
* **JSONL** — one JSON object per line with the same four keys.

Both round-trip through :class:`~repro.data.events.Rating` records, so a
cuboid written and re-read coalesces to the same tensor.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Iterator

from .cuboid import RatingCuboid
from .events import Rating


def write_csv(ratings: Iterable[Rating], path: str | Path) -> int:
    """Write ratings to ``path`` as CSV; returns the number of rows."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["user", "interval", "item", "score"])
        for rating in ratings:
            writer.writerow(
                [rating.user, rating.interval, rating.item, rating.score]
            )
            count += 1
    return count


def read_csv(path: str | Path) -> Iterator[Rating]:
    """Stream ratings from a CSV file produced by :func:`write_csv`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"user", "interval", "item", "score"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise ValueError(
                f"{path} is missing required columns {sorted(required)}"
            )
        for row in reader:
            yield Rating(
                user=row["user"],
                interval=int(row["interval"]),
                item=row["item"],
                score=float(row["score"]),
            )


def write_jsonl(ratings: Iterable[Rating], path: str | Path) -> int:
    """Write ratings to ``path`` as JSON lines; returns the row count."""
    path = Path(path)
    count = 0
    with path.open("w") as handle:
        for rating in ratings:
            handle.write(
                json.dumps(
                    {
                        "user": rating.user,
                        "interval": rating.interval,
                        "item": rating.item,
                        "score": rating.score,
                    }
                )
            )
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> Iterator[Rating]:
    """Stream ratings from a JSONL file produced by :func:`write_jsonl`."""
    path = Path(path)
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: invalid JSON") from exc
            yield Rating(
                user=record["user"],
                interval=int(record["interval"]),
                item=record["item"],
                score=float(record.get("score", 1.0)),
            )


def cuboid_to_ratings(cuboid: RatingCuboid) -> Iterator[Rating]:
    """Convert a cuboid back into labelled rating records.

    Requires the cuboid to carry its user/item indexers; integer ids are
    used as labels otherwise.
    """
    for i in range(cuboid.nnz):
        user_id = int(cuboid.users[i])
        item_id = int(cuboid.items[i])
        user = (
            str(cuboid.user_index.label_of(user_id))
            if cuboid.user_index is not None
            else str(user_id)
        )
        item = (
            str(cuboid.item_index.label_of(item_id))
            if cuboid.item_index is not None
            else str(item_id)
        )
        yield Rating(
            user=user,
            interval=int(cuboid.intervals[i]),
            item=item,
            score=float(cuboid.scores[i]),
        )


def save_cuboid_csv(cuboid: RatingCuboid, path: str | Path) -> int:
    """Persist a cuboid as CSV; returns the number of rows written."""
    return write_csv(cuboid_to_ratings(cuboid), path)


def load_cuboid_csv(path: str | Path) -> RatingCuboid:
    """Load a cuboid from CSV written by :func:`save_cuboid_csv`."""
    return RatingCuboid.from_ratings(read_csv(path))
