"""Time discretisation: timestamps → contiguous interval ids.

TCAM operates on discrete time intervals whose length is a tunable
hyper-parameter (the paper sweeps 1–10 days in Table 3, and uses one month
for the movie datasets). :class:`TimeDiscretizer` maps raw timestamps to
``0..T-1`` interval ids for a chosen interval length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True, slots=True)
class TimeDiscretizer:
    """Maps timestamps (seconds) into fixed-length intervals.

    Parameters
    ----------
    origin:
        Timestamp of the start of interval 0. Timestamps earlier than the
        origin are rejected.
    interval_seconds:
        Length of one interval in seconds. Use :meth:`from_days` for the
        day-based granularity the paper sweeps.
    """

    origin: float
    interval_seconds: float

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be positive, got {self.interval_seconds}"
            )

    @classmethod
    def from_days(cls, origin: float, days: float) -> "TimeDiscretizer":
        """Build a discretizer with intervals of ``days`` days."""
        return cls(origin=origin, interval_seconds=days * SECONDS_PER_DAY)

    @classmethod
    def covering(
        cls, timestamps: Sequence[float], num_intervals: int
    ) -> "TimeDiscretizer":
        """Build a discretizer that splits the span of ``timestamps`` into
        exactly ``num_intervals`` equal-length intervals."""
        if num_intervals <= 0:
            raise ValueError(f"num_intervals must be positive, got {num_intervals}")
        if len(timestamps) == 0:
            raise ValueError("cannot cover an empty timestamp collection")
        lo = float(min(timestamps))
        hi = float(max(timestamps))
        span = max(hi - lo, 1e-9)
        # Stretch slightly so the max timestamp lands inside the last interval.
        return cls(origin=lo, interval_seconds=span * (1 + 1e-9) / num_intervals)

    def interval_of(self, timestamp: float) -> int:
        """Return the interval id containing ``timestamp``."""
        if timestamp < self.origin:
            raise ValueError(
                f"timestamp {timestamp} precedes the origin {self.origin}"
            )
        return int((timestamp - self.origin) // self.interval_seconds)

    def intervals_of(self, timestamps: Iterable[float]) -> np.ndarray:
        """Vectorised :meth:`interval_of`."""
        ts = np.asarray(list(timestamps), dtype=np.float64)
        if ts.size and ts.min() < self.origin:
            raise ValueError("some timestamps precede the origin")
        return ((ts - self.origin) // self.interval_seconds).astype(np.int64)

    def start_of(self, interval: int) -> float:
        """Return the timestamp at which ``interval`` starts."""
        if interval < 0:
            raise ValueError(f"interval must be >= 0, got {interval}")
        return self.origin + interval * self.interval_seconds

    def num_intervals(self, timestamps: Sequence[float]) -> int:
        """Number of intervals needed to cover ``timestamps``."""
        if len(timestamps) == 0:
            return 0
        return self.interval_of(max(timestamps)) + 1


def rediscretize(
    intervals: np.ndarray, old_length: float, new_length: float
) -> np.ndarray:
    """Re-bucket interval ids from one granularity to another.

    Used by the Table-3 interval-length sweep: interval ids assigned at a
    fine granularity (``old_length`` seconds) are merged into coarser
    buckets of ``new_length`` seconds without revisiting raw timestamps.
    """
    if old_length <= 0 or new_length <= 0:
        raise ValueError("interval lengths must be positive")
    ratio = new_length / old_length
    if ratio < 1:
        raise ValueError("cannot re-discretize to a finer granularity")
    return (np.asarray(intervals, dtype=np.int64) // int(round(ratio))).astype(
        np.int64
    )
