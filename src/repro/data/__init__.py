"""Data substrate: rating events, the sparse rating cuboid, synthetic
dataset generation, time discretisation, splits, and I/O."""

from .adapters import (
    cuboid_from_dense_events,
    dense_stream_tuples,
    filter_min_activity,
    from_events,
    load_movielens_dat,
    load_timestamped_csv,
)
from .cuboid import RatingCuboid
from .events import Rating, UserDocument, dataset_statistics, group_by_interval, group_by_user
from .indexer import Indexer
from .intervals import SECONDS_PER_DAY, TimeDiscretizer, rediscretize
from .io import (
    DataValidationError,
    load_cuboid_csv,
    read_csv,
    read_jsonl,
    save_cuboid_csv,
    write_csv,
    write_jsonl,
)
from .profiles import (
    PROFILES,
    delicious_profile,
    digg_profile,
    douban_profile,
    movielens_profile,
    profile,
)
from .splits import Split, cross_validation_splits, holdout_split, leave_last_interval_split
from .synthetic import EventSpec, GroundTruth, SyntheticConfig, auto_events, generate

__all__ = [
    "cuboid_from_dense_events",
    "dense_stream_tuples",
    "filter_min_activity",
    "from_events",
    "load_movielens_dat",
    "load_timestamped_csv",
    "RatingCuboid",
    "Rating",
    "UserDocument",
    "dataset_statistics",
    "group_by_interval",
    "group_by_user",
    "Indexer",
    "SECONDS_PER_DAY",
    "TimeDiscretizer",
    "rediscretize",
    "DataValidationError",
    "load_cuboid_csv",
    "read_csv",
    "read_jsonl",
    "save_cuboid_csv",
    "write_csv",
    "write_jsonl",
    "PROFILES",
    "delicious_profile",
    "digg_profile",
    "douban_profile",
    "movielens_profile",
    "profile",
    "Split",
    "cross_validation_splits",
    "holdout_split",
    "leave_last_interval_split",
    "EventSpec",
    "GroundTruth",
    "SyntheticConfig",
    "auto_events",
    "generate",
]
