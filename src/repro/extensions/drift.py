"""Time-evolving user interests (paper future work, Section 6, item 2).

"Second, it would be an interesting future direction to consider
time-evolving user interests which generally change over time."

TCAM assumes ``θ_u`` is stable. This extension relaxes that: time is
grouped into *epochs* of ``epoch_length`` intervals and each user gets a
per-epoch interest distribution ``θ_{u,e}``, coupled across consecutive
epochs by a smoothing kernel (a discrete random-walk prior), so sparse
epochs borrow strength from their neighbours instead of going uniform.

A companion generator, :func:`generate_drifting`, produces data whose
users *actually* drift: their true interests random-walk on the topic
simplex between epochs — giving the recovery tests ground truth.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..core.em import EPS, EMTrace, normalize_rows, random_stochastic, scatter_sum, scatter_sum_1d
from ..data.cuboid import RatingCuboid
from ..data.synthetic import GroundTruth, SyntheticConfig, generate


def drift_interests(
    theta: np.ndarray,
    num_epochs: int,
    drift_rate: float,
    rng: np.random.Generator,
    concentration: float = 0.3,
) -> np.ndarray:
    """Random-walk a population's interests across epochs.

    Each epoch, every user's interest is a mixture of the previous
    epoch's interest and a fresh Dirichlet draw:
    ``θ_{u,e} = (1 − drift_rate)·θ_{u,e−1} + drift_rate·fresh``.
    Returns a ``(num_epochs, N, K)`` array with ``θ_{·,0} = theta``.
    """
    if not 0 <= drift_rate <= 1:
        raise ValueError(f"drift_rate must be in [0, 1], got {drift_rate}")
    if num_epochs <= 0:
        raise ValueError(f"num_epochs must be positive, got {num_epochs}")
    n, k = theta.shape
    out = np.empty((num_epochs, n, k))
    out[0] = theta
    for e in range(1, num_epochs):
        fresh = rng.dirichlet(np.full(k, concentration), size=n)
        mixed = (1 - drift_rate) * out[e - 1] + drift_rate * fresh
        out[e] = mixed / mixed.sum(axis=1, keepdims=True)
    return out


def generate_drifting(
    config: SyntheticConfig, num_epochs: int, drift_rate: float
) -> tuple[RatingCuboid, list[GroundTruth], np.ndarray]:
    """Generate a dataset whose users' interests drift across epochs.

    One epoch = one full run of the base generator with the drifted
    interest matrix; interval ids are shifted so epoch ``e`` occupies
    intervals ``[e·T₀, (e+1)·T₀)``. Returns the combined cuboid, the
    per-epoch ground truths, and the ``(E, N, K)`` true interest
    trajectory.
    """
    rng = np.random.default_rng(config.seed + 104729)
    base_cuboid, base_truth = generate(config)
    trajectory = drift_interests(
        base_truth.theta, num_epochs, drift_rate, rng, config.interest_sparsity
    )

    cuboids: list[RatingCuboid] = []
    truths: list[GroundTruth] = []
    t0 = config.num_intervals
    for e in range(num_epochs):
        epoch_config = replace(config, seed=config.seed + e)
        cuboid, truth = _generate_with_theta(epoch_config, trajectory[e])
        shifted = RatingCuboid(
            users=cuboid.users,
            intervals=cuboid.intervals + e * t0,
            items=cuboid.items,
            scores=cuboid.scores,
            num_users=cuboid.num_users,
            num_intervals=t0 * num_epochs,
            num_items=cuboid.num_items,
            user_index=cuboid.user_index,
            item_index=cuboid.item_index,
        )
        cuboids.append(shifted)
        truths.append(truth)

    combined = RatingCuboid(
        users=np.concatenate([c.users for c in cuboids]),
        intervals=np.concatenate([c.intervals for c in cuboids]),
        items=np.concatenate([c.items for c in cuboids]),
        scores=np.concatenate([c.scores for c in cuboids]),
        num_users=config.num_users,
        num_intervals=t0 * num_epochs,
        num_items=config.num_items,
        user_index=cuboids[0].user_index,
        item_index=cuboids[0].item_index,
    ).coalesce()
    return combined, truths, trajectory


def _generate_with_theta(
    config: SyntheticConfig, theta: np.ndarray
) -> tuple[RatingCuboid, GroundTruth]:
    """Run the base generator, then substitute the interest matrix.

    The base generator draws ``θ`` itself; to inject a specific interest
    matrix we exploit determinism: regenerating with the same seed and
    remapping only the interest-sourced items under the injected θ.
    """
    import repro.data.synthetic as synth

    cuboid, truth = generate(config)
    rng = np.random.default_rng(config.seed + 7919)
    # Draw replacement items for interest entries under the injected θ.
    # We regenerate at the raw-event level: every coalesced entry keeps
    # its (u, t) but interest-sourced entries get re-drawn items.
    users, intervals = cuboid.users, cuboid.intervals
    items = cuboid.items.copy()
    # Mark a θ-consistent fraction of entries as interest-driven using
    # the true per-user λ.
    interest_mask = rng.random(cuboid.nnz) < truth.lambda_u[users] * (
        1 - config.noise_fraction
    )
    if interest_mask.any():
        z = synth.sample_rows(theta, users[interest_mask], rng)
        items[interest_mask] = synth.sample_rows(truth.phi, z, rng)
    new_cuboid = RatingCuboid(
        users=users,
        intervals=intervals,
        items=items,
        scores=np.ones(cuboid.nnz),
        num_users=cuboid.num_users,
        num_intervals=cuboid.num_intervals,
        num_items=cuboid.num_items,
        user_index=cuboid.user_index,
        item_index=cuboid.item_index,
    ).coalesce()
    new_truth = replace(truth, theta=theta)
    return new_cuboid, new_truth


class DriftTTCAM:
    """TTCAM with per-epoch user interests and a random-walk coupling.

    Parameters
    ----------
    epoch_length:
        Number of intervals per interest epoch.
    epoch_coupling:
        Strength of the smoothing between consecutive epochs' interest
        counts (0 = independent epochs; larger = stiffer interests).
    num_user_topics, num_time_topics, max_iter, tol, smoothing, seed:
        As in :class:`~repro.core.ttcam.TTCAM`.
    """

    def __init__(
        self,
        epoch_length: int,
        num_user_topics: int = 60,
        num_time_topics: int = 40,
        epoch_coupling: float = 0.3,
        max_iter: int = 50,
        tol: float = 1e-5,
        smoothing: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if epoch_length <= 0:
            raise ValueError(f"epoch_length must be positive, got {epoch_length}")
        if epoch_coupling < 0:
            raise ValueError(f"epoch_coupling must be >= 0, got {epoch_coupling}")
        self.epoch_length = epoch_length
        self.num_user_topics = num_user_topics
        self.num_time_topics = num_time_topics
        self.epoch_coupling = epoch_coupling
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        self.seed = seed
        self.theta_: np.ndarray | None = None  # (E, N, K1)
        self.phi_: np.ndarray | None = None
        self.theta_time_: np.ndarray | None = None
        self.phi_time_: np.ndarray | None = None
        self.lambda_: np.ndarray | None = None
        self.num_epochs_: int = 0
        self.trace_: EMTrace | None = None

    @property
    def name(self) -> str:
        """Display name used in evaluation tables."""
        return "Drift-TTCAM"

    def epoch_of(self, interval: int | np.ndarray):
        """Map interval id(s) to epoch id(s)."""
        return np.asarray(interval) // self.epoch_length

    def fit(self, cuboid: RatingCuboid) -> "DriftTTCAM":
        """Fit with per-epoch interests smoothed across epochs."""
        if cuboid.nnz == 0:
            raise ValueError("cannot fit on an empty cuboid")
        rng = np.random.default_rng(self.seed)
        n, t_dim, v_dim = cuboid.shape
        k1, k2 = self.num_user_topics, self.num_time_topics
        num_epochs = -(-t_dim // self.epoch_length)
        self.num_epochs_ = num_epochs
        u, t, v, c = cuboid.users, cuboid.intervals, cuboid.items, cuboid.scores
        epoch = (t // self.epoch_length).astype(np.int64)
        user_epoch = epoch * n + u  # flat (epoch, user) index

        theta = np.stack([random_stochastic(rng, n, k1) for _ in range(num_epochs)])
        phi = random_stochastic(rng, k1, v_dim)
        theta_time = random_stochastic(rng, t_dim, k2)
        phi_time = random_stochastic(rng, k2, v_dim)
        lam = np.full(n, 0.5)

        trace = EMTrace()
        user_mass = scatter_sum_1d(u, c, n)
        safe_user_mass = np.where(user_mass <= 0, 1.0, user_mass)

        for _ in range(self.max_iter):
            theta_flat = theta.reshape(num_epochs * n, k1)
            joint_z = theta_flat[user_epoch] * phi[:, v].T
            p_interest = joint_z.sum(axis=1)
            joint_x = theta_time[t] * phi_time[:, v].T
            p_context = joint_x.sum(axis=1)
            lam_r = lam[u]
            denom = lam_r * p_interest + (1 - lam_r) * p_context + EPS
            ps1 = lam_r * p_interest / denom
            resp_z = joint_z * (ps1 / (p_interest + EPS))[:, None]
            resp_x = joint_x * ((1 - ps1) / (p_context + EPS))[:, None]

            log_likelihood = float(np.dot(c, np.log(denom)))
            if trace.record(log_likelihood, self.tol):
                break

            c_z = c[:, None] * resp_z
            c_x = c[:, None] * resp_x
            counts = scatter_sum(user_epoch, c_z, num_epochs * n).reshape(
                num_epochs, n, k1
            )
            if self.epoch_coupling > 0 and num_epochs > 1:
                # Random-walk coupling: blend in neighbouring epochs'
                # counts before normalising.
                coupled = counts.copy()
                coupled[1:] += self.epoch_coupling * counts[:-1]
                coupled[:-1] += self.epoch_coupling * counts[1:]
                counts = coupled
            theta = np.stack(
                [normalize_rows(counts[e], self.smoothing) for e in range(num_epochs)]
            )
            phi = normalize_rows(scatter_sum(v, c_z, v_dim).T, self.smoothing)
            theta_time = normalize_rows(scatter_sum(t, c_x, t_dim), self.smoothing)
            phi_time = normalize_rows(scatter_sum(v, c_x, v_dim).T, self.smoothing)
            lam = np.clip(scatter_sum_1d(u, c * ps1, n) / safe_user_mass, 0.0, 1.0)

        self.theta_ = theta
        self.phi_ = phi
        self.theta_time_ = theta_time
        self.phi_time_ = phi_time
        self.lambda_ = lam
        self.trace_ = trace
        return self

    def _require_fitted(self) -> None:
        if self.phi_ is None:
            raise RuntimeError("model is not fitted; call fit() first")

    def score_items(self, user: int, interval: int) -> np.ndarray:
        """Mixture likelihood using the queried interval's epoch interest."""
        self._require_fitted()
        e = min(int(self.epoch_of(interval)), self.num_epochs_ - 1)
        lam = self.lambda_[user]
        interest = self.theta_[e, user] @ self.phi_
        context = self.theta_time_[interval] @ self.phi_time_
        return lam * interest + (1 - lam) * context

    def query_space(self, user: int, interval: int) -> tuple[np.ndarray, np.ndarray]:
        """Expanded query over the stacked topic space."""
        self._require_fitted()
        e = min(int(self.epoch_of(interval)), self.num_epochs_ - 1)
        lam = self.lambda_[user]
        weights = np.concatenate(
            [lam * self.theta_[e, user], (1 - lam) * self.theta_time_[interval]]
        )
        return weights, np.vstack([self.phi_, self.phi_time_])

    def matrix_cache_key(self, interval: int) -> str:
        """The stacked topic–item matrix is query-independent."""
        return "static"

    def interest_trajectory(self, user: int) -> np.ndarray:
        """``(E, K1)`` fitted interest path of one user — the object the
        drift analysis inspects."""
        self._require_fitted()
        return self.theta_[:, user, :].copy()
