"""Social-influence extension (paper future work, Section 6, item 1).

"First, we would like to explore enhancements to our models by
exploiting the effect of user social network on user rating behaviors,
e.g., to study how a user's friends affect her/his rating behaviors."

Three pieces, mirroring the social mixtures the paper cites (Xu et al.,
SIGIR'12; Ye et al., SIGIR'12) but with TCAM's distinct-topic-set
design:

* :func:`build_homophilous_graph` — a social-network substrate: a
  small-world graph rewired so connected users have similar interests
  (homophily), built on :mod:`networkx`.
* :func:`add_social_ratings` — augments a synthetic dataset with
  imitation behaviors: a user re-rates items drawn from friends'
  interest distributions.
* :class:`SocialTTCAM` — a three-way mixture
  ``P(v|u,t) = λ_int·P(v|θ_u) + λ_soc·P(v|θ̄_{N(u)}) + λ_ctx·P(v|θ′_t)``
  where ``θ̄_{N(u)}`` is the (fixed-per-iteration) average interest of
  ``u``'s friends over the same user-oriented topics. Per-user influence
  weights are learned by EM like TCAM's λ.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..core.em import EPS, EMTrace, normalize_rows, random_stochastic, scatter_sum, scatter_sum_1d
from ..data.cuboid import RatingCuboid
from ..data.synthetic import GroundTruth, sample_rows
from ..typing import bit_deterministic


@bit_deterministic
def build_homophilous_graph(
    theta: np.ndarray,
    avg_degree: int = 8,
    homophily: float = 0.7,
    seed: int = 0,
) -> nx.Graph:
    """Social graph whose edges prefer users with similar interests.

    Starts from a Watts–Strogatz small world over the users, then rewires
    each edge, with probability ``homophily``, to connect its source to
    one of the most interest-similar users instead (cosine over ``theta``
    rows). The result keeps small-world degree statistics while making
    "friends like what I like" true in expectation — the property the
    social model exploits.
    """
    if not 0 <= homophily <= 1:
        raise ValueError(f"homophily must be in [0, 1], got {homophily}")
    num_users = theta.shape[0]
    if avg_degree < 2 or avg_degree >= num_users:
        raise ValueError("avg_degree must be in [2, num_users)")
    rng = np.random.default_rng(seed)
    k = avg_degree + (avg_degree % 2)  # watts_strogatz needs an even k
    graph = nx.watts_strogatz_graph(num_users, k, p=0.3, seed=int(rng.integers(2**31)))

    normalised = theta / (np.linalg.norm(theta, axis=1, keepdims=True) + 1e-12)
    similarity = normalised @ normalised.T
    np.fill_diagonal(similarity, -np.inf)

    edges = list(graph.edges())
    for a, b in edges:
        if rng.random() < homophily:
            graph.remove_edge(a, b)
            # Reconnect "a" to one of its 10 most similar non-neighbours.
            candidates = np.argsort(-similarity[a], kind="stable")[:10]
            choices = [c for c in candidates if c != a and not graph.has_edge(a, int(c))]
            if choices:
                graph.add_edge(a, int(rng.choice(choices)))
            else:
                graph.add_edge(a, b)
    return graph


def adjacency_lists(graph: nx.Graph, num_users: int) -> list[np.ndarray]:
    """Friend-id arrays per user (empty array for isolated users)."""
    return [
        np.fromiter((int(v) for v in graph.neighbors(u)), dtype=np.int64)
        if graph.has_node(u)
        else np.empty(0, dtype=np.int64)
        for u in range(num_users)
    ]


def social_interest(theta: np.ndarray, friends: list[np.ndarray]) -> np.ndarray:
    """``θ̄_{N(u)}``: average interest of each user's friends.

    Users without friends fall back to their own interest (so the social
    component degenerates gracefully instead of going uniform).
    """
    social = np.empty_like(theta)
    for u, neighbours in enumerate(friends):
        social[u] = theta[neighbours].mean(axis=0) if neighbours.size else theta[u]
    return social


def add_social_ratings(
    cuboid: RatingCuboid,
    truth: GroundTruth,
    graph: nx.Graph,
    imitation_rate: float = 0.3,
    seed: int = 0,
) -> RatingCuboid:
    """Augment a dataset with friend-imitation behaviors.

    For each user, ``imitation_rate`` × their rating volume additional
    ratings are generated from the averaged interest distribution of
    their friends (re-using the generator's ground-truth topics), at
    random intervals. Returns a new coalesced cuboid.
    """
    if imitation_rate < 0:
        raise ValueError(f"imitation_rate must be >= 0, got {imitation_rate}")
    if imitation_rate == 0:
        return cuboid
    rng = np.random.default_rng(seed)
    friends = adjacency_lists(graph, cuboid.num_users)
    social_theta = social_interest(truth.theta, friends)

    volumes = np.maximum(
        rng.poisson(imitation_rate * cuboid.user_activity().astype(float)), 0
    )
    users = np.repeat(np.arange(cuboid.num_users, dtype=np.int64), volumes)
    if users.size == 0:
        return cuboid
    z = sample_rows(social_theta, users, rng)
    items = sample_rows(truth.phi, z, rng)
    intervals = rng.integers(0, cuboid.num_intervals, size=users.size)

    return RatingCuboid(
        users=np.concatenate([cuboid.users, users]),
        intervals=np.concatenate([cuboid.intervals, intervals]),
        items=np.concatenate([cuboid.items, items]),
        scores=np.concatenate([cuboid.scores, np.ones(users.size)]),
        num_users=cuboid.num_users,
        num_intervals=cuboid.num_intervals,
        num_items=cuboid.num_items,
        user_index=cuboid.user_index,
        item_index=cuboid.item_index,
    ).coalesce()


class SocialTTCAM:
    """TCAM with a third, social, influence component.

    Parameters
    ----------
    graph:
        The social network over the (dense) user ids.
    num_user_topics, num_time_topics, max_iter, tol, smoothing, seed:
        As in :class:`~repro.core.ttcam.TTCAM`.

    Attributes (after :meth:`fit`)
    ------------------------------
    theta_, phi_, theta_time_, phi_time_:
        As in TTCAM.
    influence_:
        ``(N, 3)`` per-user influence probabilities over
        ``(interest, social, context)``; rows sum to one.
    """

    COMPONENTS = ("interest", "social", "context")

    def __init__(
        self,
        graph: nx.Graph,
        num_user_topics: int = 60,
        num_time_topics: int = 40,
        max_iter: int = 50,
        tol: float = 1e-5,
        smoothing: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if num_user_topics <= 0 or num_time_topics <= 0:
            raise ValueError("topic counts must be positive")
        self.graph = graph
        self.num_user_topics = num_user_topics
        self.num_time_topics = num_time_topics
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        self.seed = seed
        self.theta_: np.ndarray | None = None
        self.phi_: np.ndarray | None = None
        self.theta_time_: np.ndarray | None = None
        self.phi_time_: np.ndarray | None = None
        self.influence_: np.ndarray | None = None
        self.trace_: EMTrace | None = None
        self._social_theta: np.ndarray | None = None

    @property
    def name(self) -> str:
        """Display name used in evaluation tables."""
        return "Social-TTCAM"

    def fit(self, cuboid: RatingCuboid) -> "SocialTTCAM":
        """Fit the three-way mixture by EM.

        The social component's topic mixture ``θ̄_{N(u)}`` is recomputed
        from the current ``θ`` at the start of every iteration (a
        mean-field treatment of the neighbourhood coupling).
        """
        if cuboid.nnz == 0:
            raise ValueError("cannot fit on an empty cuboid")
        rng = np.random.default_rng(self.seed)
        n, t_dim, v_dim = cuboid.shape
        k1, k2 = self.num_user_topics, self.num_time_topics
        u, t, v, c = cuboid.users, cuboid.intervals, cuboid.items, cuboid.scores
        friends = adjacency_lists(self.graph, n)

        theta = random_stochastic(rng, n, k1)
        phi = random_stochastic(rng, k1, v_dim)
        theta_time = random_stochastic(rng, t_dim, k2)
        phi_time = random_stochastic(rng, k2, v_dim)
        influence = np.full((n, 3), 1.0 / 3.0)

        trace = EMTrace()
        user_mass = scatter_sum_1d(u, c, n)
        safe_user_mass = np.where(user_mass <= 0, 1.0, user_mass)

        for _ in range(self.max_iter):
            social_theta = social_interest(theta, friends)

            phi_v = phi[:, v].T  # (R, K1)
            joint_interest = theta[u] * phi_v
            p_interest = joint_interest.sum(axis=1)
            joint_social = social_theta[u] * phi_v
            p_social = joint_social.sum(axis=1)
            joint_context = theta_time[t] * phi_time[:, v].T
            p_context = joint_context.sum(axis=1)

            w = influence[u]  # (R, 3)
            parts = np.stack(
                [w[:, 0] * p_interest, w[:, 1] * p_social, w[:, 2] * p_context],
                axis=1,
            )
            denom = parts.sum(axis=1) + EPS
            resp_branch = parts / denom[:, None]  # (R, 3)

            log_likelihood = float(np.dot(c, np.log(denom)))
            if trace.record(log_likelihood, self.tol):
                break

            resp_z = joint_interest * (
                resp_branch[:, 0] / (p_interest + EPS)
            )[:, None]
            resp_z_social = joint_social * (
                resp_branch[:, 1] / (p_social + EPS)
            )[:, None]
            resp_x = joint_context * (resp_branch[:, 2] / (p_context + EPS))[:, None]

            # M-step: social responsibilities update the *shared*
            # user-oriented item distributions φ (a friend's influence is
            # expressed through the same topics) but not θ_u directly.
            c_z = c[:, None] * resp_z
            c_z_social = c[:, None] * resp_z_social
            c_x = c[:, None] * resp_x
            theta = normalize_rows(scatter_sum(u, c_z, n), self.smoothing)
            phi = normalize_rows(
                scatter_sum(v, c_z + c_z_social, v_dim).T, self.smoothing
            )
            theta_time = normalize_rows(scatter_sum(t, c_x, t_dim), self.smoothing)
            phi_time = normalize_rows(scatter_sum(v, c_x, v_dim).T, self.smoothing)
            branch_mass = np.stack(
                [
                    scatter_sum_1d(u, c * resp_branch[:, i], n)
                    for i in range(3)
                ],
                axis=1,
            )
            influence = branch_mass / safe_user_mass[:, None]
            influence = np.clip(influence, 0.0, 1.0)
            influence /= influence.sum(axis=1, keepdims=True) + EPS

        self.theta_ = theta
        self.phi_ = phi
        self.theta_time_ = theta_time
        self.phi_time_ = phi_time
        self.influence_ = influence
        self.trace_ = trace
        self._social_theta = social_interest(theta, friends)
        return self

    def _require_fitted(self) -> None:
        if self.phi_ is None:
            raise RuntimeError("model is not fitted; call fit() first")

    def score_items(self, user: int, interval: int) -> np.ndarray:
        """Three-way mixture likelihood for every item."""
        self._require_fitted()
        w = self.influence_[user]
        interest = self.theta_[user] @ self.phi_
        social = self._social_theta[user] @ self.phi_
        context = self.theta_time_[interval] @ self.phi_time_
        return w[0] * interest + w[1] * social + w[2] * context

    def query_space(self, user: int, interval: int) -> tuple[np.ndarray, np.ndarray]:
        """Expanded query: interest+social share the user-oriented topics."""
        self._require_fitted()
        w = self.influence_[user]
        user_side = w[0] * self.theta_[user] + w[1] * self._social_theta[user]
        weights = np.concatenate([user_side, w[2] * self.theta_time_[interval]])
        matrix = np.vstack([self.phi_, self.phi_time_])
        return weights, matrix

    def matrix_cache_key(self, interval: int) -> str:
        """The stacked topic–item matrix is query-independent."""
        return "static"
