"""Extensions implementing the paper's future-work directions:
social-network influence, background-noise filtering and online
folding-in."""

from .background import BackgroundTTCAM
from .drift import DriftTTCAM, drift_interests, generate_drifting
from .online import OnlineTTCAM
from .social import (
    SocialTTCAM,
    add_social_ratings,
    build_homophilous_graph,
    social_interest,
)

__all__ = [
    "BackgroundTTCAM",
    "DriftTTCAM",
    "drift_interests",
    "generate_drifting",
    "OnlineTTCAM",
    "SocialTTCAM",
    "add_social_ratings",
    "build_homophilous_graph",
    "social_interest",
]
