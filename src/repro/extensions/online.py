"""Online folding-in for fitted TTCAM models.

Production recommenders cannot re-run full EM for every new user or every
new time interval. This extension adds the standard folding-in trick:
hold the shared topic–item distributions ``φ`` and ``φ′`` fixed and run a
few partial-EM iterations to estimate only the *local* parameters —

* :meth:`OnlineTTCAM.fold_in_user` — a new user's interest ``θ_u`` and
  mixing weight ``λ_u`` from that user's ratings;
* :meth:`OnlineTTCAM.fold_in_interval` — a new interval's temporal
  context ``θ′_t`` from the ratings observed during it.

This also addresses the paper's future-work note on time-evolving user
interests: re-folding a user on their recent window tracks drift without
retraining.

Streaming feeds these paths constantly, and real streams repeat and
reorder themselves (producer retries, out-of-order delivery), so both
fold-ins guard their inputs: duplicate ``(item, interval)`` /
``(user, item)`` events within one batch are deterministically coalesced
(scores summed, first-occurrence order preserved) and out-of-order
interval sequences are detected — each with a :class:`UserWarning` so
the condition is observable without crashing a serving path.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..core.em import EPS
from ..core.params import TTCAMParameters
from ..core.ttcam import TTCAM
from ..typing import bit_deterministic


def _coalesce_duplicates(
    keys: tuple[np.ndarray, ...],
    scores: np.ndarray,
    what: str,
) -> tuple[tuple[np.ndarray, ...], np.ndarray]:
    """Deterministically merge duplicate events within one fold-in batch.

    ``keys`` are aligned id arrays whose tuples identify an event (e.g.
    ``(items, intervals)`` for a user fold-in). Duplicates are summed
    into one event — the same merge :meth:`RatingCuboid.coalesce`
    applies offline — keeping first-occurrence order so clean batches
    pass through bit-unchanged. Emits a :class:`UserWarning` naming the
    batch kind when anything was merged.
    """
    stacked = np.stack(keys)
    _, first, inverse = np.unique(
        stacked, axis=1, return_index=True, return_inverse=True
    )
    if first.size == stacked.shape[1]:
        return keys, scores
    order = np.argsort(first, kind="stable")  # unique groups, first-seen order
    summed = np.bincount(inverse, weights=scores, minlength=first.size)
    merged = int(stacked.shape[1] - first.size)
    warnings.warn(
        f"{what} batch contains {merged} duplicate event(s); "
        "coalesced deterministically (scores summed)",
        UserWarning,
        stacklevel=3,
    )
    return tuple(key[first[order]] for key in keys), summed[order]


def _warn_out_of_order(intervals: np.ndarray, what: str) -> None:
    """Warn when a batch's interval sequence runs backwards.

    Folding is order-independent, so the result is unaffected — but a
    stream delivering out-of-order intervals usually signals a misbehaving
    producer, which should be visible rather than silent.
    """
    if intervals.size > 1 and bool(np.any(np.diff(intervals) < 0)):
        warnings.warn(
            f"{what} batch has out-of-order intervals; folding is "
            "order-independent but the feed may be misordered",
            UserWarning,
            stacklevel=3,
        )


class OnlineTTCAM:
    """Incremental estimator around a fitted TTCAM model.

    Parameters
    ----------
    base:
        A fitted :class:`~repro.core.ttcam.TTCAM` (or its parameters).
    fold_iterations:
        Partial-EM iterations per folding-in call; a handful suffices
        because only a low-dimensional local parameter is estimated.
    """

    def __init__(self, base: TTCAM | TTCAMParameters, fold_iterations: int = 15) -> None:
        if fold_iterations <= 0:
            raise ValueError(f"fold_iterations must be positive, got {fold_iterations}")
        params = base.params_ if isinstance(base, TTCAM) else base
        if params is None:
            raise ValueError("base model is not fitted")
        self.params = params
        self.fold_iterations = fold_iterations

    @bit_deterministic
    def fold_in_user(
        self,
        items: np.ndarray,
        intervals: np.ndarray,
        scores: np.ndarray | None = None,
    ) -> tuple[np.ndarray, float]:
        """Estimate ``(θ_u, λ_u)`` for an unseen user from their ratings.

        ``items``/``intervals`` are aligned arrays of the new user's rating
        behaviors; ``scores`` defaults to implicit 1s. Global topics and
        all interval contexts stay fixed.

        A user with no ratings cannot be estimated; rather than crash a
        serving path, the cold-start prior is returned — uniform interests
        and ``λ_u = 0.5`` — with a :class:`UserWarning`.
        """
        items = np.asarray(items, dtype=np.int64)
        intervals = np.asarray(intervals, dtype=np.int64)
        if items.size == 0:
            warnings.warn(
                "new user has no ratings; returning the cold-start prior "
                "(uniform interests, lambda=0.5)",
                UserWarning,
                stacklevel=2,
            )
            k1 = self.params.num_user_topics
            return np.full(k1, 1.0 / k1), 0.5
        if items.shape != intervals.shape:
            raise ValueError("items and intervals must be aligned")
        if items.max() >= self.params.num_items or items.min() < 0:
            raise ValueError("item ids out of range of the fitted catalogue")
        if intervals.max() >= self.params.num_intervals or intervals.min() < 0:
            raise ValueError("interval ids out of range of the fitted model")
        c = (
            np.ones(items.size)
            if scores is None
            else np.asarray(scores, dtype=np.float64)
        )
        _warn_out_of_order(intervals, "user fold-in")
        (items, intervals), c = _coalesce_duplicates((items, intervals), c, "user fold-in")

        phi_v = self.params.phi[:, items].T  # (R, K1), fixed
        p_context = np.einsum(
            "rk,kr->r", self.params.theta_time[intervals], self.params.phi_time[:, items]
        )  # fixed per rating

        k1 = self.params.num_user_topics
        theta_u = np.full(k1, 1.0 / k1)
        lam = 0.5
        for _ in range(self.fold_iterations):
            joint_z = theta_u[None, :] * phi_v
            p_interest = joint_z.sum(axis=1)
            denom = lam * p_interest + (1 - lam) * p_context + EPS
            ps1 = lam * p_interest / denom
            resp_z = joint_z * (ps1 / (p_interest + EPS))[:, None]
            weighted = (c[:, None] * resp_z).sum(axis=0)
            total = weighted.sum()
            if total > 0:
                theta_u = weighted / total
            lam = float(np.clip(np.dot(c, ps1) / c.sum(), 0.0, 1.0))
        return theta_u, lam

    @bit_deterministic
    def fold_in_interval(
        self,
        users: np.ndarray,
        items: np.ndarray,
        scores: np.ndarray | None = None,
    ) -> np.ndarray:
        """Estimate ``θ′_t`` for a brand-new interval from its ratings.

        ``users``/``items`` are the rating behaviors observed during the
        new interval; user parameters and all topic–item distributions
        stay fixed. Returns the new interval's ``(K2,)`` context.

        An interval with no observed ratings yet (e.g. the first seconds
        of a new time slice) gets the uniform prior context with a
        :class:`UserWarning` instead of an exception.
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if items.size == 0:
            warnings.warn(
                "new interval has no ratings; returning the uniform prior context",
                UserWarning,
                stacklevel=2,
            )
            k2 = self.params.num_time_topics
            return np.full(k2, 1.0 / k2)
        if users.shape != items.shape:
            raise ValueError("users and items must be aligned")
        if users.max() >= self.params.num_users or users.min() < 0:
            raise ValueError("user ids out of range of the fitted model")
        if items.max() >= self.params.num_items or items.min() < 0:
            raise ValueError("item ids out of range of the fitted catalogue")
        c = (
            np.ones(items.size)
            if scores is None
            else np.asarray(scores, dtype=np.float64)
        )
        (users, items), c = _coalesce_duplicates((users, items), c, "interval fold-in")

        p_interest = np.einsum(
            "rk,kr->r", self.params.theta[users], self.params.phi[:, items]
        )  # fixed
        phi_time_v = self.params.phi_time[:, items].T  # (R, K2), fixed
        lam_r = self.params.lambda_u[users]

        k2 = self.params.num_time_topics
        theta_t = np.full(k2, 1.0 / k2)
        for _ in range(self.fold_iterations):
            joint_x = theta_t[None, :] * phi_time_v
            p_context = joint_x.sum(axis=1)
            denom = lam_r * p_interest + (1 - lam_r) * p_context + EPS
            ps0 = (1 - lam_r) * p_context / denom
            resp_x = joint_x * (ps0 / (p_context + EPS))[:, None]
            weighted = (c[:, None] * resp_x).sum(axis=0)
            total = weighted.sum()
            if total > 0:
                theta_t = weighted / total
        return theta_t

    def extend_with_interval(
        self,
        users: np.ndarray,
        items: np.ndarray,
        scores: np.ndarray | None = None,
    ) -> TTCAMParameters:
        """Return new parameters with one extra interval appended.

        The new interval's context is folded in from its ratings; all
        other parameters are shared with the base model.
        """
        theta_t = self.fold_in_interval(users, items, scores)
        extended = np.vstack([self.params.theta_time, theta_t[None, :]])
        new_params = TTCAMParameters(
            theta=self.params.theta,
            phi=self.params.phi,
            theta_time=extended,
            phi_time=self.params.phi_time,
            lambda_u=self.params.lambda_u,
        )
        self.params = new_params
        return new_params

    def extend_with_user(
        self,
        items: np.ndarray,
        intervals: np.ndarray,
        scores: np.ndarray | None = None,
    ) -> TTCAMParameters:
        """Return new parameters with one extra user appended.

        The new user's ``(θ_u, λ_u)`` is folded in from their ratings
        (or the cold-start prior when they have none); every other
        parameter is shared with the base model. The streaming ingestor
        uses this to admit unseen user ids without a refit.
        """
        theta_u, lam = self.fold_in_user(items, intervals, scores)
        new_params = TTCAMParameters(
            theta=np.vstack([self.params.theta, theta_u[None, :]]),
            phi=self.params.phi,
            theta_time=self.params.theta_time,
            phi_time=self.params.phi_time,
            lambda_u=np.append(self.params.lambda_u, lam),
        )
        self.params = new_params
        return new_params

    def score_new_user(
        self,
        items: np.ndarray,
        intervals: np.ndarray,
        query_interval: int,
        scores: np.ndarray | None = None,
    ) -> np.ndarray:
        """One-shot cold-start scoring: fold a user in, then rank items."""
        theta_u, lam = self.fold_in_user(items, intervals, scores)
        interest = theta_u @ self.params.phi
        context = self.params.theta_time[query_interval] @ self.params.phi_time
        return lam * interest + (1 - lam) * context
