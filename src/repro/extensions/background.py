"""Background-smoothed TCAM (paper future work, Section 6, item 3).

"Since the user generated data in social media is very noisy, it would be
interesting to incorporate a background distribution to filter the noise"
— this module does exactly that: a three-way mixture where each rating is
explained by a fixed background item distribution ``θ_B`` (probability
``λ_B``), the user's interest, or the temporal context:

``P(v|u,t) = λ_B·P(v|θ_B) + (1 − λ_B)·[λ_u·P(v|θ_u) + (1 − λ_u)·P(v|θ′_t)]``

Routing uniform noise mass into the background frees the user- and
time-oriented topics from modelling it, sharpening both — the same effect
the item-weighting scheme achieves by re-weighting, achieved here by
model structure instead.
"""

from __future__ import annotations

import numpy as np

from ..core.em import EPS, EMTrace, normalize_rows, random_stochastic, scatter_sum, scatter_sum_1d
from ..core.params import TTCAMParameters
from ..data.cuboid import RatingCuboid


class BackgroundTTCAM:
    """TTCAM with an additional fixed background noise component.

    Parameters
    ----------
    num_user_topics, num_time_topics, max_iter, tol, smoothing, seed:
        As in :class:`~repro.core.ttcam.TTCAM`.
    background_weight:
        ``λ_B``, the fixed share of behavior attributed to background
        noise. The background distribution itself is the empirical item
        frequency, held fixed during EM.
    """

    def __init__(
        self,
        num_user_topics: int = 60,
        num_time_topics: int = 40,
        background_weight: float = 0.1,
        max_iter: int = 50,
        tol: float = 1e-5,
        smoothing: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if not 0 <= background_weight < 1:
            raise ValueError(
                f"background_weight must be in [0, 1), got {background_weight}"
            )
        if num_user_topics <= 0 or num_time_topics <= 0:
            raise ValueError("topic counts must be positive")
        self.num_user_topics = num_user_topics
        self.num_time_topics = num_time_topics
        self.background_weight = background_weight
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        self.seed = seed
        self.params_: TTCAMParameters | None = None
        self.background_: np.ndarray | None = None
        self.trace_: EMTrace | None = None

    @property
    def name(self) -> str:
        """Display name used in evaluation tables."""
        return "BG-TTCAM"

    def fit(self, cuboid: RatingCuboid) -> "BackgroundTTCAM":
        """Fit by EM with three-way responsibilities."""
        if cuboid.nnz == 0:
            raise ValueError("cannot fit on an empty cuboid")
        rng = np.random.default_rng(self.seed)
        n, t_dim, v_dim = cuboid.shape
        k1, k2 = self.num_user_topics, self.num_time_topics
        u, t, v, c = cuboid.users, cuboid.intervals, cuboid.items, cuboid.scores
        lam_b = self.background_weight

        popularity = cuboid.item_popularity()
        background = popularity / popularity.sum()

        theta = random_stochastic(rng, n, k1)
        phi = random_stochastic(rng, k1, v_dim)
        theta_time = random_stochastic(rng, t_dim, k2)
        phi_time = random_stochastic(rng, k2, v_dim)
        lam = np.full(n, 0.5)

        trace = EMTrace()
        for _ in range(self.max_iter):
            # ---- E-step: three-way split background / interest / context.
            joint_z = theta[u] * phi[:, v].T
            p_interest = joint_z.sum(axis=1)
            joint_x = theta_time[t] * phi_time[:, v].T
            p_context = joint_x.sum(axis=1)
            lam_r = lam[u]
            part_background = lam_b * background[v]
            part_interest = (1 - lam_b) * lam_r * p_interest
            part_context = (1 - lam_b) * (1 - lam_r) * p_context
            denom = part_background + part_interest + part_context + EPS
            r_interest = part_interest / denom
            r_context = part_context / denom
            resp_z = joint_z * (r_interest / (p_interest + EPS))[:, None]
            resp_x = joint_x * (r_context / (p_context + EPS))[:, None]

            log_likelihood = float(np.dot(c, np.log(denom)))
            if trace.record(log_likelihood, self.tol):
                break

            # ---- M-step.
            c_resp_z = c[:, None] * resp_z
            c_resp_x = c[:, None] * resp_x
            theta = normalize_rows(scatter_sum(u, c_resp_z, n), self.smoothing)
            phi = normalize_rows(scatter_sum(v, c_resp_z, v_dim).T, self.smoothing)
            theta_time = normalize_rows(scatter_sum(t, c_resp_x, t_dim), self.smoothing)
            phi_time = normalize_rows(scatter_sum(v, c_resp_x, v_dim).T, self.smoothing)
            # λ_u is conditional on "not background": normalise by the
            # user's total non-background responsibility mass.
            interest_mass = scatter_sum_1d(u, c * r_interest, n)
            nonbg_mass = scatter_sum_1d(u, c * (r_interest + r_context), n)
            lam = np.clip(
                interest_mass / np.where(nonbg_mass <= 0, 1.0, nonbg_mass), 0.0, 1.0
            )

        self.params_ = TTCAMParameters(
            theta=theta,
            phi=phi,
            theta_time=theta_time,
            phi_time=phi_time,
            lambda_u=lam,
        )
        self.background_ = background
        self.trace_ = trace
        return self

    def score_items(self, user: int, interval: int) -> np.ndarray:
        """Full three-way mixture likelihood for every item."""
        if self.params_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        lam_b = self.background_weight
        return lam_b * self.background_ + (1 - lam_b) * self.params_.score_items(
            user, interval
        )

    def query_space(self, user: int, interval: int) -> tuple[np.ndarray, np.ndarray]:
        """Expanded query with the background as one extra topic row."""
        if self.params_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        weights, matrix = self.params_.query_space(user, interval)
        lam_b = self.background_weight
        full_weights = np.concatenate([(1 - lam_b) * weights, [lam_b]])
        full_matrix = np.vstack([matrix, self.background_[None, :]])
        return full_weights, full_matrix

    def matrix_cache_key(self, interval: int) -> str:
        """The stacked matrix (topics + background row) is static."""
        return "static"
