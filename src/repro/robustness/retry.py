"""Retry with exponential backoff for transient failures.

Used by the partitioned E-step to re-execute crashed or timed-out shards.
The backoff schedule is deterministic (no random jitter) so a retried run
is exactly reproducible, and the ``sleep`` hook is injectable so tests
never actually wait.
"""

from __future__ import annotations

import time
from typing import Callable, TypeVar

from .errors import RetryExhaustedError

T = TypeVar("T")


def backoff_schedule(base: float, retries: int, cap: float = 2.0) -> list[float]:
    """The deterministic sleep durations used between attempts.

    Attempt ``i`` (0-based) is followed, on failure, by a sleep of
    ``min(base · 2^i, cap)`` seconds.
    """
    return [min(base * (2.0**i), cap) for i in range(retries)]


def run_with_retry(
    fn: Callable[[int], T],
    retries: int = 2,
    backoff: float = 0.05,
    max_backoff: float = 2.0,
    label: str = "operation",
    sleep: Callable[[float], None] = time.sleep,
    error: type[RetryExhaustedError] = RetryExhaustedError,
) -> T:
    """Call ``fn(attempt)`` until it succeeds or retries are exhausted.

    ``fn`` receives the 0-based attempt number (fault points use it to
    distinguish first tries from re-executions). Any exception counts as
    a failed attempt; after ``retries`` re-tries the final failure is
    wrapped in ``error`` (a :class:`RetryExhaustedError` subclass) with
    the original exception chained.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    schedule = backoff_schedule(backoff, retries, max_backoff)
    attempt = 0
    while True:
        try:
            return fn(attempt)
        except Exception as exc:
            if attempt >= retries:
                raise error(
                    f"{label} failed after {attempt + 1} attempt(s): {exc}",
                    attempts=attempt + 1,
                ) from exc
            sleep(schedule[attempt])
            attempt += 1
