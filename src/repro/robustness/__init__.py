"""Fault tolerance for training and serving: checkpoints, health guards,
retry, and deterministic fault injection.

The pieces compose into a crash-safe runtime around the EM models:

* :class:`CheckpointManager` — atomic, checksummed, pruned training
  checkpoints that :func:`repro.core.em.run_em` saves on a cadence and
  ``fit(..., resume_from=...)`` restores bit-compatibly;
* :class:`HealthMonitor` — per-iteration numerical invariants (finite
  values, stochastic rows, monotone log-likelihood, live topics) whose
  violation triggers rollback to the last good checkpoint;
* :func:`run_with_retry` — deterministic exponential backoff used by the
  partitioned E-step's shard re-execution;
* :class:`FaultInjector` — seeded, context-managed injection of shard
  crashes, NaN poisoning, slow shards and truncated snapshots, driving
  the ``tests/robustness`` suite.
"""

from .checkpoint import Checkpoint, CheckpointManager, digest_arrays
from .errors import (
    CheckpointError,
    EventLogCorruptError,
    HealthViolation,
    InjectedFault,
    RetryExhaustedError,
    RobustnessError,
    ServingUnavailableError,
    ShardFailedError,
    SnapshotCorruptError,
)
from .faults import (
    FaultInjector,
    active_injector,
    fault_point,
    faulty_write,
    maybe_poison,
    truncate_file,
)
from .health import HealthMonitor, rejitter_arrays
from .retry import backoff_schedule, run_with_retry

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "digest_arrays",
    "CheckpointError",
    "EventLogCorruptError",
    "HealthViolation",
    "InjectedFault",
    "RetryExhaustedError",
    "RobustnessError",
    "ServingUnavailableError",
    "ShardFailedError",
    "SnapshotCorruptError",
    "FaultInjector",
    "active_injector",
    "fault_point",
    "faulty_write",
    "maybe_poison",
    "truncate_file",
    "HealthMonitor",
    "rejitter_arrays",
    "backoff_schedule",
    "run_with_retry",
]
