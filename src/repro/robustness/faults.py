"""Deterministic fault injection for robustness testing.

Production code is instrumented with *fault points* — named no-op hooks
(:func:`fault_point`, :func:`maybe_poison`) that only act while a
:class:`FaultInjector` context is active. Tests arm an injector with a
plan ("crash shard 1 on its first attempt", "poison the EM state with
NaNs at iteration 5", "delay shard 0 by 50 ms") and run the real training
or serving path; everything is seeded and counted, so the induced failure
— and the recovery it must trigger — replays identically on every run.

Sites instrumented in this package:

* ``em.iteration``   — top of every EM iteration (context: ``iteration``);
* ``em.state``       — the freshly updated EM state (poisonable);
* ``parallel.shard`` — one shard's E-step (context: ``shard``, ``attempt``);
* ``wal.write``      — every byte range the event log writes (context:
  ``segment``), targetable by the write-fault plans below;
* ``stream.batch``   — top of every ingested micro-batch (context:
  ``batch``, ``offset``);
* ``stream.checkpoint`` — just before the ingestor persists its state.

Write faults (:meth:`FaultInjector.torn_write`,
:meth:`FaultInjector.short_write`, :meth:`FaultInjector.disk_full`)
act through :func:`faulty_write`, which production file-writing code
routes its writes through: a *short* write delivers only a prefix and
reports it (the caller's write loop must finish the job), a *torn*
write delivers a prefix and then simulates the process dying, and
*disk-full* raises ``OSError(ENOSPC)`` without writing anything.
"""

from __future__ import annotations

import errno
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

import numpy as np

from ..typing import FloatArray

from .errors import InjectedFault

_lock = threading.Lock()
_active: "FaultInjector | None" = None


def active_injector() -> "FaultInjector | None":
    """The currently armed injector, or ``None`` outside any context."""
    return _active


def fault_point(site: str, **context: object) -> None:
    """Hook for crash/delay faults; a no-op unless an injector is armed."""
    injector = _active
    if injector is not None:
        injector._hit(site, context)


def maybe_poison(
    site: str, arrays: dict[str, FloatArray], **context: object
) -> dict[str, FloatArray]:
    """Hook for NaN-poisoning faults; returns ``arrays`` untouched unless armed."""
    injector = _active
    if injector is not None:
        return injector._poison(site, arrays, context)
    return arrays


def faulty_write(site: str, handle: IO[bytes], data: "bytes | memoryview", **context: object) -> int:
    """Write ``data`` to ``handle``, subject to armed write-fault plans.

    Returns the number of bytes actually written, mirroring the
    ``os.write`` contract: a *short-write* plan delivers only a prefix,
    so callers must loop until all bytes are on disk (see
    :meth:`repro.streaming.wal.EventLog.append`). A *torn-write* plan
    writes a prefix and then raises :class:`InjectedFault`, simulating
    the process dying mid-write; a *disk-full* plan raises
    ``OSError(ENOSPC)`` before anything is written. Without an armed
    injector this is exactly ``handle.write(data)``.
    """
    injector = _active
    if injector is None:
        return handle.write(data)
    return injector._write(site, handle, data, context)


def truncate_file(path: str | Path, keep_fraction: float = 0.5) -> Path:
    """Truncate a file in place, simulating a crash mid-write.

    Keeps the leading ``keep_fraction`` of the bytes (at least one), which
    reliably corrupts ``.npz``/zip archives whose directory lives at the
    end of the file.
    """
    if not 0 <= keep_fraction < 1:
        raise ValueError(f"keep_fraction must be in [0, 1), got {keep_fraction}")
    path = Path(path)
    size = path.stat().st_size
    keep = max(1, int(size * keep_fraction))
    with path.open("rb+") as handle:
        handle.truncate(keep)
    return path


@dataclass
class _Plan:
    """One armed fault: what to do, where, and how many times."""

    site: str
    action: str  # "crash" | "delay" | "nan" | "torn-write" | "short-write" | "disk-full"
    times: int
    match: dict[str, object]
    seconds: float = 0.0
    cells: int = 1
    array: str | None = None
    keep_fraction: float = 0.5
    fired: int = 0

    def applies(self, site: str, context: dict[str, object]) -> bool:
        """True when this plan matches the fault point and still has shots."""
        if site != self.site or self.fired >= self.times:
            return False
        return all(context.get(key) == value for key, value in self.match.items())


class FaultInjector:
    """Seeded, context-managed fault plan for deterministic chaos tests.

    Use as a context manager::

        with FaultInjector(seed=7) as chaos:
            chaos.crash("parallel.shard", shard=1, attempt=0)
            model.fit(cuboid)   # shard 1's first attempt raises InjectedFault

    Arming is process-global (the hooks in production code consult one
    slot), so contexts must not be nested across threads; the tests in
    ``tests/robustness`` arm one injector at a time.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._plans: list[_Plan] = []

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------

    def crash(self, site: str, times: int = 1, **match: object) -> "FaultInjector":
        """Arm ``times`` :class:`InjectedFault` raises at ``site``."""
        self._plans.append(_Plan(site=site, action="crash", times=times, match=match))
        return self

    def delay(
        self, site: str, seconds: float, times: int = 1, **match: object
    ) -> "FaultInjector":
        """Arm ``times`` sleeps of ``seconds`` at ``site`` (slow-shard fault)."""
        self._plans.append(
            _Plan(site=site, action="delay", times=times, match=match, seconds=seconds)
        )
        return self

    def poison_nan(
        self,
        site: str,
        times: int = 1,
        cells: int = 1,
        array: str | None = None,
        **match: object,
    ) -> "FaultInjector":
        """Arm NaN poisoning of ``cells`` entries at ``site``.

        ``array`` pins the poisoned array by name; by default one is
        chosen with the injector's seeded RNG.
        """
        if cells <= 0:
            raise ValueError(f"cells must be positive, got {cells}")
        self._plans.append(
            _Plan(
                site=site,
                action="nan",
                times=times,
                match=match,
                cells=cells,
                array=array,
            )
        )
        return self

    def torn_write(
        self,
        site: str,
        keep_fraction: float = 0.5,
        times: int = 1,
        **match: object,
    ) -> "FaultInjector":
        """Arm a crash mid-write: a prefix lands on disk, then the
        process "dies" (:class:`InjectedFault`).

        ``keep_fraction`` of the requested bytes (at least one when any
        were requested) are written before the fault raises — exactly
        the torn tail a WAL recovery path must truncate.
        """
        if not 0 <= keep_fraction < 1:
            raise ValueError(f"keep_fraction must be in [0, 1), got {keep_fraction}")
        self._plans.append(
            _Plan(
                site=site,
                action="torn-write",
                times=times,
                match=match,
                keep_fraction=keep_fraction,
            )
        )
        return self

    def short_write(
        self,
        site: str,
        keep_fraction: float = 0.5,
        times: int = 1,
        **match: object,
    ) -> "FaultInjector":
        """Arm ``times`` short writes: only a prefix is written and its
        length returned, as ``os.write`` is allowed to do.

        No exception is raised — correct callers loop until every byte
        is durable, so a short write must be invisible in the recovered
        state.
        """
        if not 0 <= keep_fraction < 1:
            raise ValueError(f"keep_fraction must be in [0, 1), got {keep_fraction}")
        self._plans.append(
            _Plan(
                site=site,
                action="short-write",
                times=times,
                match=match,
                keep_fraction=keep_fraction,
            )
        )
        return self

    def disk_full(self, site: str, times: int = 1, **match: object) -> "FaultInjector":
        """Arm ``times`` ``OSError(ENOSPC)`` raises before any byte is written."""
        self._plans.append(
            _Plan(site=site, action="disk-full", times=times, match=match)
        )
        return self

    @property
    def fired(self) -> int:
        """Total faults delivered so far."""
        return sum(plan.fired for plan in self._plans)

    # ------------------------------------------------------------------
    # context management
    # ------------------------------------------------------------------

    def __enter__(self) -> "FaultInjector":
        """Arm this injector process-wide."""
        global _active
        with _lock:
            if _active is not None:
                raise RuntimeError("another FaultInjector is already active")
            _active = self
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Disarm; fault hooks become no-ops again."""
        global _active
        with _lock:
            _active = None

    # ------------------------------------------------------------------
    # delivery (called from the hooks)
    # ------------------------------------------------------------------

    def _hit(self, site: str, context: dict[str, object]) -> None:
        """Deliver crash/delay plans matching one fault point."""
        delays: list[float] = []
        crash: _Plan | None = None
        with _lock:
            for plan in self._plans:
                if plan.action in ("crash", "delay") and plan.applies(site, context):
                    plan.fired += 1
                    if plan.action == "crash":
                        crash = plan
                        break
                    delays.append(plan.seconds)
        for seconds in delays:
            time.sleep(seconds)
        if crash is not None:
            raise InjectedFault(f"injected crash at {site} ({context})")

    def _poison(
        self, site: str, arrays: dict[str, FloatArray], context: dict[str, object]
    ) -> dict[str, FloatArray]:
        """Deliver NaN-poison plans; returns (possibly copied) arrays."""
        with _lock:
            plans = [
                plan
                for plan in self._plans
                if plan.action == "nan" and plan.applies(site, context)
            ]
            for plan in plans:
                plan.fired += 1
        if not plans:
            return arrays
        poisoned = dict(arrays)
        for plan in plans:
            name = plan.array
            if name is None:
                name = sorted(poisoned)[int(self._rng.integers(len(poisoned)))]
            target = np.array(poisoned[name], dtype=np.float64, copy=True)
            flat = target.reshape(-1)
            index = self._rng.integers(flat.size, size=plan.cells)
            flat[index] = np.nan
            poisoned[name] = target
        return poisoned

    def _write(
        self,
        site: str,
        handle: IO[bytes],
        data: "bytes | memoryview",
        context: dict[str, object],
    ) -> int:
        """Deliver write-fault plans for one :func:`faulty_write` call."""
        matched: _Plan | None = None
        with _lock:
            for plan in self._plans:
                if (
                    plan.action in ("torn-write", "short-write", "disk-full")
                    and plan.applies(site, context)
                ):
                    plan.fired += 1
                    matched = plan
                    break
        if matched is None:
            return handle.write(data)
        if matched.action == "disk-full":
            raise OSError(errno.ENOSPC, f"injected disk-full at {site} ({context})")
        size = len(data)
        keep = max(1, int(size * matched.keep_fraction)) if size else 0
        written = handle.write(memoryview(data)[:keep])
        if matched.action == "torn-write":
            handle.flush()
            raise InjectedFault(f"injected torn write at {site} ({context})")
        return written
