"""Atomic, checksummed training checkpoints for long EM runs.

A :class:`CheckpointManager` owns one directory of numbered checkpoint
files. Each checkpoint is a single ``.npz`` archive holding the named
parameter arrays of an EM run plus bookkeeping (iteration count, the
log-likelihood trace so far, a JSON metadata blob and a content
checksum). Writes go to a temporary file first and are published with
:func:`os.replace`, so a crash mid-write can never leave a truncated
file under a checkpoint name; loads verify the checksum, so a damaged
file is skipped rather than resumed from.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import warnings
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..typing import FloatArray

from .errors import CheckpointError

_ITERATION_KEY = "__iteration__"
_TRACE_KEY = "__log_likelihood__"
_META_KEY = "__meta__"
_CHECKSUM_KEY = "__checksum__"
_RESERVED = {_ITERATION_KEY, _TRACE_KEY, _META_KEY, _CHECKSUM_KEY}


def digest_arrays(arrays: dict[str, FloatArray]) -> str:
    """SHA-256 digest over named arrays (name, dtype, shape and bytes).

    The digest is independent of dict insertion order, so the same
    parameters always hash identically.
    """
    h = hashlib.sha256()
    for name in sorted(arrays):
        value = np.ascontiguousarray(arrays[name])
        h.update(name.encode())
        h.update(str(value.dtype).encode())
        h.update(str(value.shape).encode())
        h.update(value.tobytes())
    return h.hexdigest()


@dataclass
class Checkpoint:
    """One restorable EM state: parameter arrays plus trace position."""

    arrays: dict[str, FloatArray]
    iteration: int
    log_likelihood: list[float] = field(default_factory=list)
    meta: dict[str, object] = field(default_factory=dict)
    path: Path | None = None


class CheckpointManager:
    """Writes, prunes and restores checkpoints in one directory.

    Parameters
    ----------
    directory:
        Where checkpoint files live; created on first save.
    every:
        Save cadence in EM iterations (consulted via :meth:`should_save`).
    keep:
        How many most-recent checkpoints to retain; older ones are pruned
        after each successful save.
    prefix:
        File-name prefix, letting several runs share a directory.
    """

    def __init__(
        self,
        directory: str | Path,
        every: int = 5,
        keep: int = 3,
        prefix: str = "em",
    ) -> None:
        if every <= 0:
            raise ValueError(f"every must be positive, got {every}")
        if keep <= 0:
            raise ValueError(f"keep must be positive, got {keep}")
        self.directory = Path(directory)
        self.every = every
        self.keep = keep
        self.prefix = prefix
        self.meta: dict[str, object] = {}

    def should_save(self, iteration: int) -> bool:
        """True when ``iteration`` falls on the save cadence."""
        return iteration > 0 and iteration % self.every == 0

    def _path_for(self, iteration: int) -> Path:
        return self.directory / f"{self.prefix}-{iteration:06d}.ckpt.npz"

    def save(
        self,
        arrays: dict[str, FloatArray],
        iteration: int,
        log_likelihood: list[float] | None = None,
    ) -> Path:
        """Atomically persist one checkpoint; returns its final path.

        The archive is written to a ``.tmp`` sibling and renamed into
        place, so concurrent readers never observe a partial file.
        """
        bad = _RESERVED & set(arrays)
        if bad:
            raise CheckpointError(f"array names collide with reserved keys: {sorted(bad)}")
        self.directory.mkdir(parents=True, exist_ok=True)
        final = self._path_for(iteration)
        tmp = final.parent / (final.name + ".tmp")
        payload = {name: np.asarray(value) for name, value in arrays.items()}
        trace = np.asarray(log_likelihood if log_likelihood is not None else [], dtype=np.float64)
        with open(tmp, "wb") as handle:
            np.savez_compressed(
                handle,
                **payload,
                **{
                    _ITERATION_KEY: np.array(int(iteration)),
                    _TRACE_KEY: trace,
                    _META_KEY: np.array(json.dumps(self.meta, sort_keys=True)),
                    _CHECKSUM_KEY: np.array(digest_arrays(payload)),
                },
            )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        self._prune()
        return final

    def _prune(self) -> None:
        """Delete all but the ``keep`` newest checkpoints."""
        existing = self._list()
        for _, path in existing[: -self.keep]:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    def _list(self) -> list[tuple[int, Path]]:
        """Checkpoint files in this directory, sorted by iteration."""
        pattern = re.compile(rf"{re.escape(self.prefix)}-(\d+)\.ckpt\.npz$")
        found = []
        if self.directory.is_dir():
            for path in self.directory.iterdir():
                match = pattern.fullmatch(path.name)
                if match:
                    found.append((int(match.group(1)), path))
        return sorted(found)

    def load(self, path: str | Path) -> Checkpoint:
        """Load and verify one checkpoint file.

        Raises :class:`~repro.robustness.errors.CheckpointError` on a
        truncated archive, a checksum mismatch, or missing bookkeeping.
        """
        path = Path(path)
        try:
            with np.load(path, allow_pickle=False) as archive:
                names = set(archive.files)
                if not _RESERVED <= names:
                    raise CheckpointError(f"{path} is not a checkpoint archive")
                arrays = {
                    name: archive[name] for name in names - _RESERVED
                }
                expected = str(archive[_CHECKSUM_KEY])
                actual = digest_arrays(arrays)
                if actual != expected:
                    raise CheckpointError(
                        f"{path} failed its checksum (stored {expected[:12]}…, "
                        f"recomputed {actual[:12]}…)"
                    )
                return Checkpoint(
                    arrays=arrays,
                    iteration=int(archive[_ITERATION_KEY]),
                    log_likelihood=[float(x) for x in archive[_TRACE_KEY]],
                    meta=json.loads(str(archive[_META_KEY])),
                    path=path,
                )
        except CheckpointError:
            raise
        except Exception as exc:  # zipfile.BadZipFile, OSError, KeyError, ...
            raise CheckpointError(f"checkpoint {path} is unreadable: {exc}") from exc

    def latest(self) -> Checkpoint | None:
        """The newest checkpoint that passes verification, or ``None``.

        Damaged files are skipped (with a warning) so a crash during the
        final save still leaves the previous good checkpoint reachable.
        """
        for _, path in reversed(self._list()):
            try:
                return self.load(path)
            except CheckpointError as exc:
                warnings.warn(
                    f"skipping unusable checkpoint: {exc}", UserWarning, stacklevel=2
                )
        return None
