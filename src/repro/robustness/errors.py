"""Exception types for the fault-tolerance subsystem.

Every failure the robustness layer can detect or inject has a dedicated
type, so calling code (and tests) can distinguish "the snapshot on disk
is damaged" from "EM produced garbage" from "a deliberately injected
fault escaped its harness".
"""

from __future__ import annotations


class RobustnessError(Exception):
    """Base class for all robustness-subsystem errors."""


class SnapshotCorruptError(RobustnessError, ValueError):
    """A parameter snapshot failed its checksum or could not be decoded.

    Subclasses :class:`ValueError` so pre-existing callers that caught
    ``ValueError`` from :func:`repro.core.serialize.load_params` keep
    working.
    """


class CheckpointError(RobustnessError):
    """A training checkpoint is unusable (missing, corrupt or mismatched)."""


class EventLogCorruptError(RobustnessError):
    """A write-ahead event-log segment is damaged beyond its live tail.

    A torn tail on the *last* segment is expected after a crash and is
    silently truncated during recovery; corruption anywhere else means
    the durable history itself is damaged and replay cannot be trusted.
    """


class HealthViolation(RobustnessError):
    """An EM iteration violated a numerical-health invariant.

    Attributes
    ----------
    violations:
        Human-readable descriptions of every invariant that failed.
    """

    def __init__(self, violations: list[str]) -> None:
        self.violations = list(violations)
        super().__init__("; ".join(self.violations))


class InjectedFault(RobustnessError):
    """Raised by the fault injector at an armed fault point (tests only)."""


class RetryExhaustedError(RobustnessError):
    """A retried operation kept failing after every allowed attempt.

    Attributes
    ----------
    attempts:
        Total attempts made (initial try plus retries).
    """

    def __init__(self, message: str, attempts: int) -> None:
        self.attempts = attempts
        super().__init__(message)


class ShardFailedError(RetryExhaustedError):
    """One E-step shard failed permanently despite retries."""


class ServingUnavailableError(RobustnessError):
    """Neither the primary model nor any fallback could answer a query."""


class ServiceDrainingError(RobustnessError):
    """The serving service is draining and refuses new work.

    Raised (and surfaced over the wire as a structured refusal) when a
    query arrives after graceful shutdown began: in-flight micro-batches
    finish, but the admission queue is closed. Clients should retry
    against another replica rather than wait.
    """
