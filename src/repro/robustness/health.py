"""Numerical health guards for EM training.

EM over sparse count data fails in characteristic ways: a NaN/Inf from an
overflowing kernel, a parameter matrix drifting off the probability
simplex, a log-likelihood that *decreases* (impossible for correct EM, so
always a bug or data corruption), or a topic collapsing to zero mass.
:class:`HealthMonitor` checks those invariants after every iteration and
raises :class:`~repro.robustness.errors.HealthViolation` so the EM driver
can roll back to the last good checkpoint instead of silently emitting
garbage parameters.
"""

from __future__ import annotations

import numpy as np

from ..typing import FloatArray

from .errors import HealthViolation


class HealthMonitor:
    """Per-iteration invariant checker for EM parameter states.

    Parameters
    ----------
    stochastic:
        Names of arrays whose rows must be probability distributions
        (non-negative, summing to ~1).
    unit_interval:
        Names of arrays whose entries must lie in ``[0, 1]``.
    no_collapse:
        Names of row-stochastic arrays whose *columns* are topics; a
        column whose total mass drops to ``collapse_tol`` or below means
        the topic died and the fit is degenerate.
    ll_slack:
        Relative slack allowed on the monotone log-likelihood check
        (floating-point summation is order-sensitive).
    collapse_tol:
        Column-mass threshold at or below which a topic counts as
        collapsed.
    """

    def __init__(
        self,
        stochastic: tuple[str, ...] = (),
        unit_interval: tuple[str, ...] = (),
        no_collapse: tuple[str, ...] = (),
        ll_slack: float = 1e-6,
        collapse_tol: float = 0.0,
    ) -> None:
        if ll_slack < 0:
            raise ValueError(f"ll_slack must be >= 0, got {ll_slack}")
        self.stochastic = tuple(stochastic)
        self.unit_interval = tuple(unit_interval)
        self.no_collapse = tuple(no_collapse)
        self.ll_slack = ll_slack
        self.collapse_tol = collapse_tol

    def violations(
        self,
        arrays: dict[str, FloatArray],
        log_likelihood: float | None = None,
        previous: float | None = None,
    ) -> list[str]:
        """All invariant violations in one EM state (empty list = healthy)."""
        problems: list[str] = []
        for name, value in arrays.items():
            if not np.all(np.isfinite(value)):
                bad = int(np.size(value) - np.count_nonzero(np.isfinite(value)))
                problems.append(f"{name} has {bad} non-finite entries")
        for name in self.stochastic:
            value = arrays.get(name)
            if value is None or not np.all(np.isfinite(value)):
                continue  # absence/non-finiteness already reported
            if np.any(value < -1e-9):
                problems.append(f"{name} has negative probabilities")
            sums = value.sum(axis=-1)
            if not np.allclose(sums, 1.0, atol=1e-4):
                worst = float(np.abs(sums - 1.0).max())
                problems.append(f"{name} rows are not stochastic (max err {worst:.2e})")
        for name in self.unit_interval:
            value = arrays.get(name)
            if value is None or not np.all(np.isfinite(value)):
                continue
            if np.any(value < -1e-9) or np.any(value > 1 + 1e-9):
                problems.append(f"{name} left the unit interval")
        for name in self.no_collapse:
            value = arrays.get(name)
            if value is None or value.ndim != 2 or not np.all(np.isfinite(value)):
                continue
            mass = value.sum(axis=0)
            dead = int(np.count_nonzero(mass <= self.collapse_tol))
            if dead:
                problems.append(f"{name} has {dead} collapsed topic column(s)")
        if log_likelihood is not None:
            if not np.isfinite(log_likelihood):
                problems.append(f"log likelihood became non-finite: {log_likelihood}")
            elif previous is not None and np.isfinite(previous):
                floor = previous - self.ll_slack * max(abs(previous), 1.0)
                if log_likelihood < floor:
                    problems.append(
                        "log likelihood decreased "
                        f"({previous:.6f} -> {log_likelihood:.6f})"
                    )
        return problems

    def check(
        self,
        arrays: dict[str, FloatArray],
        log_likelihood: float | None = None,
        previous: float | None = None,
    ) -> None:
        """Raise :class:`HealthViolation` if any invariant fails."""
        problems = self.violations(arrays, log_likelihood, previous)
        if problems:
            raise HealthViolation(problems)


def rejitter_arrays(
    arrays: dict[str, FloatArray],
    stochastic: tuple[str, ...],
    unit_interval: tuple[str, ...],
    seed: int,
    scale: float = 1e-3,
) -> dict[str, FloatArray]:
    """Multiplicatively perturb a restored EM state to escape a bad path.

    Rolling back to a checkpoint and deterministically replaying the same
    iterations would reproduce the same failure, so recovery re-jitters
    the restored parameters: row-stochastic arrays are scaled by
    ``1 + scale·U(0,1)`` per cell and renormalised; unit-interval arrays
    are nudged and clipped. The perturbation is seeded, keeping recovery
    reproducible.
    """
    rng = np.random.default_rng(seed)
    jittered: dict[str, FloatArray] = {}
    for name, value in arrays.items():
        value = np.array(value, dtype=np.float64, copy=True)
        if name in stochastic:
            value *= 1.0 + scale * rng.random(value.shape)
            value /= value.sum(axis=-1, keepdims=True)
        elif name in unit_interval:
            value = np.clip(value + scale * (rng.random(value.shape) - 0.5), 0.0, 1.0)
        jittered[name] = value
    return jittered
