"""Efficiency demo: the Threshold Algorithm at production catalogue scale.

Shows why Section 4.2's query-processing technique matters: at the
paper's catalogue sizes (tens of thousands of items), the TA engine
answers top-k queries by fully scoring only a few percent of the
catalogue, beating the brute-force scan by an order of magnitude —
while returning *exactly* the same items.

Run with::

    python examples/efficiency_demo.py
"""

import time

import numpy as np

from repro.recommend import QuerySpace, SortedTopicLists, batched_ta_topk, bruteforce_topk, ta_topk


def main() -> None:
    rng = np.random.default_rng(0)
    num_items = 50_000
    k1, k2 = 60, 40

    print(f"catalogue: {num_items} items, {k1}+{k2} topics")
    matrix = rng.dirichlet(np.full(num_items, 0.03), size=k1 + k2)

    t0 = time.perf_counter()
    lists = SortedTopicLists.build(matrix)
    print(f"offline: per-topic sorted lists built in {time.perf_counter() - t0:.2f}s\n")

    def make_query():
        lam = rng.beta(4, 3)
        theta_u = rng.dirichlet(np.full(k1, 0.02))
        theta_t = rng.dirichlet(np.full(k2, 0.05))
        return QuerySpace(
            np.concatenate([lam * theta_u, (1 - lam) * theta_t]), matrix
        )

    queries = [make_query() for _ in range(20)]

    # Exactness first.
    for query in queries[:5]:
        bf = bruteforce_topk(query, 10)
        ta = batched_ta_topk(query, lists, 10)
        assert ta.items == bf.items, "TA must be exact"
    print("exactness: TA top-10 identical to brute force on every query ✓\n")

    rows = []
    for name, engine in (
        ("TCAM-BF (full scan)", lambda q: bruteforce_topk(q, 10)),
        ("TCAM-TA (Algorithm 1)", lambda q: ta_topk(q, lists, 10)),
        ("TCAM-TA (batched)", lambda q: batched_ta_topk(q, lists, 10)),
    ):
        start = time.perf_counter()
        scored = [engine(q).items_scored for q in queries]
        ms = (time.perf_counter() - start) * 1000 / len(queries)
        rows.append((name, ms, float(np.mean(scored))))

    print(f"{'engine':24s}{'ms/query':>10s}{'items scored':>14s}")
    for name, ms, scored in rows:
        print(f"{name:24s}{ms:10.2f}{scored:14.0f}")

    speedup = rows[0][1] / rows[2][1]
    print(
        f"\nbatched TA answers exactly the same queries {speedup:.0f}x faster, "
        f"touching {rows[2][2] / num_items:.1%} of the catalogue."
    )


if __name__ == "__main__":
    main()
