"""Quickstart: fit TCAM on timestamped ratings and serve temporal top-k.

Runs in a few seconds::

    python examples/quickstart.py

Walks the full pipeline: generate a news-like timestamped rating
dataset, split it, fit the topic-based TCAM model by EM, answer a
temporal query with the Threshold-Algorithm engine, and score the
result against the held-out data.
"""

from repro import TTCAM, TemporalRecommender
from repro.data import generate, holdout_split, profile
from repro.evaluation import build_queries, evaluate_ranking


def main() -> None:
    # 1. Data: a Digg-like news platform (synthetic substitute with the
    #    paper's causal structure: stable interests + bursty events).
    config = profile("digg", scale=0.3)
    cuboid, truth = generate(config)
    print(f"dataset: {cuboid}")

    # 2. The paper's protocol: hold out 20% of each user's per-interval
    #    ratings.
    split = holdout_split(cuboid, seed=0)
    print(f"train entries: {split.train.nnz}, test entries: {split.test.nnz}")

    # 3. Fit TTCAM: user-oriented topics + time-oriented topics + per-user
    #    mixing weights, by EM.
    model = TTCAM(num_user_topics=8, num_time_topics=10, max_iter=50, seed=0)
    model.fit(split.train)
    trace = model.trace_
    print(
        f"EM: {trace.iterations} iterations, "
        f"log-likelihood {trace.log_likelihood[0]:.0f} → "
        f"{trace.final_log_likelihood:.0f}"
    )
    lam = model.params_.lambda_u
    print(
        f"learned mixing weights: mean λ = {lam.mean():.2f} "
        f"(news platform → public attention dominates)"
    )

    # 4. Temporal top-k with the Threshold Algorithm (Section 4.2).
    recommender = TemporalRecommender(model, method="ta")
    user, interval = 3, 12
    result = recommender.recommend(user, interval, k=5)
    print(f"\ntop-5 for user {user} at interval {interval}:")
    for rec in result.recommendations:
        label = cuboid.item_index.label_of(rec.item)
        print(f"  {label:28s} score {rec.score:.4f}")
    print(
        f"(TA fully scored {result.items_scored} of {cuboid.num_items} items)"
    )

    # 5. Evaluate on the held-out temporal queries.
    queries = build_queries(split, max_queries=200, seed=0)
    report = evaluate_ranking(model, queries, ks=(1, 5, 10))
    print(f"\nheld-out accuracy over {report.num_queries} temporal queries:")
    for k in report.ks:
        print(
            f"  @{k:<2d}  precision {report.at('precision', k):.3f}  "
            f"ndcg {report.at('ndcg', k):.3f}  f1 {report.at('f1', k):.3f}"
        )


if __name__ == "__main__":
    main()
