"""News recommendation: a time-sensitive platform end to end.

Scenario from the paper's introduction: on a social news aggregator,
"it is most likely that users will be attracted by breaking news" — the
temporal context dominates user choices. This example:

1. builds a Digg-like platform substitute,
2. compares interest-only (UT), context-only (TT) and full TCAM models,
3. inspects the learned influence weights (most users context-driven),
4. shows the Threshold-Algorithm engine answering queries while fully
   scoring only a fraction of the catalogue.

Run with::

    python examples/news_recommendation.py
"""

import numpy as np

from repro import ITCAM, TTCAM, TemporalRecommender, UserTopicModel, TimeTopicModel
from repro.analysis.influence import fraction_above, summarize_influence
from repro.data import generate, holdout_split, profile
from repro.evaluation import build_queries, evaluate_ranking


def main() -> None:
    cuboid, truth = generate(profile("digg", scale=0.4))
    split = holdout_split(cuboid, seed=0)
    queries = build_queries(split, max_queries=250, seed=0)
    print(f"news platform: {cuboid}\n")

    # --- model comparison ------------------------------------------------
    models = {
        "UT (interest only)": UserTopicModel(num_topics=8, max_iter=50, seed=0),
        "TT (context only)": TimeTopicModel(num_topics=10, max_iter=50, seed=0),
        "ITCAM": ITCAM(num_user_topics=8, max_iter=50, seed=0),
        "TTCAM": TTCAM(8, 10, max_iter=50, seed=0),
    }
    print("held-out temporal accuracy (NDCG@5 / precision@5):")
    fitted = {}
    for name, model in models.items():
        model.fit(split.train)
        fitted[name] = model
        report = evaluate_ranking(model, queries, ks=(5,))
        print(
            f"  {name:22s} {report.at('ndcg', 5):.3f} / "
            f"{report.at('precision', 5):.3f}"
        )
    print(
        "\n→ context-aware models win on news: temporal context, not taste,"
        "\n  drives what people read (the paper's Figure 6 story)."
    )

    # --- influence analysis ----------------------------------------------
    lam = fitted["TTCAM"].params_.lambda_u
    summary = summarize_influence(lam)
    print(f"\nlearned influence weights: {summary}")
    print(
        f"users whose temporal-context influence exceeds 0.5: "
        f"{fraction_above(1 - lam, 0.5):.0%} (paper's Figure 11: >70%)"
    )

    # --- efficient serving -----------------------------------------------
    recommender = TemporalRecommender(fitted["TTCAM"], method="ta")
    recommender.precompute()
    rng = np.random.default_rng(1)
    scored = []
    for _ in range(50):
        u = int(rng.integers(cuboid.num_users))
        t = int(rng.integers(cuboid.num_intervals))
        scored.append(recommender.recommend(u, t, k=10).items_scored)
    print(
        f"\nThreshold-Algorithm serving: fully scored "
        f"{np.mean(scored):.0f} of {cuboid.num_items} stories per query "
        f"({np.mean(scored) / cuboid.num_items:.0%} of the catalogue)"
    )

    # One concrete recommendation at a burst.
    event = truth.config.events[0]
    result = recommender.recommend(0, event.peak, k=5)
    print(f"\ntop-5 for user 0 during the '{event.name}' burst:")
    for rec in result.recommendations:
        print(f"  {cuboid.item_index.label_of(rec.item)}")


if __name__ == "__main__":
    main()
