"""Social influence: the paper's first future-work direction, end to end.

"We would like to explore enhancements to our models by exploiting the
effect of user social network on user rating behaviors" — this example
does that on a synthetic social platform:

1. build a homophilous small-world friendship graph over the users,
2. inject friend-imitation behaviors into the rating log,
3. fit the three-way Social-TTCAM (interest / social / context) and read
   off the learned per-user influence decomposition,
4. show that the social component is only credited when the data
   actually contains imitation.

Run with::

    python examples/social_influence.py
"""

import numpy as np

from repro.data import generate, profile
from repro.extensions import SocialTTCAM, add_social_ratings, build_homophilous_graph


def main() -> None:
    cuboid, truth = generate(profile("delicious", scale=0.3))
    print(f"platform: {cuboid}")

    # 1. A friendship graph where similar-taste users connect.
    graph = build_homophilous_graph(truth.theta, avg_degree=8, homophily=0.8, seed=1)
    degrees = [d for _n, d in graph.degree()]
    print(
        f"social graph: {graph.number_of_nodes()} users, "
        f"{graph.number_of_edges()} edges, mean degree {np.mean(degrees):.1f}"
    )

    # 2. Inject imitation: users re-tag what their friends like.
    social_cuboid = add_social_ratings(cuboid, truth, graph, imitation_rate=0.5, seed=2)
    print(
        f"imitation behaviors injected: {cuboid.nnz} → {social_cuboid.nnz} entries\n"
    )

    # 3. Fit the three-way mixture on both versions of the data.
    def fit(data):
        return SocialTTCAM(
            graph, num_user_topics=9, num_time_topics=10, max_iter=40, seed=0
        ).fit(data)

    asocial_model = fit(cuboid)
    social_model = fit(social_cuboid)

    def describe(name, model):
        influence = model.influence_.mean(axis=0)
        print(
            f"{name:28s} interest {influence[0]:.2f}  "
            f"social {influence[1]:.2f}  context {influence[2]:.2f}"
        )

    print("learned mean influence decomposition:")
    describe("without imitation data", asocial_model)
    describe("with imitation data", social_model)
    gain = social_model.influence_[:, 1].mean() - asocial_model.influence_[:, 1].mean()
    print(
        f"\n→ the model credits the social channel only when imitation exists "
        f"(social weight +{gain:.2f})"
    )

    # 4. Recommendations still serve through the standard engines.
    from repro.recommend import TemporalRecommender

    recommender = TemporalRecommender(social_model, method="ta")
    result = recommender.recommend(user=5, interval=14, k=5)
    labels = [str(cuboid.item_index.label_of(v)) for v in result.items]
    print(f"\ntop-5 for user 5 (interest + friends + current events): {labels}")


if __name__ == "__main__":
    main()
