"""Online folding-in: cold-start users and newly arrived time intervals.

A production recommender cannot re-run EM whenever a user signs up or a
new day of data arrives. This example exercises the online extension
(:mod:`repro.extensions.online`) plus the background-noise extension —
both future-work items from the paper's Section 6:

1. fit a base TTCAM model on history,
2. fold in a brand-new user from a handful of ratings and recommend,
3. fold in a brand-new time interval and extend the model,
4. compare against the background-smoothed variant on noisy data.

Run with::

    python examples/online_updates.py
"""

import numpy as np

from repro import BackgroundTTCAM, OnlineTTCAM, TTCAM, TemporalRecommender
from repro.data import generate, holdout_split, profile
from repro.data.synthetic import sample_rows
from repro.evaluation import build_queries, evaluate_ranking


def main() -> None:
    cuboid, truth = generate(profile("digg", scale=0.35))
    print(f"history: {cuboid}\n")

    base = TTCAM(8, 10, max_iter=50, seed=0).fit(cuboid)
    online = OnlineTTCAM(base, fold_iterations=20)

    # --- 1. cold-start user -------------------------------------------------
    # Simulate a new user from the generator: strong interest in topic 0.
    rng = np.random.default_rng(42)
    new_theta = np.zeros(truth.phi.shape[0])
    new_theta[0] = 0.8
    new_theta[1] = 0.2
    items = sample_rows(truth.phi, sample_rows(new_theta[None, :], np.zeros(12, dtype=np.int64), rng), rng)
    intervals = rng.integers(0, cuboid.num_intervals, size=12)

    theta_u, lam = online.fold_in_user(items, intervals)
    print("cold-start user folded in from 12 ratings:")
    print(f"  estimated λ = {lam:.2f}")
    print(f"  interest concentrated on fitted topics: {np.argsort(-theta_u)[:3].tolist()}")

    scores = online.score_new_user(items, intervals, query_interval=20)
    top = np.argsort(-scores)[:5]
    print("  top-5 recommendations:", [
        str(cuboid.item_index.label_of(int(v))) for v in top
    ])

    # --- 2. new interval ----------------------------------------------------
    before = online.params.num_intervals
    rows = cuboid.entries_of_interval(cuboid.num_intervals - 1)
    online.extend_with_interval(
        cuboid.users[rows], cuboid.items[rows], cuboid.scores[rows]
    )
    print(
        f"\nnew interval folded in: model now covers {online.params.num_intervals} "
        f"intervals (was {before})"
    )
    recommender = TemporalRecommender(base)
    result = recommender.recommend(0, before - 1, k=3)
    print(f"  serving continues: top-3 for user 0 = {result.items}")

    # --- 3. background-noise filtering --------------------------------------
    split = holdout_split(cuboid, seed=1)
    queries = build_queries(split, max_queries=200, seed=1)
    plain = TTCAM(8, 10, max_iter=50, seed=0).fit(split.train)
    smoothed = BackgroundTTCAM(8, 10, background_weight=0.1, max_iter=50, seed=0).fit(
        split.train
    )
    r_plain = evaluate_ranking(plain, queries, ks=(5,), metrics=("ndcg",))
    r_smoothed = evaluate_ranking(smoothed, queries, ks=(5,), metrics=("ndcg",))
    print(
        f"\nbackground extension on noisy data: NDCG@5 "
        f"plain {r_plain.at('ndcg', 5):.3f} vs background-smoothed "
        f"{r_smoothed.at('ndcg', 5):.3f}"
    )


if __name__ == "__main__":
    main()
