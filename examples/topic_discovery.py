"""Topic discovery on a tagging platform: events, bursts and weighting.

Reproduces the paper's qualitative analyses (Section 5.5) on the
Delicious-like substitute:

1. detect time-oriented topics and locate the "michaeljackson" and
   "swineflu" events among them,
2. contrast bursty event tags with evergreen popular tags (Figure 5),
3. plot (as text) a time-oriented topic's attention spike vs a stable
   user-oriented topic (Figure 2),
4. show what the item-weighting scheme changes.

Run with::

    python examples/topic_discovery.py
"""

import numpy as np

from repro import TTCAM
from repro.analysis.bursts import item_profile, top_popular_items
from repro.analysis.topics import (
    spikiness,
    summarize_topic,
    topic_purity,
    topic_temporal_profile,
)
from repro.data import generate, profile


def sparkline(values: np.ndarray, width: int = 44) -> str:
    """Render a curve as a text sparkline."""
    blocks = " .:-=+*#%@"
    resampled = np.interp(
        np.linspace(0, len(values) - 1, width), np.arange(len(values)), values
    )
    peak = resampled.max() or 1.0
    return "".join(blocks[int(v / peak * (len(blocks) - 1))] for v in resampled)


def main() -> None:
    cuboid, truth = generate(profile("delicious", scale=0.5))
    labels = truth.item_labels
    print(f"tagging platform: {cuboid}\n")

    model = TTCAM(9, 10, max_iter=60, weighted=True, seed=0).fit(cuboid)
    params = model.params_

    # --- locate the named events among the fitted time topics -------------
    print("named events located in fitted time-oriented topics:")
    for event_name in ("michaeljackson", "swineflu"):
        dedicated = truth.event_items[event_name]
        purities = [
            topic_purity(params.phi_time[x], dedicated)
            for x in range(params.num_time_topics)
        ]
        best = int(np.argmax(purities))
        summary = summarize_topic(
            params.phi_time[best], best, "time", k=6, labels=labels
        )
        print(f"  {event_name}: topic {best} (mass {purities[best]:.2f})")
        print(f"    {', '.join(summary.labels)}")

    # --- Figure 2: spike vs stable -----------------------------------------
    mj = truth.event_items["michaeljackson"]
    purities = [
        topic_purity(params.phi_time[x], mj) for x in range(params.num_time_topics)
    ]
    event_topic = int(np.argmax(purities))
    event_curve = topic_temporal_profile(cuboid, params.phi_time[event_topic])
    user_curves = [
        topic_temporal_profile(cuboid, params.phi[z])
        for z in range(params.num_user_topics)
    ]
    stable_topic = int(np.argmin([spikiness(c) for c in user_curves]))
    print("\ntemporal profiles (Figure 2):")
    print(f"  time-topic  {sparkline(event_curve)}  spikiness {spikiness(event_curve):.1f}")
    print(
        f"  user-topic  {sparkline(user_curves[stable_topic])}"
        f"  spikiness {spikiness(user_curves[stable_topic]):.1f}"
    )

    # --- Figure 5: bursty vs popular tags ----------------------------------
    print("\nbursty event tags vs evergreen popular tags (Figure 5):")
    for v in truth.event_items["swineflu"][:3]:
        prof = item_profile(cuboid, int(v))
        print(f"  {prof.label:26s} {sparkline(prof.frequency)}  burst {prof.burstiness:5.1f}")
    for prof in top_popular_items(cuboid, k=3):
        print(f"  {prof.label:26s} {sparkline(prof.frequency)}  burst {prof.burstiness:5.1f}")

    # --- weighting effect ----------------------------------------------------
    plain = TTCAM(9, 10, max_iter=60, weighted=False, seed=0).fit(cuboid)
    head = set(np.argsort(-cuboid.item_popularity())[:20].tolist())

    def contamination(m):
        count = 0
        for x in range(m.params_.num_time_topics):
            order = np.argsort(-m.params_.phi_time[x])[:8]
            count += sum(1 for v in order if int(v) in head)
        return count

    print(
        f"\npopular tags inside time-topic top-8s: "
        f"unweighted {contamination(plain)}, weighted {contamination(model)} "
        "(the item-weighting scheme demotes the popularity head)"
    )


if __name__ == "__main__":
    main()
