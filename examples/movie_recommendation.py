"""Movie recommendation: a taste-driven platform end to end.

The mirror image of the news example: "when choosing a book to read or
a movie to watch, the users are likely to prefer [items] that interest
them". On the MovieLens-like substitute this example shows:

1. interest beating context (UT > TT — the paper's Figure 7 contrast),
2. TCAM matching the best of both by learning high λ_u per user,
3. per-user inspection: what the model believes one user's tastes are.

Run with::

    python examples/movie_recommendation.py
"""

import numpy as np

from repro import TTCAM, TemporalRecommender, TimeTopicModel, UserTopicModel
from repro.analysis.influence import fraction_above
from repro.analysis.topics import top_items
from repro.data import generate, holdout_split, profile
from repro.evaluation import build_queries, evaluate_ranking


def main() -> None:
    cuboid, truth = generate(profile("movielens", scale=0.5))
    split = holdout_split(cuboid, seed=0)
    queries = build_queries(split, max_queries=250, seed=0)
    print(f"movie platform: {cuboid} (explicit 1-5 star ratings)\n")

    models = {
        "UT (interest only)": UserTopicModel(num_topics=10, max_iter=100, seed=0),
        "TT (context only)": TimeTopicModel(num_topics=6, max_iter=100, seed=0),
        "TTCAM": TTCAM(10, 6, max_iter=100, seed=0),
    }
    print("held-out temporal accuracy (NDCG@5):")
    fitted = {}
    for name, model in models.items():
        model.fit(split.train)
        fitted[name] = model
        report = evaluate_ranking(model, queries, ks=(5,), metrics=("ndcg",))
        print(f"  {name:22s} {report.at('ndcg', 5):.3f}")
    print(
        "\n→ tastes dominate on movies: UT beats TT here, the opposite of"
        "\n  the news platform (the paper's Figure 6 vs Figure 7 contrast)."
    )

    tcam = fitted["TTCAM"]
    lam = tcam.params_.lambda_u
    print(
        f"\nlearned λ: mean {lam.mean():.2f}; "
        f"{fraction_above(lam, 0.5):.0%} of users interest-dominant "
        "(paper's Figure 10)"
    )

    # --- one user's taste profile -----------------------------------------
    user = int(np.argmax(split.train.user_activity()))
    theta = tcam.params_.theta[user]
    print(f"\nuser {user}'s interest distribution over user-oriented topics:")
    for z in np.argsort(-theta)[:3]:
        movies = top_items(
            tcam.params_.phi[z], k=4, labels=truth.item_labels
        )
        names = ", ".join(label for _v, label, _p in movies)
        print(f"  topic {z} (weight {theta[z]:.2f}): {names}")

    recommender = TemporalRecommender(tcam)
    result = recommender.recommend(user, interval=18, k=5)
    print(f"\ntop-5 recommendations for user {user} (interval 18):")
    for rec in result.recommendations:
        print(f"  {cuboid.item_index.label_of(rec.item)}  ({rec.score:.4f})")


if __name__ == "__main__":
    main()
