"""Real-data workflow: from a raw ratings export to a served model.

The evaluation in this repository runs on synthetic substitutes, but the
library is designed to be pointed at real exports. This example walks
the production path end to end on a MovieLens-format file (fabricated
here so the example is self-contained; substitute your own
``ratings.dat`` path):

1. load ``user::item::rating::timestamp`` lines with a chosen interval
   granularity,
2. apply the standard minimum-activity filtering,
3. fit W-TTCAM and snapshot it to disk,
4. reload the snapshot and serve temporal top-k from it.

Run with::

    python examples/real_data_workflow.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import TTCAM, LoadedModel, save_params
from repro.data import filter_min_activity, load_movielens_dat
from repro.recommend import TemporalRecommender

DAY = 86_400.0


def fabricate_ratings_dat(path: Path, rng: np.random.Generator) -> None:
    """Write a small MovieLens-style file with genre structure.

    200 users in two taste groups, 120 movies in two genre blocks, 18
    months of timestamps; a release wave hits block B around month 12.
    """
    lines = []
    for user in range(200):
        group = user % 2
        pool = range(60) if group == 0 else range(60, 120)
        n_ratings = rng.integers(15, 40)
        for _ in range(n_ratings):
            if rng.random() < 0.15:  # everyone samples the release wave
                item = int(rng.integers(100, 120))
                ts = (12 * 30 + rng.normal(0, 20)) * DAY
            else:
                item = int(rng.choice(list(pool)))
                ts = rng.uniform(0, 540) * DAY
            stars = int(np.clip(round(rng.normal(4 - 0.5 * group * 0, 0.8)), 1, 5))
            lines.append(f"{user}::{item}::{stars}::{max(ts, 0):.0f}")
    path.write_text("\n".join(lines))


def main() -> None:
    rng = np.random.default_rng(7)
    with tempfile.TemporaryDirectory() as tmp:
        dat_path = Path(tmp) / "ratings.dat"
        fabricate_ratings_dat(dat_path, rng)
        print(f"raw export: {dat_path} ({len(dat_path.read_text().splitlines())} lines)")

        # 1. Load at monthly granularity (the paper's MovieLens setting).
        cuboid = load_movielens_dat(dat_path, interval_days=30.0)
        print(f"loaded: {cuboid}")

        # 2. Standard preprocessing: drop barely-rated items and inactive
        #    users (the paper keeps MovieLens users with ≥20 ratings).
        filtered = filter_min_activity(cuboid, min_user_ratings=10, min_item_users=3)
        print(f"after filtering: {filtered.nnz} ratings retained")

        # 3. Fit and snapshot.
        model = TTCAM(num_user_topics=6, num_time_topics=4, max_iter=60, seed=0)
        model.fit(filtered)
        print(
            f"fitted in {model.trace_.iterations} EM iterations; "
            f"mean λ = {model.params_.lambda_u.mean():.2f}"
        )
        snapshot = save_params(model.params_, Path(tmp) / "movielens-model.npz")
        print(f"snapshot: {snapshot}")

        # 4. Serve from the snapshot (a different process would do this).
        serving = LoadedModel.from_file(snapshot)
        recommender = TemporalRecommender(serving, method="batched-ta")
        user = 0
        result = recommender.recommend(user, interval=12, k=5)
        labels = [int(cuboid.item_index.label_of(v)) for v in result.items]
        print(f"top-5 for user {user} at the release wave: movies {labels}")
        # The taste groups should be visible: user 0 is in group A
        # (movies 0-59) plus the shared release wave (movies 100-119).
        in_pool = sum(1 for m in labels if m < 60 or m >= 100)
        print(f"({in_pool}/5 recommendations from the user's own taste pool + wave)")


if __name__ == "__main__":
    main()
