"""Tests for the model report card."""

import numpy as np
import pytest

from repro.analysis.report import model_report, sparkline
from repro.core import TTCAM
import tests.conftest as c


@pytest.fixture(scope="module")
def fitted():
    cuboid, truth = c.generate(c.tiny_config())
    model = TTCAM(4, 3, max_iter=25, seed=0).fit(cuboid)
    return model, cuboid


class TestSparkline:
    def test_fixed_width(self):
        assert len(sparkline(np.arange(100), width=20)) == 20
        assert len(sparkline(np.arange(3), width=20)) == 20

    def test_flat_zero_curve(self):
        assert sparkline(np.zeros(10), width=8) == " " * 8

    def test_peak_gets_heaviest_block(self):
        curve = np.zeros(16)
        curve[8] = 1.0
        line = sparkline(curve, width=16)
        assert "@" in line

    def test_empty(self):
        assert sparkline(np.array([])) == ""


class TestModelReport:
    def test_contains_all_sections(self, fitted):
        model, cuboid = fitted
        text = model_report(model.params_, cuboid)
        assert "TCAM model report" in text
        assert "influence:" in text
        assert "user-oriented topics" in text
        assert "time-oriented topics" in text
        assert "separation:" in text

    def test_uses_item_labels(self, fitted):
        model, cuboid = fitted
        text = model_report(model.params_, cuboid)
        assert "item_" in text  # tiny profile's item prefix

    def test_max_topics_caps_output(self, fitted):
        model, cuboid = fitted
        short = model_report(model.params_, cuboid, max_topics=1)
        full = model_report(model.params_, cuboid)
        assert len(short) < len(full)

    def test_platform_characterisation(self, fitted):
        model, cuboid = fitted
        text = model_report(model.params_, cuboid)
        assert "platform character" in text

    def test_dimension_mismatch_rejected(self, fitted):
        model, _ = fitted
        other, _ = c.generate(c.tiny_config(num_items=50, seed=99))
        with pytest.raises(ValueError):
            model_report(model.params_, other)


class TestReportCLI:
    def test_end_to_end(self, fitted, tmp_path, capsys):
        from repro.cli import main
        from repro.core import save_params
        from repro.data import save_cuboid_csv

        model, cuboid = fitted
        csv_path = tmp_path / "data.csv"
        save_cuboid_csv(cuboid, csv_path)
        snap = save_params(model.params_, tmp_path / "m.npz")
        code = main(
            ["report", "--model", str(snap), "--input", str(csv_path), "--max-topics", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TCAM model report" in out
