"""Tests for burst analysis."""

import numpy as np
import pytest

from repro.analysis.bursts import (
    burstiness,
    item_frequency_curve,
    item_profile,
    top_bursty_items,
    top_popular_items,
)
from repro.data.cuboid import RatingCuboid


@pytest.fixture
def burst_cuboid():
    # Item 0: steady (1/interval, 4 intervals); item 1: burst at t=2 (4 hits).
    users = [0, 1, 2, 3, 4, 5, 6, 7]
    intervals = [0, 1, 2, 3, 2, 2, 2, 2]
    items = [0, 0, 0, 0, 1, 1, 1, 1]
    return RatingCuboid.from_arrays(users, intervals, items)


class TestFrequencyCurve:
    def test_curve_values(self, burst_cuboid):
        steady = item_frequency_curve(burst_cuboid, 0)
        assert steady.tolist() == [1.0, 1.0, 1.0, 1.0]
        bursty = item_frequency_curve(burst_cuboid, 1)
        assert bursty.tolist() == [0.0, 0.0, 4.0, 0.0]

    def test_out_of_range(self, burst_cuboid):
        with pytest.raises(IndexError):
            item_frequency_curve(burst_cuboid, 99)


class TestBurstiness:
    def test_flat_curve(self):
        assert burstiness(np.ones(8)) == pytest.approx(1.0)

    def test_spike(self, burst_cuboid):
        assert burstiness(item_frequency_curve(burst_cuboid, 1)) == pytest.approx(4.0)

    def test_zero_curve(self):
        assert burstiness(np.zeros(5)) == 0.0


class TestItemProfile:
    def test_profile_normalised_to_peak(self, burst_cuboid):
        profile = item_profile(burst_cuboid, 1)
        assert profile.frequency.max() == pytest.approx(1.0)
        assert profile.burstiness == pytest.approx(4.0)
        assert profile.total_popularity == pytest.approx(4.0)

    def test_label_fallback_without_indexer(self, burst_cuboid):
        assert item_profile(burst_cuboid, 0).label == "0"


class TestTopLists:
    def test_bursty_ranked_first(self, burst_cuboid):
        profiles = top_bursty_items(burst_cuboid, k=2, min_popularity=1.0)
        assert profiles[0].item == 1

    def test_min_popularity_filters(self, burst_cuboid):
        profiles = top_bursty_items(burst_cuboid, k=5, min_popularity=100.0)
        assert profiles == []

    def test_popular_ranked_by_mass(self, burst_cuboid):
        profiles = top_popular_items(burst_cuboid, k=2)
        assert {p.item for p in profiles} == {0, 1}

    def test_invalid_k(self, burst_cuboid):
        with pytest.raises(ValueError):
            top_bursty_items(burst_cuboid, k=0)
        with pytest.raises(ValueError):
            top_popular_items(burst_cuboid, k=0)

    def test_event_items_detected_in_synthetic_data(self, tiny_cuboid):
        """Generator's dedicated event items appear among the bursty tops."""
        cuboid, truth = tiny_cuboid
        bursty = {p.item for p in top_bursty_items(cuboid, k=15)}
        dedicated = {int(v) for ids in truth.event_items.values() for v in ids}
        assert bursty & dedicated
