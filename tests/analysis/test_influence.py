"""Tests for the influence (λ) distribution analysis."""

import numpy as np
import pytest

from repro.analysis.influence import (
    context_influence_cdf,
    fraction_above,
    influence_cdf,
    summarize_influence,
)


class TestInfluenceCDF:
    def test_cdf_monotone_and_bounded(self, rng):
        lam = rng.beta(2, 3, size=500)
        grid, cdf = influence_cdf(lam)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[0] <= cdf[-1] == 1.0
        assert np.all((cdf >= 0) & (cdf <= 1))

    def test_cdf_exact_small_case(self):
        lam = np.array([0.2, 0.4, 0.8])
        grid, cdf = influence_cdf(lam, grid=np.array([0.0, 0.3, 0.5, 1.0]))
        np.testing.assert_allclose(cdf, [0.0, 1 / 3, 2 / 3, 1.0])

    def test_context_cdf_is_mirrored(self):
        lam = np.array([0.2, 0.8])
        grid = np.linspace(0, 1, 11)
        _, interest = influence_cdf(lam, grid)
        _, context = context_influence_cdf(lam, grid)
        # Context influence of λ=0.2 is 0.8 and vice versa.
        np.testing.assert_allclose(context, influence_cdf(np.array([0.8, 0.2]), grid)[1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            influence_cdf(np.array([]))


class TestFractionAbove:
    def test_exact(self):
        lam = np.array([0.1, 0.5, 0.9])
        assert fraction_above(lam, 0.45) == pytest.approx(2 / 3)
        assert fraction_above(lam, 0.95) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fraction_above(np.array([]), 0.5)


class TestSummary:
    def test_fields(self):
        lam = np.array([0.2, 0.4, 0.9, 0.95])
        summary = summarize_influence(lam)
        assert summary.mean_interest == pytest.approx(lam.mean())
        assert summary.median_interest == pytest.approx(np.median(lam))
        assert summary.fraction_interest_dominant == pytest.approx(0.5)
        assert summary.fraction_context_dominant == pytest.approx(0.5)
        assert "mean λ" in str(summary)

    def test_platform_contrast(self, rng):
        """News-like λ distributions summarise as context-dominant."""
        news = summarize_influence(rng.beta(2, 5, 400))
        movies = summarize_influence(rng.beta(8, 2, 400))
        assert news.fraction_context_dominant > 0.5
        assert movies.fraction_interest_dominant > 0.5
