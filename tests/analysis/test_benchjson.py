"""Tests for the BENCH_*.json trajectory writer."""

import json

import pytest

from repro.analysis.benchjson import (
    BenchEntry,
    append_entries,
    default_context,
    latest,
    load_entries,
)


def _entry(name="em/test", value=1.0, **params):
    return BenchEntry(name=name, value=value, unit="ratings/sec", params=params)


class TestRoundTrip:
    def test_missing_file_is_empty_trajectory(self, tmp_path):
        assert load_entries(tmp_path / "BENCH_x.json") == []

    def test_append_then_load(self, tmp_path):
        path = tmp_path / "BENCH_em.json"
        append_entries(path, _entry(value=10.0, threads=1))
        trajectory = append_entries(path, [_entry(value=20.0, threads=2)])
        assert [e.value for e in trajectory] == [10.0, 20.0]
        loaded = load_entries(path)
        assert [e.value for e in loaded] == [10.0, 20.0]
        assert loaded[1].params == {"threads": 2}

    def test_file_is_a_json_array(self, tmp_path):
        path = tmp_path / "BENCH_em.json"
        append_entries(path, _entry())
        raw = json.loads(path.read_text())
        assert isinstance(raw, list)
        assert raw[0]["name"] == "em/test"
        assert raw[0]["unit"] == "ratings/sec"

    def test_append_preserves_existing_entries(self, tmp_path):
        path = tmp_path / "BENCH_em.json"
        for i in range(3):
            append_entries(path, _entry(value=float(i)))
        assert [e.value for e in load_entries(path)] == [0.0, 1.0, 2.0]

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "BENCH_em.json"
        append_entries(path, _entry())
        assert list(tmp_path.iterdir()) == [path]


class TestValidation:
    def test_missing_required_keys_rejected(self):
        with pytest.raises(ValueError, match="missing required keys"):
            BenchEntry.from_dict({"name": "x", "value": 1.0})

    def test_non_array_file_rejected(self, tmp_path):
        path = tmp_path / "BENCH_em.json"
        path.write_text('{"name": "x"}')
        with pytest.raises(ValueError, match="JSON array"):
            load_entries(path)

    def test_from_dict_coerces_types(self):
        entry = BenchEntry.from_dict({"name": "x", "value": "3.5", "unit": "qps"})
        assert entry.value == 3.5
        assert entry.params == {}


class TestLatest:
    def test_returns_most_recent_of_series(self, tmp_path):
        path = tmp_path / "BENCH_em.json"
        append_entries(path, [_entry(name="a", value=1.0), _entry(name="b", value=2.0)])
        append_entries(path, _entry(name="a", value=3.0))
        trajectory = load_entries(path)
        assert latest(trajectory, "a").value == 3.0
        assert latest(trajectory, "b").value == 2.0
        assert latest(trajectory, "missing") is None


class TestDefaultContext:
    def test_records_comparability_fields(self):
        context = default_context()
        assert context["cpu_count"] >= 1
        assert "numpy" in context
        assert "python" in context
        assert context["timestamp"].endswith("+00:00")

    def test_peak_rss_recorded_on_posix(self):
        from repro.analysis.benchjson import peak_rss_bytes

        peak = peak_rss_bytes()
        assert peak is not None  # POSIX CI: resource is available
        # A running CPython interpreter holds at least a few MiB and
        # (sanely) under a TiB; the bound catches unit mix-ups between
        # kibibytes (Linux ru_maxrss) and bytes (macOS).
        assert 4 * 2**20 < peak < 2**40
        assert default_context()["peak_rss_bytes"] >= peak
