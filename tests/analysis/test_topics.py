"""Tests for topic analysis utilities."""

import numpy as np
import pytest

from repro.analysis.topics import (
    match_topics,
    spikiness,
    summarize_topic,
    time_topic_attention,
    top_items,
    topic_purity,
    topic_temporal_profile,
)


class TestTopItems:
    def test_orders_by_probability(self):
        dist = np.array([0.1, 0.5, 0.4])
        triples = top_items(dist, k=2)
        assert [t[0] for t in triples] == [1, 2]
        assert triples[0][2] == pytest.approx(0.5)

    def test_labels_applied(self):
        dist = np.array([0.2, 0.8])
        triples = top_items(dist, k=1, labels=["cat", "dog"])
        assert triples[0][1] == "dog"

    def test_ties_break_to_smaller_id(self):
        dist = np.array([0.5, 0.5])
        assert top_items(dist, k=2)[0][0] == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            top_items(np.array([1.0]), k=0)


class TestSummarizeTopic:
    def test_summary_fields(self):
        dist = np.array([0.7, 0.2, 0.1])
        summary = summarize_topic(dist, topic=3, kind="time", k=2, labels=["a", "b", "c"])
        assert summary.topic == 3
        assert summary.kind == "time"
        assert summary.labels == ["a", "b"]
        assert "time-topic 3" in str(summary)


class TestTemporalProfiles:
    def test_profile_normalised(self, tiny_cuboid):
        cuboid, truth = tiny_cuboid
        profile = topic_temporal_profile(cuboid, truth.phi_events[0])
        assert profile.shape == (cuboid.num_intervals,)
        assert profile.sum() == pytest.approx(1.0)

    def test_event_topic_spikier_than_user_topic(self, tiny_cuboid):
        """The Figure 2 contrast: time-oriented topics spike, user-oriented
        topics stay flat."""
        cuboid, truth = tiny_cuboid
        event_spike = spikiness(topic_temporal_profile(cuboid, truth.phi_events[0]))
        user_spikes = [
            spikiness(topic_temporal_profile(cuboid, truth.phi[z]))
            for z in range(truth.phi.shape[0])
        ]
        assert event_spike > np.mean(user_spikes)

    def test_time_topic_attention(self):
        theta_time = np.array([[0.9, 0.1], [0.2, 0.8]])
        curve = time_topic_attention(theta_time, 0)
        assert curve.tolist() == [0.9, 0.2]
        with pytest.raises(IndexError):
            time_topic_attention(theta_time, 5)

    def test_spikiness_flat_is_one(self):
        assert spikiness(np.ones(10)) == pytest.approx(1.0)

    def test_spikiness_of_delta_is_t(self):
        curve = np.zeros(10)
        curve[3] = 1.0
        assert spikiness(curve) == pytest.approx(10.0)

    def test_spikiness_of_zeros(self):
        assert spikiness(np.zeros(5)) == 0.0


class TestMatchTopics:
    def test_identity_matching(self, rng):
        topics = rng.dirichlet(np.ones(20) * 0.1, size=5)
        assignment, similarity = match_topics(topics, topics)
        assert assignment.tolist() == [0, 1, 2, 3, 4]
        np.testing.assert_allclose(similarity, 1.0)

    def test_permuted_matching(self, rng):
        topics = rng.dirichlet(np.ones(20) * 0.1, size=5)
        perm = [3, 1, 4, 0, 2]
        assignment, _ = match_topics(topics[perm], topics)
        assert assignment.tolist() == perm

    def test_one_to_one(self, rng):
        est = rng.dirichlet(np.ones(10), size=6)
        ref = rng.dirichlet(np.ones(10), size=3)
        assignment, _ = match_topics(est, ref)
        matched = assignment[assignment >= 0]
        assert len(np.unique(matched)) == len(matched)
        assert (assignment == -1).sum() == 3

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValueError):
            match_topics(np.ones((2, 3)) / 3, np.ones((2, 4)) / 4)


class TestTopicPurity:
    def test_counts_member_mass(self):
        dist = np.array([0.5, 0.3, 0.2])
        assert topic_purity(dist, np.array([0, 2])) == pytest.approx(0.7)

    def test_empty_members(self):
        assert topic_purity(np.array([1.0]), np.array([], dtype=int)) == 0.0
