"""End-to-end serving service: bitwise parity, routing, hot swap, drain."""

from __future__ import annotations

import asyncio
import multiprocessing as mp
import time

import numpy as np
import pytest

from repro.core.serialize import LoadedModel, load_params
from repro.recommend.recommender import TemporalRecommender
from repro.serving_service import ServiceClient, ServiceConfig, ServiceError

from .conftest import NUM_INTERVALS, NUM_USERS, dirichlet_params, running_service

pytestmark = pytest.mark.service


def _config(snapshot_path, tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        snapshot=str(snapshot_path),
        workers=2,
        max_batch=16,
        batch_deadline_s=0.005,
        generation_file=str(tmp_path / "generation.json"),
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestReadPath:
    @pytest.fixture(scope="class")
    def service(self, snapshot_path, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("read-path")
        with running_service(_config(snapshot_path, tmp)) as service:
            yield service

    def test_responses_are_bitwise_identical_to_direct_batch(
        self, service, service_params
    ):
        rng = np.random.default_rng(3)
        queries = [
            (int(u), int(t))
            for u, t in zip(
                rng.integers(0, NUM_USERS, 24), rng.integers(0, NUM_INTERVALS, 24)
            )
        ]
        direct = TemporalRecommender(LoadedModel(service_params)).recommend_batch(
            queries, k=7
        )
        with ServiceClient("127.0.0.1", service.port) as client:
            reply = client.recommend(queries, k=7)
        assert len(reply["results"]) == len(queries)
        for row, expected in zip(reply["results"], direct):
            assert row["items"] == [int(i) for i in expected.items]
            assert [float(s).hex() for s in row["scores"]] == [
                float(s).hex() for s in expected.scores
            ]

    def test_queries_route_to_the_user_shard(self, service):
        queries = [(user, 0) for user in range(8)]
        with ServiceClient("127.0.0.1", service.port) as client:
            reply = client.recommend(queries, k=3)
        assert reply["worker"] == [user % 2 for user in range(8)]

    def test_status_reports_every_worker(self, service):
        with ServiceClient("127.0.0.1", service.port) as client:
            status = client.status()
        assert not status["draining"]
        workers = {entry["worker"] for entry in status["workers"]}
        assert workers == {0, 1}
        for entry in status["workers"]:
            assert entry["generation"] == 0
            assert entry["shared"] is True  # no sidecar -> shared segment
            assert entry["rss_bytes"] is None or entry["rss_bytes"] > 0

    def test_malformed_requests_get_structured_errors(self, service):
        with ServiceClient("127.0.0.1", service.port) as client:
            with pytest.raises(ServiceError, match="non-empty"):
                client.request({"queries": []})
            with pytest.raises(ServiceError, match="pairs"):
                client.request({"queries": ["nope"]})
            with pytest.raises(ServiceError, match="k must be positive"):
                client.request({"queries": [[0, 0]], "k": 0})
            with pytest.raises(ServiceError, match="unknown op"):
                client.request({"op": "frobnicate"})
            # the connection survives every error above
            assert client.recommend([(1, 1)], k=2)["results"]


# ---------------------------------------------------------------------------
# Hot swap under load with concurrent client processes (the ISSUE scenario)
# ---------------------------------------------------------------------------


def _client_burst(host, port, seed, rounds, ready, results):
    """Spawned client process: a burst of recommend requests.

    Reports ``(worker, generation)`` per row of every response so the
    parent can check tearing and monotonicity; any error string aborts
    the burst and is reported instead.
    """
    rng = np.random.default_rng(seed)
    observed = []
    try:
        with ServiceClient(host, port, timeout=120) as client:
            ready.put(seed)
            for _ in range(rounds):
                queries = [
                    (int(u), int(t))
                    for u, t in zip(
                        rng.integers(0, NUM_USERS, 6),
                        rng.integers(0, NUM_INTERVALS, 6),
                    )
                ]
                reply = client.recommend(queries, k=4)
                assert all(row is not None for row in reply["results"])
                observed.append(
                    list(zip(reply["worker"], reply["generation"]))
                )
    except Exception as exc:  # noqa: BLE001 - shipped to the parent
        results.put({"seed": seed, "error": f"{type(exc).__name__}: {exc}"})
        return
    results.put({"seed": seed, "error": None, "responses": observed})


class TestHotSwap:
    def test_fleet_swap_under_concurrent_client_processes(
        self, snapshot_path, candidate_path, service_params, tmp_path
    ):
        clients, rounds = 3, 30
        ctx = mp.get_context("spawn")
        ready: mp.SimpleQueue = ctx.SimpleQueue()
        results: mp.SimpleQueue = ctx.SimpleQueue()
        with running_service(_config(snapshot_path, tmp_path)) as service:
            procs = [
                ctx.Process(
                    target=_client_burst,
                    args=("127.0.0.1", service.port, seed, rounds, ready, results),
                )
                for seed in range(clients)
            ]
            for proc in procs:
                proc.start()
            for _ in procs:
                ready.get()  # all clients connected and bursting
            time.sleep(0.05)  # let the burst overlap the swap
            with ServiceClient("127.0.0.1", service.port, timeout=120) as control:
                swap = control.publish(str(candidate_path))
                reports = [results.get() for _ in procs]
                for proc in procs:
                    proc.join(timeout=120)
                status = control.status()
                # post-swap responses are bitwise the candidate snapshot
                queries = [(u, u % NUM_INTERVALS) for u in range(10)]
                after = control.recommend(queries, k=5)

        assert swap["published"] is True
        assert swap["rejected"] == {}
        assert all(generation >= 1 for generation in swap["generation"])

        # zero dropped queries: every client completed every round
        assert [report["error"] for report in reports] == [None] * clients
        for report in reports:
            assert len(report["responses"]) == rounds
            for response in report["responses"]:
                # no torn batches: rows served by one worker in one
                # response share a single generation
                by_worker: dict[int, set[int]] = {}
                for worker, generation in response:
                    by_worker.setdefault(worker, set()).add(generation)
                for generations in by_worker.values():
                    assert len(generations) == 1
            # generations are monotonic per worker across the burst
            last: dict[int, int] = {}
            for response in report["responses"]:
                for worker, generation in response:
                    assert generation >= last.get(worker, 0)
                    last[worker] = generation

        for entry in status["workers"]:
            assert entry["generation"] >= 1
            assert entry["swaps"] == 1
            assert entry["snapshot"] == str(candidate_path)

        candidate = dirichlet_params(1)
        direct = TemporalRecommender(LoadedModel(candidate)).recommend_batch(
            [(u, u % NUM_INTERVALS) for u in range(10)], k=5
        )
        for row, expected in zip(after["results"], direct):
            assert row["items"] == [int(i) for i in expected.items]
            assert [float(s).hex() for s in row["scores"]] == [
                float(s).hex() for s in expected.scores
            ]
        assert load_params(str(candidate_path)) is not None  # sanity: file intact

    def test_unhealthy_candidate_rolls_back_on_every_worker(
        self, snapshot_path, service_params, tmp_path
    ):
        from repro.core.serialize import save_params

        bad = tmp_path / "bad.npz"
        save_params(dirichlet_params(2), bad)
        bad.write_bytes(bad.read_bytes()[:120])  # torn write: fails the gate
        queries = [(u, 0) for u in range(6)]
        direct = TemporalRecommender(LoadedModel(service_params)).recommend_batch(
            queries, k=4
        )
        with running_service(_config(snapshot_path, tmp_path)) as service:
            with ServiceClient("127.0.0.1", service.port, timeout=120) as client:
                reply = client.publish(str(bad))
                status = client.status()
                after = client.recommend(queries, k=4)
        assert reply["published"] is False
        assert set(reply["rejected"]) == {"0", "1"} or set(reply["rejected"]) == {0, 1}
        assert reply["reverted"] == []  # nobody accepted, nothing to revert
        for entry in status["workers"]:
            # every worker recorded the rollback and kept its generation
            assert entry["rollbacks"] == 1
            assert entry["generation"] == 0
            assert entry["snapshot"] == str(snapshot_path)
        for row, expected in zip(after["results"], direct):
            assert row["items"] == [int(i) for i in expected.items]
            assert [float(s).hex() for s in row["scores"]] == [
                float(s).hex() for s in expected.scores
            ]


class TestDrain:
    def test_drain_refuses_new_requests_and_completes_admitted_ones(
        self, snapshot_path, tmp_path
    ):
        config = _config(
            snapshot_path, tmp_path, workers=1, batch_deadline_s=0.5
        )
        with running_service(config) as service:
            # the running_service loop lives on a background thread; grab it
            # through the server object the service bound
            assert service._server is not None
            service_loop = service._server.get_loop()
            with ServiceClient("127.0.0.1", service.port) as client:
                assert client.recommend([(0, 0)], k=2)["results"]
                # admit one query (it will sit in the 0.5 s micro-batch
                # window), then drain: the admitted query must complete
                admitted = asyncio.run_coroutine_threadsafe(
                    service._dispatch({"id": 99, "queries": [[1, 0]], "k": 2}),
                    service_loop,
                )
                time.sleep(0.05)  # the dispatch passed the admission check
                draining = asyncio.run_coroutine_threadsafe(
                    service.drain(), service_loop
                )
                reply = admitted.result(timeout=60)
                assert "error" not in reply
                assert reply["results"] and reply["results"][0] is not None
                draining.result(timeout=60)
                # the still-open connection is refused while draining
                with pytest.raises(ServiceError, match="draining"):
                    client.recommend([(2, 0)], k=2)
