"""Shared fixtures for the serving-service suite.

The suite spawns real worker processes, so the snapshot fixtures are
session-scoped (one Dirichlet-drawn TTCAM written once) and the running
service is wrapped in a context manager that always drains — a test
that fails must not leak worker processes into the rest of the run.
"""

from __future__ import annotations

import asyncio
import threading
from contextlib import contextmanager
from pathlib import Path

import numpy as np
import pytest

from repro.core.params import TTCAMParameters
from repro.core.serialize import save_params
from repro.serving_service import ServiceConfig, ServingService

NUM_USERS = 60
NUM_ITEMS = 45
NUM_INTERVALS = 6


def dirichlet_params(seed: int = 0) -> TTCAMParameters:
    """A healthy synthetic TTCAM parameter set (fast to draw)."""
    rng = np.random.default_rng(seed)

    def stochastic(rows: int, cols: int) -> np.ndarray:
        return rng.dirichlet(np.ones(cols), size=rows)

    return TTCAMParameters(
        theta=stochastic(NUM_USERS, 4),
        phi=stochastic(4, NUM_ITEMS),
        theta_time=stochastic(NUM_INTERVALS, 3),
        phi_time=stochastic(3, NUM_ITEMS),
        lambda_u=rng.random(NUM_USERS),
    )


@pytest.fixture(scope="session")
def service_params() -> TTCAMParameters:
    return dirichlet_params(0)


@pytest.fixture(scope="session")
def snapshot_path(tmp_path_factory, service_params) -> Path:
    """The session's serving snapshot on disk (eager, no sidecar)."""
    path = tmp_path_factory.mktemp("service") / "snapshot.npz"
    save_params(service_params, str(path))
    return path


@pytest.fixture(scope="session")
def candidate_path(tmp_path_factory) -> Path:
    """A second healthy snapshot (same dimensions) for hot-swap tests."""
    path = tmp_path_factory.mktemp("service-candidate") / "candidate.npz"
    save_params(dirichlet_params(1), str(path))
    return path


@contextmanager
def running_service(config: ServiceConfig):
    """Run a :class:`ServingService` on a background event loop.

    Yields the started service (``service.port`` is bound); always
    drains on exit so failing tests cannot leak worker processes.
    """
    loop = asyncio.new_event_loop()
    thread = threading.Thread(
        target=loop.run_forever, name="service-test-loop", daemon=True
    )
    thread.start()
    service = ServingService(config)
    try:
        asyncio.run_coroutine_threadsafe(service.start(), loop).result(timeout=120)
        yield service
    finally:
        asyncio.run_coroutine_threadsafe(service.drain(), loop).result(timeout=120)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()
