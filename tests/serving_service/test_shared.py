"""Shared derived arrays: pack/attach round-trip and serving equivalence."""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest

from repro.core.serialize import LoadedModel
from repro.recommend.recommender import TemporalRecommender
from repro.serving_service.shared import (
    SharedDerivedStore,
    SharedSnapshot,
    attach_arrays,
    derived_arrays,
    pack_arrays,
)


@pytest.fixture(scope="module")
def shared_snapshot(service_params):
    snapshot = SharedSnapshot(service_params)
    yield snapshot
    snapshot.close()


class TestPackAttach:
    def test_round_trip_is_bitwise(self, service_params):
        arrays = derived_arrays(service_params)
        segment, manifest = pack_arrays(arrays, "ttcam")
        try:
            attached_segment, attached = attach_arrays(manifest)
            try:
                assert set(attached) == set(arrays)
                for name, original in arrays.items():
                    view = attached[name]
                    assert view.dtype == original.dtype
                    assert view.shape == original.shape
                    assert np.asarray(view).tobytes() == np.ascontiguousarray(
                        original
                    ).tobytes()
            finally:
                attached_segment.close()
        finally:
            segment.close()
            segment.unlink()

    def test_derived_context_rows_match_online_expression(self, service_params):
        arrays = derived_arrays(service_params)
        for t in range(service_params.theta_time.shape[0]):
            exact = service_params.theta_time[t] @ service_params.phi_time
            assert arrays["context"][t].tobytes() == exact.tobytes()


class TestSharedDerivedStore:
    def test_accessor_surface_matches_paramstore_semantics(self, shared_snapshot):
        store = SharedDerivedStore.attach(shared_snapshot.manifest)
        try:
            assert store.item_topic("static") is not None
            assert store.item_topic(("interval", 3)) is None
            lists = store.sorted_lists("static")
            assert lists is not None
            assert store.sorted_lists("static") is lists  # memoised
            assert store.quantized_selection("int8") is None
            assert store.context_row(0, "float64") is not None
            assert store.context_row(0, "float32") is not None
            assert store.context_row(999, "float64") is None
            vector = store.context_vector(1)
            assert vector is not None and vector.delta >= 0.0
        finally:
            store.close()

    def test_serving_through_shared_store_is_bitwise_identical(
        self, service_params, shared_snapshot
    ):
        rng = np.random.default_rng(7)
        queries = [
            (int(u), int(t))
            for u, t in zip(
                rng.integers(0, service_params.num_users, 16),
                rng.integers(0, service_params.theta_time.shape[0], 16),
            )
        ]
        plain = TemporalRecommender(LoadedModel(service_params)).recommend_batch(
            queries, k=6
        )
        model = LoadedModel(service_params)
        store = SharedDerivedStore.attach(shared_snapshot.manifest)
        model.param_store = store
        try:
            shared = TemporalRecommender(model).recommend_batch(queries, k=6)
            for a, b in zip(plain, shared):
                assert list(a.items) == list(b.items)
                assert [float(x).hex() for x in a.scores] == [
                    float(x).hex() for x in b.scores
                ]
        finally:
            store.close()


def _child_checksum(manifest, name, queue):
    """Spawned child: attach the segment and report one array's bytes."""
    segment, arrays = attach_arrays(manifest)
    try:
        queue.put(bytes(np.asarray(arrays[name]).tobytes()[:64]))
    finally:
        segment.close()


class TestCrossProcess:
    def test_spawned_child_sees_identical_bytes(self, shared_snapshot, service_params):
        ctx = mp.get_context("spawn")
        queue = ctx.SimpleQueue()
        child = ctx.Process(
            target=_child_checksum,
            args=(shared_snapshot.manifest, "context", queue),
        )
        child.start()
        head = queue.get()
        child.join(timeout=60)
        assert child.exitcode == 0
        expected = derived_arrays(service_params)["context"].tobytes()[:64]
        assert head == expected

    def test_parent_segment_survives_child_exit(self, shared_snapshot):
        # the child in the previous test must not have unlinked the
        # parent-owned segment (the resource-tracker workaround)
        store = SharedDerivedStore.attach(shared_snapshot.manifest)
        try:
            assert store.context_row(0, "float64") is not None
        finally:
            store.close()
