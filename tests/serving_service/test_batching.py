"""Micro-batching: flush policy units + the split-invariance property."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serialize import LoadedModel
from repro.recommend.recommender import TemporalRecommender
from repro.serving_service.batching import BatchAccumulator, BatchRequest
from repro.serving_service.worker import serve_requests

from .conftest import NUM_INTERVALS, NUM_USERS


def request(queries, k=5, token=None):
    return BatchRequest(queries=list(queries), k=k, token=token)


class TestAccumulator:
    def test_size_trigger_flushes_with_the_crossing_request(self):
        acc = BatchAccumulator(max_batch=3, deadline_s=1.0)
        assert acc.add(request([(0, 0)]), now=0.0) is None
        assert acc.add(request([(1, 0)]), now=0.1) is None
        batch = acc.add(request([(2, 0)]), now=0.2)
        assert batch is not None and len(batch) == 3
        assert acc.pending_queries == 0
        assert acc.deadline() is None

    def test_oversized_request_flushes_alone_immediately(self):
        acc = BatchAccumulator(max_batch=2, deadline_s=1.0)
        batch = acc.add(request([(0, 0), (1, 0), (2, 0)]), now=0.0)
        assert batch is not None and len(batch) == 1
        assert len(batch[0].queries) == 3

    def test_requests_are_never_split_across_flushes(self):
        acc = BatchAccumulator(max_batch=4, deadline_s=1.0)
        assert acc.add(request([(0, 0), (1, 0), (2, 0)]), now=0.0) is None
        batch = acc.add(request([(3, 0), (4, 0)]), now=0.1)
        # the second request crosses the boundary but flushes whole
        assert batch is not None
        assert [len(r.queries) for r in batch] == [3, 2]

    def test_deadline_arms_on_first_request_only(self):
        acc = BatchAccumulator(max_batch=100, deadline_s=0.5)
        acc.add(request([(0, 0)]), now=10.0)
        acc.add(request([(1, 0)]), now=10.4)
        assert acc.deadline() == pytest.approx(10.5)
        assert not acc.due(10.49)
        assert acc.due(10.5)
        assert len(acc.flush()) == 2
        assert not acc.due(99.0)  # empty accumulator is never due

    def test_rejects_empty_requests_and_bad_knobs(self):
        acc = BatchAccumulator(max_batch=4)
        with pytest.raises(ValueError):
            acc.add(request([]), now=0.0)
        with pytest.raises(ValueError):
            BatchAccumulator(max_batch=0)
        with pytest.raises(ValueError):
            BatchAccumulator(deadline_s=-1.0)


# ---------------------------------------------------------------------------
# Property: micro-batch boundaries never change results (bitwise)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def recommender(service_params):
    return TemporalRecommender(LoadedModel(service_params))


queries_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=NUM_USERS - 1),
        st.integers(min_value=0, max_value=NUM_INTERVALS - 1),
    ),
    min_size=1,
    max_size=24,
)


@given(
    queries=queries_strategy,
    cuts=st.lists(st.integers(min_value=1, max_value=23), max_size=6),
    max_batch=st.integers(min_value=1, max_value=12),
    k=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=30, deadline=None)
def test_micro_batch_split_never_changes_results(
    recommender, queries, cuts, max_batch, k
):
    """Service answers are bitwise identical to one big recommend_batch.

    The query stream is partitioned into client requests at arbitrary
    cut points, pushed through the accumulator with an arbitrary flush
    size, and each flushed micro-batch is served by the exact worker
    code path (`serve_requests`). Every row must reproduce the single
    big-batch call exactly: same items, same score bits, same tie
    order.
    """
    # partition the stream into requests at the (deduplicated) cut points
    bounds = sorted({c for c in cuts if c < len(queries)} | {0, len(queries)})
    requests = [
        {"queries": queries[lo:hi], "k": k}
        for lo, hi in zip(bounds, bounds[1:])
        if hi > lo
    ]

    # drive the pure flush policy; deadline very large so only size flushes
    acc = BatchAccumulator(max_batch=max_batch, deadline_s=1e9)
    batches = []
    for index, req in enumerate(requests):
        flushed = acc.add(
            BatchRequest(queries=list(req["queries"]), k=req["k"], token=index),
            now=0.0,
        )
        if flushed is not None:
            batches.append(flushed)
    tail = acc.flush()
    if tail:
        batches.append(tail)

    # every request lands in exactly one micro-batch, in order
    assert [r.token for batch in batches for r in batch] == list(range(len(requests)))

    reference = recommender.recommend_batch(queries, k=k)
    served: list[dict] = []
    for batch in batches:
        worker_requests = [{"queries": r.queries, "k": r.k} for r in batch]
        responses = serve_requests(recommender, worker_requests, "float64")
        for response in responses:
            assert "error" not in response
            served.extend(response["results"])

    assert len(served) == len(reference)
    for row, expected in zip(served, reference):
        assert row["items"] == [int(i) for i in expected.items]
        assert [np.float64(s).tobytes() for s in row["scores"]] == [
            np.float64(s).tobytes() for s in expected.scores
        ]
