"""Tests for the TT baseline."""

import numpy as np
import pytest

from repro.baselines.timetopic import TimeTopicModel
import tests.conftest as c


@pytest.fixture(scope="module")
def fitted():
    cuboid, truth = c.generate(c.tiny_config())
    model = TimeTopicModel(num_topics=4, max_iter=25, seed=0).fit(cuboid)
    return model, cuboid, truth


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TimeTopicModel(num_topics=0)
        with pytest.raises(ValueError):
            TimeTopicModel(background_weight=1.5)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            TimeTopicModel().score_items(0, 0)
        with pytest.raises(RuntimeError):
            TimeTopicModel().topic_activity()


class TestFit:
    def test_log_likelihood_monotone(self, fitted):
        model, _, _ = fitted
        assert model.trace_.is_monotone(slack=1e-6)

    def test_parameters_stochastic(self, fitted):
        model, _, _ = fitted
        np.testing.assert_allclose(model.theta_time_.sum(axis=1), 1.0)
        np.testing.assert_allclose(model.phi_time_.sum(axis=1), 1.0)

    def test_topic_activity_shape(self, fitted):
        model, cuboid, _ = fitted
        activity = model.topic_activity()
        assert activity.shape == (4, cuboid.num_intervals)
        np.testing.assert_allclose(activity.sum(axis=0), 1.0)


class TestScoring:
    def test_scores_form_distribution(self, fitted):
        model, _, _ = fitted
        scores = model.score_items(0, 3)
        assert scores.sum() == pytest.approx(1.0)

    def test_user_is_ignored(self, fitted):
        model, _, _ = fitted
        np.testing.assert_array_equal(
            model.score_items(0, 3), model.score_items(42, 3)
        )

    def test_scores_vary_with_interval(self, fitted):
        model, _, truth = fitted
        peaks = [event.peak for event in truth.config.events]
        assert not np.allclose(
            model.score_items(0, peaks[0]), model.score_items(0, peaks[1])
        )

    def test_event_items_rank_high_at_their_peak(self, fitted):
        """At an event's peak the model should boost that event's items."""
        model, cuboid, truth = fitted
        name = truth.event_names[0]
        event = truth.config.events[0]
        dedicated = truth.event_items[name]
        scores = model.score_items(0, event.peak)
        ranks = np.argsort(-scores)
        positions = [int(np.where(ranks == v)[0][0]) for v in dedicated]
        # At least one dedicated item in the global top-10.
        assert min(positions) < 10
