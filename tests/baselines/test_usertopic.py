"""Tests for the UT baseline."""

import numpy as np
import pytest

from repro.baselines.usertopic import UserTopicModel
import tests.conftest as c


@pytest.fixture(scope="module")
def fitted():
    cuboid, truth = c.generate(c.tiny_config())
    model = UserTopicModel(num_topics=4, max_iter=25, seed=0).fit(cuboid)
    return model, cuboid


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            UserTopicModel(num_topics=0)
        with pytest.raises(ValueError):
            UserTopicModel(background_weight=1.0)
        with pytest.raises(ValueError):
            UserTopicModel(background_weight=-0.1)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            UserTopicModel().score_items(0)


class TestFit:
    def test_log_likelihood_monotone(self, fitted):
        model, _ = fitted
        assert model.trace_.is_monotone(slack=1e-6)

    def test_background_is_item_popularity(self, fitted):
        model, cuboid = fitted
        popularity = cuboid.item_popularity()
        np.testing.assert_allclose(
            model.background_, popularity / popularity.sum()
        )

    def test_parameters_stochastic(self, fitted):
        model, _ = fitted
        np.testing.assert_allclose(model.theta_.sum(axis=1), 1.0)
        np.testing.assert_allclose(model.phi_.sum(axis=1), 1.0)


class TestScoring:
    def test_scores_form_distribution(self, fitted):
        model, _ = fitted
        scores = model.score_items(0)
        assert scores.sum() == pytest.approx(1.0)
        assert np.all(scores >= 0)

    def test_interval_is_ignored(self, fitted):
        model, _ = fitted
        np.testing.assert_array_equal(
            model.score_items(3, 0), model.score_items(3, 7)
        )

    def test_scores_are_personalised(self, fitted):
        model, _ = fitted
        assert not np.allclose(model.score_items(0), model.score_items(1))

    def test_pure_background_when_weight_high(self):
        cuboid, _ = c.generate(c.tiny_config())
        model = UserTopicModel(
            num_topics=2, background_weight=0.99, max_iter=5, seed=0
        ).fit(cuboid)
        # Scores are ~99% the shared background: users nearly identical.
        diff = np.abs(model.score_items(0) - model.score_items(1)).max()
        assert diff < 0.02
