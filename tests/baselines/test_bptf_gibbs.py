"""Tests for the Gibbs-sampled Bayesian BPTF."""

import numpy as np
import pytest

from repro.baselines.bptf_gibbs import GibbsBPTF, _sample_gaussian, _sample_normal_wishart
from tests.baselines.test_bptf import temporal_block_cuboid


class TestSamplers:
    def test_gaussian_sampler_moments(self, rng):
        precision = np.array([[4.0, 0.0], [0.0, 1.0]])
        linear = precision @ np.array([1.0, -2.0])
        draws = np.array([_sample_gaussian(precision, linear, rng) for _ in range(4000)])
        np.testing.assert_allclose(draws.mean(axis=0), [1.0, -2.0], atol=0.1)
        np.testing.assert_allclose(draws.var(axis=0), [0.25, 1.0], atol=0.12)

    def test_normal_wishart_tracks_empirical_mean(self, rng):
        factors = rng.normal(3.0, 0.2, size=(500, 3))
        mus = np.array(
            [_sample_normal_wishart(factors, rng)[0] for _ in range(200)]
        )
        # Posterior mean shrinks slightly toward the zero prior mean.
        assert np.all(mus.mean(axis=0) > 2.5)
        assert np.all(mus.mean(axis=0) < 3.2)

    def test_precision_is_positive_definite(self, rng):
        factors = rng.normal(0, 1, size=(50, 4))
        _mu, precision = _sample_normal_wishart(factors, rng)
        eigenvalues = np.linalg.eigvalsh(precision)
        assert np.all(eigenvalues > 0)


class TestGibbsBPTF:
    def test_validation(self):
        with pytest.raises(ValueError):
            GibbsBPTF(num_factors=0)
        with pytest.raises(ValueError):
            GibbsBPTF(num_samples=0)
        with pytest.raises(ValueError):
            GibbsBPTF(burn_in=-1)
        with pytest.raises(ValueError):
            GibbsBPTF(alpha=0)
        with pytest.raises(RuntimeError):
            GibbsBPTF().score_items(0, 0)

    def test_captures_temporal_flip(self):
        cuboid = temporal_block_cuboid()
        model = GibbsBPTF(
            num_factors=8, num_samples=15, burn_in=5, seed=0
        ).fit(cuboid)
        early = model.score_items(0, 0)
        late = model.score_items(0, 5)
        assert early[:15].mean() > early[15:].mean()
        assert late[15:].mean() > late[:15].mean()

    def test_deterministic_by_seed(self):
        cuboid = temporal_block_cuboid()
        m1 = GibbsBPTF(num_factors=4, num_samples=3, burn_in=1, seed=9).fit(cuboid)
        m2 = GibbsBPTF(num_factors=4, num_samples=3, burn_in=1, seed=9).fit(cuboid)
        np.testing.assert_array_equal(m1.mean_user_, m2.mean_user_)

    def test_posterior_mean_shapes(self):
        cuboid = temporal_block_cuboid()
        model = GibbsBPTF(num_factors=4, num_samples=3, burn_in=1, seed=0).fit(cuboid)
        assert model.mean_user_.shape == (cuboid.num_users, 4)
        assert model.mean_item_.shape == (cuboid.num_items, 4)
        assert model.mean_time_.shape == (cuboid.num_intervals, 4)

    def test_agrees_with_map_variant_on_ranking(self):
        """Gibbs and MAP variants should broadly agree on which items a
        user prefers — they fit the same model."""
        from repro.baselines.bptf import BPTF

        cuboid = temporal_block_cuboid()
        gibbs = GibbsBPTF(num_factors=8, num_samples=15, burn_in=5, seed=0).fit(cuboid)
        map_fit = BPTF(num_factors=8, num_epochs=60, seed=0).fit(cuboid)
        agreements = []
        for u in range(0, 20, 4):
            for t in (0, 5):
                top_gibbs = set(np.argsort(-gibbs.score_items(u, t))[:10].tolist())
                top_map = set(np.argsort(-map_fit.score_items(u, t))[:10].tolist())
                agreements.append(len(top_gibbs & top_map) / 10)
        assert np.mean(agreements) > 0.5
