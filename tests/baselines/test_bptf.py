"""Tests for the BPTF (MAP temporal tensor factorisation) baseline."""

import numpy as np
import pytest

from repro.baselines.bptf import BPTF
from repro.data.cuboid import RatingCuboid


def temporal_block_cuboid(seed=0):
    """Communities whose consumption flips between two halves of time.

    Users 0–19 consume block A during t<3 and block B during t>=3; a
    model with working time factors must capture the flip.
    """
    rng = np.random.default_rng(seed)
    users, intervals, items = [], [], []
    for u in range(20):
        for t in range(6):
            pool = range(15) if t < 3 else range(15, 30)
            for v in rng.choice(list(pool), size=3, replace=False):
                users.append(u), intervals.append(t), items.append(int(v))
    return RatingCuboid.from_arrays(users, intervals, items, num_items=30)


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BPTF(num_factors=0)
        with pytest.raises(ValueError):
            BPTF(num_epochs=0)
        with pytest.raises(ValueError):
            BPTF(negative_ratio=-1)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            BPTF().score_items(0, 0)


class TestLearning:
    def test_captures_temporal_flip(self):
        cuboid = temporal_block_cuboid()
        model = BPTF(num_factors=8, num_epochs=60, seed=0).fit(cuboid)
        early = model.score_items(0, 0)
        late = model.score_items(0, 5)
        assert early[:15].mean() > early[15:].mean()
        assert late[15:].mean() > late[:15].mean()

    def test_fit_reduces_reconstruction_error(self):
        cuboid = temporal_block_cuboid()
        short = BPTF(num_factors=8, num_epochs=2, seed=0).fit(cuboid)
        long = BPTF(num_factors=8, num_epochs=60, seed=0).fit(cuboid)

        def mse(model):
            pred = np.einsum(
                "rd,rd,rd->r",
                model.user_factors_[cuboid.users],
                model.item_factors_[cuboid.items],
                model.time_factors_[cuboid.intervals],
            )
            target = np.minimum(
                cuboid.scores / max(np.percentile(cuboid.scores, 95), 1e-9), 3.0
            )
            return float(((pred - target) ** 2).mean())

        assert mse(long) < mse(short)

    def test_time_smoothness_pulls_factors_together(self):
        cuboid = temporal_block_cuboid()
        rough = BPTF(num_factors=8, num_epochs=30, time_smoothness=0.0, seed=0).fit(cuboid)
        smooth = BPTF(num_factors=8, num_epochs=30, time_smoothness=5.0, seed=0).fit(cuboid)

        def roughness(model):
            return float(np.abs(np.diff(model.time_factors_, axis=0)).mean())

        assert roughness(smooth) < roughness(rough)

    def test_deterministic_by_seed(self):
        cuboid = temporal_block_cuboid()
        m1 = BPTF(num_factors=4, num_epochs=3, seed=5).fit(cuboid)
        m2 = BPTF(num_factors=4, num_epochs=3, seed=5).fit(cuboid)
        np.testing.assert_array_equal(m1.time_factors_, m2.time_factors_)

    def test_handles_heavy_tailed_counts(self):
        """Robust target scaling keeps learning alive under count skew."""
        cuboid = temporal_block_cuboid()
        skewed = cuboid.with_scores(
            np.where(np.arange(cuboid.nnz) % 50 == 0, 40.0, 1.0)
        )
        model = BPTF(num_factors=8, num_epochs=40, seed=0).fit(skewed)
        early = model.score_items(0, 0)
        assert early[:15].mean() > early[15:].mean()

    def test_name(self):
        assert BPTF().name == "BPTF"
