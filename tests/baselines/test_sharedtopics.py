"""Tests for the shared-topic-set TCAM variant."""

import numpy as np
import pytest

from repro.baselines.sharedtopics import SharedTopicsTCAM
import tests.conftest as c


@pytest.fixture(scope="module")
def fitted():
    cuboid, truth = c.generate(c.tiny_config())
    model = SharedTopicsTCAM(num_topics=6, max_iter=25, seed=0).fit(cuboid)
    return model, cuboid, truth


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SharedTopicsTCAM(num_topics=0)
        with pytest.raises(ValueError):
            SharedTopicsTCAM(max_iter=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SharedTopicsTCAM().score_items(0, 0)


class TestFit:
    def test_log_likelihood_monotone(self, fitted):
        model, _, _ = fitted
        assert model.trace_.is_monotone(slack=1e-6)

    def test_parameters_stochastic(self, fitted):
        model, _, _ = fitted
        np.testing.assert_allclose(model.theta_.sum(axis=1), 1.0)
        np.testing.assert_allclose(model.theta_time_.sum(axis=1), 1.0)
        np.testing.assert_allclose(model.phi_.sum(axis=1), 1.0)
        assert np.all((model.lambda_ >= 0) & (model.lambda_ <= 1))

    def test_single_topic_set_shared(self, fitted):
        model, cuboid, _ = fitted
        # Interest and context distributions live over the same K topics.
        assert model.theta_.shape[1] == model.theta_time_.shape[1] == 6
        assert model.phi_.shape == (6, cuboid.num_items)

    def test_reproducible(self):
        cuboid, _ = c.generate(c.tiny_config())
        m1 = SharedTopicsTCAM(4, max_iter=8, seed=3).fit(cuboid)
        m2 = SharedTopicsTCAM(4, max_iter=8, seed=3).fit(cuboid)
        np.testing.assert_array_equal(m1.phi_, m2.phi_)


class TestScoring:
    def test_scores_form_distribution(self, fitted):
        model, _, _ = fitted
        scores = model.score_items(1, 2)
        assert scores.sum() == pytest.approx(1.0)
        assert np.all(scores >= 0)

    def test_query_space_matches_score_items(self, fitted):
        model, _, _ = fitted
        weights, matrix = model.query_space(2, 4)
        np.testing.assert_allclose(weights @ matrix, model.score_items(2, 4), atol=1e-12)

    def test_works_with_ta_engine(self, fitted):
        from repro.recommend import TemporalRecommender

        model, _, _ = fitted
        rec = TemporalRecommender(model)
        bf = rec.recommend(0, 1, k=5, method="bf")
        ta = rec.recommend(0, 1, k=5, method="ta")
        np.testing.assert_allclose(sorted(bf.scores), sorted(ta.scores), atol=1e-12)

    def test_topics_conflate_interest_and_context(self, fitted):
        """The design flaw the paper calls out: with one shared set, some
        topics are used by both the interest and the context factors."""
        model, _, _ = fitted
        interest_usage = model.theta_.mean(axis=0)
        context_usage = model.theta_time_.mean(axis=0)
        overlap = np.minimum(interest_usage, context_usage).sum()
        assert overlap > 0.05
