"""Tests for the BPRMF baseline."""

import numpy as np
import pytest

from repro.baselines.bprmf import BPRMF, _sigmoid
from repro.data.cuboid import RatingCuboid


def block_cuboid(num_users=40, num_items=30, seed=0):
    """Two user communities, each consuming its own half of the catalogue.

    Trivially separable data: a working pairwise ranker must score a
    user's own block above the other block.
    """
    rng = np.random.default_rng(seed)
    users, items = [], []
    half_u, half_v = num_users // 2, num_items // 2
    for u in range(num_users):
        pool = range(half_v) if u < half_u else range(half_v, num_items)
        chosen = rng.choice(list(pool), size=8, replace=False)
        for v in chosen:
            users.append(u)
            items.append(int(v))
    return RatingCuboid.from_arrays(
        users, [0] * len(users), items, num_items=num_items, num_intervals=1
    )


class TestSigmoid:
    def test_midpoint(self):
        assert _sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_extremes_stable(self):
        out = _sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)

    def test_monotone(self):
        x = np.linspace(-5, 5, 50)
        assert np.all(np.diff(_sigmoid(x)) > 0)


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BPRMF(num_factors=0)
        with pytest.raises(ValueError):
            BPRMF(learning_rate=0)
        with pytest.raises(ValueError):
            BPRMF(num_epochs=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            BPRMF().score_items(0)


class TestLearning:
    def test_separates_communities(self):
        cuboid = block_cuboid()
        model = BPRMF(num_factors=8, num_epochs=40, seed=0).fit(cuboid)
        # A block-A user must rank block-A items above block-B items.
        scores = model.score_items(0)
        block_a = scores[:15].mean()
        block_b = scores[15:].mean()
        assert block_a > block_b
        scores = model.score_items(30)
        assert scores[15:].mean() > scores[:15].mean()

    def test_positives_above_negatives_auc(self):
        cuboid = block_cuboid(seed=3)
        model = BPRMF(num_factors=8, num_epochs=40, seed=0).fit(cuboid)
        rated = {}
        for u, v in zip(cuboid.users, cuboid.items):
            rated.setdefault(int(u), set()).add(int(v))
        auc_scores = []
        for u, positives in rated.items():
            scores = model.score_items(u)
            negatives = [v for v in range(cuboid.num_items) if v not in positives]
            pos = np.array([scores[v] for v in positives])
            neg = np.array([scores[v] for v in negatives])
            auc = (pos[:, None] > neg[None, :]).mean()
            auc_scores.append(auc)
        assert np.mean(auc_scores) > 0.8

    def test_deterministic_by_seed(self):
        cuboid = block_cuboid()
        m1 = BPRMF(num_factors=4, num_epochs=5, seed=9).fit(cuboid)
        m2 = BPRMF(num_factors=4, num_epochs=5, seed=9).fit(cuboid)
        np.testing.assert_array_equal(m1.user_factors_, m2.user_factors_)

    def test_interval_ignored(self):
        cuboid = block_cuboid()
        model = BPRMF(num_factors=4, num_epochs=5, seed=0).fit(cuboid)
        np.testing.assert_array_equal(model.score_items(0, 0), model.score_items(0, 1))

    def test_name(self):
        assert BPRMF().name == "BPRMF"
