"""Tests for the popularity baselines."""

import numpy as np
import pytest

from repro.baselines.popularity import GlobalPopularity, RecentPopularity
from repro.data.cuboid import RatingCuboid


@pytest.fixture
def skewed_cuboid():
    # Item 0 popular overall; item 1 hot only in interval 1; item 2 cold.
    users = [0, 1, 2, 3, 0, 1, 0]
    intervals = [0, 0, 1, 1, 1, 1, 0]
    items = [0, 0, 0, 0, 1, 1, 2]
    return RatingCuboid.from_arrays(users, intervals, items)


class TestGlobalPopularity:
    def test_ranks_by_total_mass(self, skewed_cuboid):
        model = GlobalPopularity().fit(skewed_cuboid)
        scores = model.score_items()
        assert scores[0] > scores[1] > scores[2]

    def test_same_for_all_queries(self, skewed_cuboid):
        model = GlobalPopularity().fit(skewed_cuboid)
        np.testing.assert_array_equal(model.score_items(0, 0), model.score_items(5, 1))

    def test_returns_copy(self, skewed_cuboid):
        model = GlobalPopularity().fit(skewed_cuboid)
        scores = model.score_items()
        scores[0] = -1
        assert model.score_items()[0] > 0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GlobalPopularity().score_items()

    def test_empty_rejected(self):
        empty = RatingCuboid.from_arrays([], [], [], num_users=1, num_intervals=1, num_items=1)
        with pytest.raises(ValueError):
            GlobalPopularity().fit(empty)


class TestRecentPopularity:
    def test_interval_sensitivity(self, skewed_cuboid):
        model = RecentPopularity(global_blend=0.0).fit(skewed_cuboid)
        at_t1 = model.score_items(0, 1)
        at_t0 = model.score_items(0, 0)
        # Item 1 is hot at t=1 and absent at t=0.
        assert at_t1[1] > at_t0[1]

    def test_blend_bounds_validated(self):
        with pytest.raises(ValueError):
            RecentPopularity(global_blend=1.5)

    def test_global_blend_fills_quiet_intervals(self):
        users = [0, 1]
        cub = RatingCuboid.from_arrays(users, [0, 0], [0, 1], num_intervals=3)
        model = RecentPopularity(global_blend=0.5).fit(cub)
        quiet = model.score_items(0, 2)  # no activity at t=2
        assert quiet.sum() > 0  # global prior still ranks items

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RecentPopularity().score_items(0, 0)
