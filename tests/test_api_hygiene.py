"""API hygiene: every public item is importable and documented.

Walks the installed ``repro`` package and asserts that every public
module, class, function and method carries a docstring, and that every
name exported through ``__all__`` actually resolves. This is the
executable form of the "doc comments on every public item" requirement.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

EXEMPT_METHODS = {
    # dunder/dataclass machinery that needs no prose
    "__init__", "__repr__", "__str__", "__len__", "__iter__",
    "__contains__", "__post_init__", "__eq__", "__hash__", "__iadd__",
}


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(iter_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_exports_resolve(module):
    for name in getattr(module, "__all__", ()):
        assert hasattr(module, name), f"{module.__name__}.__all__ lists missing {name}"


def public_members():
    seen = set()
    for module in ALL_MODULES:
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", "").startswith("repro") is False:
                continue  # re-exported third-party names
            key = (obj.__module__, getattr(obj, "__qualname__", name))
            if key in seen:
                continue
            seen.add(key)
            yield key, obj


PUBLIC = list(public_members())


@pytest.mark.parametrize(
    "key_obj", PUBLIC, ids=lambda ko: f"{ko[0][0]}.{ko[0][1]}"
)
def test_public_object_documented(key_obj):
    (module, qualname), obj = key_obj
    assert obj.__doc__, f"{module}.{qualname} lacks a docstring"


def test_public_methods_documented():
    undocumented = []
    for (module, qualname), obj in PUBLIC:
        if not inspect.isclass(obj):
            continue
        for name, member in vars(obj).items():
            if name.startswith("_") and name not in EXEMPT_METHODS:
                continue
            if name in EXEMPT_METHODS:
                continue
            if inspect.isfunction(member) and not member.__doc__:
                undocumented.append(f"{module}.{qualname}.{name}")
            if isinstance(member, property) and not (member.fget and member.fget.__doc__):
                undocumented.append(f"{module}.{qualname}.{name} (property)")
    assert not undocumented, f"undocumented methods: {undocumented}"


def test_top_level_all_is_complete():
    for name in repro.__all__:
        assert hasattr(repro, name)
