"""API hygiene: every public item is importable, documented and typed.

Walks the installed ``repro`` package and asserts that every public
module, class, function and method carries a docstring, that every name
exported through ``__all__`` actually resolves, and that the public
functions of the core/recommend/robustness layers are fully annotated.
This is the executable form of the "doc comments on every public item"
requirement plus a mypy-independent annotation-completeness gate.
"""

import importlib
import inspect
import pkgutil
import typing

import pytest

import repro

EXEMPT_METHODS = {
    # dunder/dataclass machinery that needs no prose
    "__init__", "__repr__", "__str__", "__len__", "__iter__",
    "__contains__", "__post_init__", "__eq__", "__hash__", "__iadd__",
}


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(iter_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_exports_resolve(module):
    for name in getattr(module, "__all__", ()):
        assert hasattr(module, name), f"{module.__name__}.__all__ lists missing {name}"


def public_members():
    seen = set()
    for module in ALL_MODULES:
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", "").startswith("repro") is False:
                continue  # re-exported third-party names
            key = (obj.__module__, getattr(obj, "__qualname__", name))
            if key in seen:
                continue
            seen.add(key)
            yield key, obj


PUBLIC = list(public_members())


@pytest.mark.parametrize(
    "key_obj", PUBLIC, ids=lambda ko: f"{ko[0][0]}.{ko[0][1]}"
)
def test_public_object_documented(key_obj):
    (module, qualname), obj = key_obj
    assert obj.__doc__, f"{module}.{qualname} lacks a docstring"


def test_public_methods_documented():
    undocumented = []
    for (module, qualname), obj in PUBLIC:
        if not inspect.isclass(obj):
            continue
        for name, member in vars(obj).items():
            if name.startswith("_") and name not in EXEMPT_METHODS:
                continue
            if name in EXEMPT_METHODS:
                continue
            if inspect.isfunction(member) and not member.__doc__:
                undocumented.append(f"{module}.{qualname}.{name}")
            if isinstance(member, property) and not (member.fget and member.fget.__doc__):
                undocumented.append(f"{module}.{qualname}.{name} (property)")
    assert not undocumented, f"undocumented methods: {undocumented}"


def test_top_level_all_is_complete():
    for name in repro.__all__:
        assert hasattr(repro, name)


# ---------------------------------------------------------------------------
# Annotation completeness (no mypy required)
# ---------------------------------------------------------------------------

#: Packages whose public functions must be fully annotated.
TYPED_PACKAGES = ("repro.core", "repro.recommend", "repro.robustness", "repro.streaming")

#: Parameters that never need annotations.
IMPLICIT_PARAMS = {"self", "cls"}


def typed_callables():
    """Every public function/method of the strictly-typed packages."""
    for (module, qualname), obj in PUBLIC:
        if not module.startswith(TYPED_PACKAGES):
            continue
        if inspect.isfunction(obj):
            yield f"{module}.{qualname}", obj
        elif inspect.isclass(obj):
            for name, member in vars(obj).items():
                if name.startswith("_") and name != "__init__":
                    continue
                if isinstance(member, (staticmethod, classmethod)):
                    member = member.__func__
                elif isinstance(member, property):
                    member = member.fget
                if not inspect.isfunction(member):
                    continue
                if not getattr(member, "__module__", "").startswith("repro"):
                    continue  # synthetic members (e.g. Protocol __init__)
                yield f"{module}.{qualname}.{name}", member


TYPED = sorted(typed_callables(), key=lambda pair: pair[0])


def missing_annotations(func):
    """Parameter names without an annotation, plus ``return`` if absent."""
    hints = getattr(func, "__annotations__", {})
    signature = inspect.signature(func)
    missing = [
        name
        for name in signature.parameters
        if name not in IMPLICIT_PARAMS and name not in hints
    ]
    if "return" not in hints:
        missing.append("return")
    return missing


def test_typed_surface_is_nonempty():
    # Guards against the walker silently matching nothing.
    assert len(TYPED) > 80


@pytest.mark.parametrize("name_func", TYPED, ids=lambda pair: pair[0])
def test_public_function_fully_annotated(name_func):
    name, func = name_func
    missing = missing_annotations(func)
    assert not missing, f"{name} is missing annotations for: {missing}"


@pytest.mark.parametrize("name_func", TYPED, ids=lambda pair: pair[0])
def test_public_function_has_no_bare_any_params(name_func):
    """Parameters may not be annotated as bare ``Any``.

    ``Any`` inside a composed type (``dict[str, Any]``, ``Any | None``)
    is an accepted escape hatch for heterogeneous payloads; a parameter
    that is *just* ``Any`` defeats checking entirely. The documented
    exceptions are duck-typed model/fallback objects, which are what the
    serving layer is generic over.
    """
    allowed_any = {"model", "fallback", "params"}
    name, func = name_func
    hints = getattr(func, "__annotations__", {})
    offenders = [
        param
        for param, hint in hints.items()
        if param not in ("return", *allowed_any)
        and (hint is typing.Any or hint == "Any")
    ]
    assert not offenders, f"{name} annotates {offenders} as bare Any"
