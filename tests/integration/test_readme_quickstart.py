"""The README quickstart must actually run.

Extracts the first Python code block from README.md and executes it —
documentation that drifts from the API fails the suite.
"""

import re
from pathlib import Path

README = Path(__file__).resolve().parents[2] / "README.md"


def extract_first_python_block(text: str) -> str:
    match = re.search(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert match, "README.md has no python code block"
    return match.group(1)


def test_readme_quickstart_executes(capsys):
    code = extract_first_python_block(README.read_text())
    # Shrink the dataset so the doc snippet stays fast under test.
    code = code.replace('scale=0.5', 'scale=0.2')
    namespace: dict = {}
    exec(compile(code, "README-quickstart", "exec"), namespace)  # noqa: S102
    out = capsys.readouterr().out
    assert "NDCG@5" in out
    assert "mean personal-interest influence" in out


def test_readme_mentions_all_example_scripts():
    text = README.read_text()
    examples = Path(__file__).resolve().parents[2] / "examples"
    for script in examples.glob("*.py"):
        assert script.name in text or script.stem in text, (
            f"README does not mention examples/{script.name}"
        )
