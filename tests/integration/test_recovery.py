"""Parameter-recovery integration tests: can the models recover the
synthetic generator's ground truth?"""

import numpy as np
import pytest

from repro.analysis.topics import match_topics, topic_purity
from repro.core import ITCAM, TTCAM
from repro.core.parallel import PartitionedTTCAM
import tests.conftest as c


@pytest.fixture(scope="module")
def dataset():
    # Stationary interest items and strong events for clean identifiability.
    config = c.tiny_config(
        num_users=250,
        num_items=100,
        mean_ratings_per_user=45,
        item_lifecycle=float("inf"),
        noise_fraction=0.0,
        popular_leak=0.1,
        seed=23,
    )
    return c.generate(config)


class TestTopicRecovery:
    def test_ttcam_recovers_event_topics(self, dataset):
        cuboid, truth = dataset
        model = TTCAM(4, 3, max_iter=60, seed=1).fit(cuboid)
        _, similarity = match_topics(model.params_.phi_time, truth.phi_events)
        assert similarity.mean() > 0.5

    def test_ttcam_recovers_user_topics(self, dataset):
        cuboid, truth = dataset
        model = TTCAM(4, 3, max_iter=60, seed=1).fit(cuboid)
        _, similarity = match_topics(model.params_.phi, truth.phi)
        assert similarity.mean() > 0.5

    def test_event_topics_concentrate_on_dedicated_items(self, dataset):
        cuboid, truth = dataset
        model = TTCAM(4, 3, max_iter=60, seed=1).fit(cuboid)
        best = []
        for ids in truth.event_items.values():
            best.append(
                max(
                    topic_purity(model.params_.phi_time[x], ids)
                    for x in range(model.params_.num_time_topics)
                )
            )
        assert np.mean(best) > 0.25


class TestLambdaRecovery:
    def test_lambda_rank_correlates_with_truth(self, dataset):
        cuboid, truth = dataset
        model = TTCAM(4, 3, max_iter=60, seed=1).fit(cuboid)
        fitted = model.params_.lambda_u
        corr = np.corrcoef(fitted, truth.lambda_u)[0, 1]
        assert corr > 0.4

    def test_itcam_lambda_also_correlates(self, dataset):
        cuboid, truth = dataset
        model = ITCAM(4, max_iter=60, seed=1).fit(cuboid)
        corr = np.corrcoef(model.params_.lambda_u, truth.lambda_u)[0, 1]
        assert corr > 0.4


class TestImplementationAgreement:
    def test_partitioned_and_serial_recover_same_topics(self, dataset):
        cuboid, _ = dataset
        serial = TTCAM(4, 3, max_iter=20, seed=2).fit(cuboid)
        partitioned = PartitionedTTCAM(4, 3, max_iter=20, seed=2, num_partitions=5).fit(cuboid)
        np.testing.assert_allclose(
            serial.params_.phi_time, partitioned.params_.phi_time, atol=1e-8
        )

    def test_held_out_likelihood_ordering(self, dataset):
        """A TCAM fit must explain held-out data better than a 1-topic fit."""
        from repro.data import holdout_split

        cuboid, _ = dataset
        split = holdout_split(cuboid, seed=4)
        rich = TTCAM(4, 3, max_iter=40, smoothing=1e-4, seed=0).fit(split.train)
        poor = TTCAM(1, 1, max_iter=40, smoothing=1e-4, seed=0).fit(split.train)
        assert rich.log_likelihood(split.test) > poor.log_likelihood(split.test)
