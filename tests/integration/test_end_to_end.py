"""End-to-end integration: generate → split → fit → recommend → evaluate."""

import numpy as np
import pytest

from repro.baselines import GlobalPopularity, UserTopicModel
from repro.core import ITCAM, TTCAM
from repro.data import generate, holdout_split, profile
from repro.evaluation import build_queries, evaluate_ranking
from repro.recommend import TemporalRecommender
import tests.conftest as c


@pytest.fixture(scope="module")
def pipeline():
    cuboid, truth = generate(profile("digg", scale=0.25, seed=7))
    split = holdout_split(cuboid, seed=0)
    queries = build_queries(split, max_queries=150, seed=0)
    return cuboid, truth, split, queries


class TestFullPipeline:
    def test_tcam_beats_popularity(self, pipeline):
        """The headline sanity: the paper's model must beat popularity on
        temporal queries of time-sensitive data."""
        _, _, split, queries = pipeline
        tcam = ITCAM(num_user_topics=8, max_iter=40, seed=0).fit(split.train)
        pop = GlobalPopularity().fit(split.train)
        r_tcam = evaluate_ranking(tcam, queries, ks=(5,), metrics=("ndcg",))
        r_pop = evaluate_ranking(pop, queries, ks=(5,), metrics=("ndcg",))
        assert r_tcam.at("ndcg", 5) > r_pop.at("ndcg", 5) * 1.5

    def test_tcam_beats_user_topics_on_news(self, pipeline):
        """On news-like data the temporal context matters: full TCAM must
        beat the interest-only UT baseline (Figure 6's key contrast)."""
        _, _, split, queries = pipeline
        tcam = TTCAM(8, 8, max_iter=40, seed=0).fit(split.train)
        ut = UserTopicModel(num_topics=8, max_iter=40, seed=0).fit(split.train)
        r_tcam = evaluate_ranking(tcam, queries, ks=(5,), metrics=("ndcg",))
        r_ut = evaluate_ranking(ut, queries, ks=(5,), metrics=("ndcg",))
        assert r_tcam.at("ndcg", 5) > r_ut.at("ndcg", 5)

    def test_ta_and_bruteforce_identical_recommendations(self, pipeline):
        _, _, split, queries = pipeline
        model = TTCAM(6, 6, max_iter=30, seed=0).fit(split.train)
        rec = TemporalRecommender(model)
        for query in queries[:25]:
            bf = rec.recommend(query.user, query.interval, k=10, method="bf")
            ta = rec.recommend(query.user, query.interval, k=10, method="ta")
            np.testing.assert_allclose(
                sorted(bf.scores), sorted(ta.scores), atol=1e-12
            )

    def test_ta_examines_fewer_items(self, pipeline):
        cuboid, _, split, queries = pipeline
        model = TTCAM(6, 6, max_iter=30, seed=0).fit(split.train)
        rec = TemporalRecommender(model)
        scored = [
            rec.recommend(q.user, q.interval, k=10, method="ta").items_scored
            for q in queries[:25]
        ]
        assert np.mean(scored) < cuboid.num_items * 0.8

    def test_lambda_separates_platforms(self):
        """Fitted mixing weights are lower on news data than on movie data
        (the Figures 10–11 contrast)."""
        news_cub, _ = generate(profile("digg", scale=0.2, seed=3))
        movie_cub, _ = generate(profile("movielens", scale=0.25, seed=3))
        news = TTCAM(6, 6, max_iter=40, seed=0).fit(news_cub)
        movies = TTCAM(6, 6, max_iter=40, seed=0).fit(movie_cub)
        assert news.params_.lambda_u.mean() < movies.params_.lambda_u.mean()

    def test_weighted_model_demotes_popular_items_in_time_topics(self):
        """Table 5's direction: weighting lowers the share of globally
        popular items at the top of time-oriented topics."""
        from repro.analysis.topics import top_items

        cuboid, truth = generate(profile("delicious", scale=0.35, seed=17))
        head = set(np.argsort(-cuboid.item_popularity())[:20].tolist())

        def head_contamination(model):
            count = 0
            for x in range(model.params_.num_time_topics):
                tops = top_items(model.params_.phi_time[x], k=8)
                count += sum(1 for v, _l, _p in tops if v in head)
            return count

        plain = TTCAM(8, 8, max_iter=40, seed=0).fit(cuboid)
        weighted = TTCAM(8, 8, max_iter=40, weighted=True, seed=0).fit(cuboid)
        assert head_contamination(weighted) < head_contamination(plain)
