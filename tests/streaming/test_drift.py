"""Drift-vector tracking: unit-norm invariants, boundaries, restore."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streaming import DriftTracker, unit_norm


class TestUnitNorm:
    def test_normalises_to_unit_length(self):
        vector = unit_norm(np.array([3.0, 4.0]))
        assert np.isclose(np.linalg.norm(vector), 1.0)
        assert np.allclose(vector, [0.6, 0.8])

    def test_rejects_zero_vector(self):
        with pytest.raises(ValueError, match="zero vector"):
            unit_norm(np.zeros(4))


class TestTracker:
    def test_first_update_initialises_without_boundary(self):
        tracker = DriftTracker(dim=3)
        verdict = tracker.update(0, np.array([1.0, 0.0, 0.0]))
        assert verdict.cosine == 1.0
        assert not verdict.boundary
        assert tracker.valid[0] == 1.0

    def test_similar_estimate_drifts_and_stays_unit_norm(self):
        tracker = DriftTracker(dim=2, drift_rate=0.5, threshold=0.8)
        tracker.update(0, np.array([1.0, 0.0]))
        verdict = tracker.update(0, np.array([0.9, 0.1]))
        assert not verdict.boundary
        assert verdict.cosine > 0.8
        assert np.isclose(np.linalg.norm(tracker.vectors[0]), 1.0)
        # Drifted strictly between the old vector and the new estimate.
        assert 0.0 < tracker.vectors[0][1] < unit_norm(np.array([0.9, 0.1]))[1]

    def test_orthogonal_estimate_is_a_boundary(self):
        tracker = DriftTracker(dim=2, threshold=0.8)
        tracker.update(0, np.array([1.0, 0.0]))
        verdict = tracker.update(0, np.array([0.0, 1.0]))
        assert verdict.boundary
        assert verdict.cosine < 0.8
        assert tracker.boundaries == 1
        # Boundary re-anchors outright on the new estimate.
        assert np.allclose(tracker.vectors[0], [0.0, 1.0])

    def test_intervals_grow_on_demand(self):
        tracker = DriftTracker(dim=2)
        tracker.update(4, np.array([1.0, 1.0]))
        assert tracker.num_intervals == 5
        assert tracker.valid.tolist() == [0, 0, 0, 0, 1]

    def test_updates_are_deterministic(self):
        runs = []
        for _ in range(2):
            tracker = DriftTracker(dim=3, drift_rate=0.3)
            for step in range(6):
                tracker.update(step % 2, np.array([1.0, step * 0.4, 0.2]))
            runs.append(tracker.vectors.copy())
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_restore_roundtrip_is_bit_exact(self):
        tracker = DriftTracker(dim=2, threshold=0.9)
        tracker.update(0, np.array([1.0, 0.2]))
        tracker.update(1, np.array([0.1, 1.0]))
        tracker.update(0, np.array([0.2, 1.0]))  # boundary
        clone = DriftTracker(dim=2, threshold=0.9)
        clone.restore(
            tracker.vectors, tracker.valid, tracker.boundaries, tracker.updates
        )
        np.testing.assert_array_equal(clone.vectors, tracker.vectors)
        assert clone.boundaries == tracker.boundaries
        verdict_a = tracker.update(0, np.array([0.3, 1.0]))
        verdict_b = clone.update(0, np.array([0.3, 1.0]))
        assert verdict_a == verdict_b

    def test_restore_validates_shapes(self):
        tracker = DriftTracker(dim=2)
        with pytest.raises(ValueError, match="shape"):
            tracker.restore(np.zeros((2, 3)), np.zeros(2))
        with pytest.raises(ValueError, match="align"):
            tracker.restore(np.zeros((2, 2)), np.zeros(3))

    def test_validation(self):
        with pytest.raises(ValueError, match="dim"):
            DriftTracker(dim=0)
        with pytest.raises(ValueError, match="drift_rate"):
            DriftTracker(dim=2, drift_rate=1.5)
        with pytest.raises(ValueError, match="threshold"):
            DriftTracker(dim=2, threshold=2.0)
        tracker = DriftTracker(dim=2)
        with pytest.raises(ValueError, match="interval"):
            tracker.update(-1, np.ones(2))
